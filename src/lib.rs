//! # rjms
//!
//! A JMS-style publish/subscribe message broker with analytic performance
//! models — a from-scratch Rust reproduction of Menth & Henjes, *Analysis of
//! the Message Waiting Time for the FioranoMQ JMS Server* (ICDCS 2006).
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`broker`] — the threaded pub/sub broker ([`rjms_broker`]),
//! * [`selector`] — the JMS message-selector language ([`rjms_selector`]),
//! * [`model`] — the paper's performance model ([`rjms_core`]),
//! * [`queueing`] — the `M/GI/1-∞` analysis ([`rjms_queueing`]),
//! * [`desim`] — discrete-event simulation ([`rjms_desim`]),
//! * [`net`] — the TCP wire layer ([`rjms_net`]),
//! * [`flow`] — model-driven admission control and credit-based flow
//!   control ([`rjms_flow`]),
//! * [`metrics`] — counters, histograms, the TSC clock ([`rjms_metrics`]),
//! * [`trace`] — the tail-sampled flight recorder ([`rjms_trace`]),
//! * [`obs`] — the waiting-time SLO engine: metric history, burn-rate
//!   alerting, evidence-bearing alerts ([`rjms_obs`]),
//! * [`http`] — the HTTP metrics/trace/SLO exposition endpoint (this
//!   crate),
//! * [`config_file`] — the `rjms-server --config` file loader (this
//!   crate).
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for the paper-vs-measured record of every
//! reproduced table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use rjms::broker::{Broker, BrokerConfig, Filter, Message};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), rjms::broker::Error> {
//! let broker = Broker::start(BrokerConfig::default());
//! broker.create_topic("news")?;
//! let sub = broker
//!     .subscription("news")
//!     .filter(Filter::selector("category = 'tech'").unwrap())
//!     .open()?;
//! broker.publisher("news")?
//!     .publish(Message::builder().property("category", "tech").build())?;
//! assert!(sub.receive_timeout(Duration::from_secs(1)).is_some());
//! broker.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! ## Capacity planning with the paper's model
//!
//! ```
//! use rjms::model::params::{CostParams, FilterType};
//! use rjms::model::scenario::ApplicationScenario;
//!
//! let scenario = ApplicationScenario::builder(FilterType::CorrelationId)
//!     .subscribers(1000)
//!     .filters_per_subscriber(1)
//!     .match_probability(0.01)
//!     .offered_load(100.0)
//!     .build();
//! assert!(scenario.is_feasible());
//! let report = scenario.waiting_time_at_offered_load().unwrap();
//! println!("99.99% of messages wait less than {:.1} ms", report.q9999 * 1e3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The threaded publish/subscribe broker (re-export of [`rjms_broker`]).
pub mod broker {
    pub use rjms_broker::*;
}

/// The JMS message-selector language (re-export of [`rjms_selector`]).
pub mod selector {
    pub use rjms_selector::*;
}

/// The paper's performance model (re-export of [`rjms_core`]).
pub mod model {
    pub use rjms_core::*;
}

/// Analytic queueing theory (re-export of [`rjms_queueing`]).
pub mod queueing {
    pub use rjms_queueing::*;
}

/// Discrete-event simulation (re-export of [`rjms_desim`]).
pub mod desim {
    pub use rjms_desim::*;
}

/// TCP wire layer: remote publishers and subscribers (re-export of
/// [`rjms_net`]).
pub mod net {
    pub use rjms_net::*;
}

/// Model-driven admission control: λ_max inversion, priority-class token
/// buckets, and credit windows (re-export of [`rjms_flow`]).
pub mod flow {
    pub use rjms_flow::*;
}

/// Low-overhead instruments: counters, histograms, the TSC clock
/// (re-export of [`rjms_metrics`]).
pub mod metrics {
    pub use rjms_metrics::*;
}

/// The tail-sampled flight recorder for per-message span chains
/// (re-export of [`rjms_trace`]).
pub mod trace {
    pub use rjms_trace::*;
}

/// The waiting-time SLO engine: metric history, burn-rate alerting, and
/// evidence-bearing alert records (re-export of [`rjms_obs`]).
pub mod obs {
    pub use rjms_obs::*;
}

pub mod config_file;
pub mod http;
