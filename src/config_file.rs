//! Configuration-file loader for `rjms-server --config`.
//!
//! Parses a small, dependency-free TOML subset — exactly what the server's
//! flag surface needs, nothing more:
//!
//! * `key = value` pairs, one per line;
//! * `[section]` headers (`[trace]`, `[slo]`, `[forecast]`, `[flow]`,
//!   `[topic_obs]`);
//! * values: `"strings"`, `true`/`false`, integers, floats, and
//!   single-line arrays of strings;
//! * `#` comments (outside strings) and blank lines.
//!
//! A section's *presence* enables its feature (mirroring `--trace`,
//! `--slo`, `--flow`, `--topic-obs`); an explicit `enabled = false` keeps
//! the section's tuning while leaving the feature off.
//!
//! ```toml
//! # rjms-server.toml
//! listen = "127.0.0.1:7670"
//! topics = ["orders", "audit"]
//! shards = 4
//! stats_every = 10        # seconds
//! metrics_interval = 30   # seconds
//! cost_model = "corr"     # corr | app
//! http = "127.0.0.1:9100"
//!
//! [trace]
//! tail_quantile = 0.99
//!
//! [slo]
//! history_secs = 1
//! alert_sinks = ["stderr", "webhook:127.0.0.1:9200/alerts"]
//!
//! [forecast]
//! horizon_secs = 900
//! trend_window_secs = 300
//! min_confidence = "medium"   # low | medium | high
//!
//! [flow]
//! w99_ms = 10
//! classes = 3
//!
//! [topic_obs]
//! cap = 64
//! target_ratio = 1.10
//! ```
//!
//! Command-line flags override file values (see the `rjms-server` docs for
//! the full precedence rules).

/// Top-level settings from a server configuration file. Every field is
/// optional: `None` means "not set in the file", so command-line flags and
/// built-in defaults can fill the gap.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServerFileConfig {
    /// `listen = "ADDR"` — the broker's TCP listen address.
    pub listen: Option<String>,
    /// `topics = ["a", "b"]` — topics pre-created at startup.
    pub topics: Vec<String>,
    /// `shards = N` — dispatcher shard count (`--shards`).
    pub shards: Option<usize>,
    /// `stats_every = SECS` — throughput report interval.
    pub stats_every: Option<u64>,
    /// `metrics_interval = SECS` — instrument report interval.
    pub metrics_interval: Option<u64>,
    /// `cost_model = "corr" | "app"` — Table I cost constants to burn.
    pub cost_model: Option<String>,
    /// `http = "ADDR"` — the exposition endpoint's listen address.
    pub http: Option<String>,
    /// `[trace]` section, when present.
    pub trace: Option<TraceSection>,
    /// `[slo]` section, when present.
    pub slo: Option<SloSection>,
    /// `[forecast]` section, when present.
    pub forecast: Option<ForecastSection>,
    /// `[flow]` section, when present.
    pub flow: Option<FlowSection>,
    /// `[topic_obs]` section, when present.
    pub topic_obs: Option<TopicObsSection>,
}

/// The `[trace]` section: tail-sampled flight recording.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSection {
    /// `enabled = bool`; defaults to `true` when the section is present.
    pub enabled: bool,
    /// `tail_quantile = Q` in `(0, 1)`.
    pub tail_quantile: Option<f64>,
}

/// The `[slo]` section: the waiting-time SLO engine.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSection {
    /// `enabled = bool`; defaults to `true` when the section is present.
    pub enabled: bool,
    /// `history_secs = SECS` — metric-history sampling interval.
    pub history_secs: Option<u64>,
    /// `alert_sinks = ["stderr", "webhook:ADDR/PATH", ...]`.
    pub alert_sinks: Vec<String>,
}

/// The `[forecast]` section: model-driven time-to-breach forecasting
/// (implies the SLO engine; forecasting is on by default when the engine
/// runs, so the section exists to tune it or switch it off).
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastSection {
    /// `enabled = bool`; defaults to `true` when the section is present.
    pub enabled: bool,
    /// `horizon_secs = SECS` — a projected breach inside this look-ahead
    /// raises the proactive `pending` alert state.
    pub horizon_secs: Option<u64>,
    /// `trend_window_secs = SECS` — trailing window the λ(t) trend is
    /// fitted over.
    pub trend_window_secs: Option<u64>,
    /// `min_confidence = "low" | "medium" | "high"` — the confidence gate
    /// a forecast must clear to raise `pending`.
    pub min_confidence: Option<String>,
}

/// The `[flow]` section: model-driven admission control.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowSection {
    /// `enabled = bool`; defaults to `true` when the section is present.
    pub enabled: bool,
    /// `w99_ms = MS` — the admission `W99` objective in milliseconds.
    pub w99_ms: Option<u64>,
    /// `classes = N` — priority classes in `1..=10`.
    pub classes: Option<u8>,
}

/// The `[topic_obs]` section: the per-topic workload observatory.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicObsSection {
    /// `enabled = bool`; defaults to `true` when the section is present.
    pub enabled: bool,
    /// `cap = N` — per-topic accounting-table cardinality cap.
    pub cap: Option<usize>,
    /// `target_ratio = R` — max/mean shard-load ratio the rebalance
    /// advisor aims under (`>= 1`).
    pub target_ratio: Option<f64>,
}

/// One parsed right-hand side.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Bool(bool),
    Int(i64),
    Float(f64),
    StrArray(Vec<String>),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Bool(_) => "bool",
            Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::StrArray(_) => "string array",
        }
    }

    fn str(self, key: &str) -> Result<String, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("`{key}` expects a string, got {}", other.type_name())),
        }
    }

    fn boolean(self, key: &str) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(b),
            other => Err(format!("`{key}` expects true/false, got {}", other.type_name())),
        }
    }

    fn uint<T: TryFrom<u64>>(self, key: &str) -> Result<T, String> {
        match self {
            Value::Int(i) if i >= 0 => u64::try_from(i)
                .ok()
                .and_then(|u| T::try_from(u).ok())
                .ok_or_else(|| format!("`{key}` is out of range")),
            other => {
                Err(format!("`{key}` expects a non-negative integer, got {}", other.type_name()))
            }
        }
    }

    fn float(self, key: &str) -> Result<f64, String> {
        match self {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            other => Err(format!("`{key}` expects a number, got {}", other.type_name())),
        }
    }

    fn str_array(self, key: &str) -> Result<Vec<String>, String> {
        match self {
            Value::StrArray(a) => Ok(a),
            other => Err(format!("`{key}` expects a string array, got {}", other.type_name())),
        }
    }
}

/// Reads and parses a server configuration file.
///
/// # Errors
///
/// Returns a human-readable message naming the offending line for I/O
/// failures, malformed syntax, unknown sections or keys, and type
/// mismatches.
pub fn load(path: &str) -> Result<ServerFileConfig, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// Parses configuration text (see the [module docs](self) for the
/// grammar).
///
/// # Errors
///
/// Returns a message naming the offending line number on malformed
/// syntax, unknown sections or keys, and type mismatches.
pub fn parse(text: &str) -> Result<ServerFileConfig, String> {
    let mut config = ServerFileConfig::default();
    let mut section = String::new();
    for (index, raw) in text.lines().enumerate() {
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let lineno = index + 1;
        if let Some(inner) = line.strip_prefix('[') {
            let name = inner
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated section header"))?
                .trim();
            match name {
                "trace" => {
                    config.trace = Some(TraceSection { enabled: true, tail_quantile: None });
                }
                "slo" => {
                    config.slo = Some(SloSection {
                        enabled: true,
                        history_secs: None,
                        alert_sinks: Vec::new(),
                    });
                }
                "forecast" => {
                    config.forecast = Some(ForecastSection {
                        enabled: true,
                        horizon_secs: None,
                        trend_window_secs: None,
                        min_confidence: None,
                    });
                }
                "flow" => {
                    config.flow = Some(FlowSection { enabled: true, w99_ms: None, classes: None });
                }
                "topic_obs" => {
                    config.topic_obs =
                        Some(TopicObsSection { enabled: true, cap: None, target_ratio: None });
                }
                other => {
                    return Err(format!(
                        "line {lineno}: unknown section `[{other}]` \
                         (trace|slo|forecast|flow|topic_obs)"
                    ))
                }
            }
            section = name.to_owned();
            continue;
        }
        let (key, rest) =
            line.split_once('=').ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim();
        let value = parse_value(rest.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
        apply(&mut config, &section, key, value).map_err(|e| format!("line {lineno}: {e}"))?;
    }
    Ok(config)
}

/// Routes one `key = value` into the config, validating section and type.
fn apply(
    config: &mut ServerFileConfig,
    section: &str,
    key: &str,
    value: Value,
) -> Result<(), String> {
    match section {
        "" => match key {
            "listen" => config.listen = Some(value.str(key)?),
            "topics" => config.topics = value.str_array(key)?,
            "shards" => {
                let shards: usize = value.uint(key)?;
                if shards == 0 {
                    return Err("`shards` must be at least 1".to_owned());
                }
                config.shards = Some(shards);
            }
            "stats_every" => config.stats_every = Some(value.uint(key)?),
            "metrics_interval" => config.metrics_interval = Some(value.uint(key)?),
            "cost_model" => {
                let model = value.str(key)?;
                if model != "corr" && model != "app" {
                    return Err(format!("`cost_model` must be `corr` or `app`, got `{model}`"));
                }
                config.cost_model = Some(model);
            }
            "http" => config.http = Some(value.str(key)?),
            other => return Err(format!("unknown key `{other}` at top level")),
        },
        "trace" => {
            let trace = config.trace.as_mut().expect("section created at header");
            match key {
                "enabled" => trace.enabled = value.boolean(key)?,
                "tail_quantile" => {
                    let q = value.float(key)?;
                    if !(q > 0.0 && q < 1.0) {
                        return Err(format!("`tail_quantile` must be in (0, 1), got {q}"));
                    }
                    trace.tail_quantile = Some(q);
                }
                other => return Err(format!("unknown key `{other}` in [trace]")),
            }
        }
        "slo" => {
            let slo = config.slo.as_mut().expect("section created at header");
            match key {
                "enabled" => slo.enabled = value.boolean(key)?,
                "history_secs" => {
                    let secs: u64 = value.uint(key)?;
                    if secs == 0 {
                        return Err("`history_secs` must be at least 1".to_owned());
                    }
                    slo.history_secs = Some(secs);
                }
                "alert_sinks" => {
                    let sinks = value.str_array(key)?;
                    for sink in &sinks {
                        if sink != "stderr" && !sink.starts_with("webhook:") {
                            return Err(format!(
                                "bad alert sink `{sink}` (stderr|webhook:ADDR/PATH)"
                            ));
                        }
                    }
                    slo.alert_sinks = sinks;
                }
                other => return Err(format!("unknown key `{other}` in [slo]")),
            }
        }
        "forecast" => {
            let forecast = config.forecast.as_mut().expect("section created at header");
            match key {
                "enabled" => forecast.enabled = value.boolean(key)?,
                "horizon_secs" => {
                    let secs: u64 = value.uint(key)?;
                    if secs == 0 {
                        return Err("`horizon_secs` must be at least 1".to_owned());
                    }
                    forecast.horizon_secs = Some(secs);
                }
                "trend_window_secs" => {
                    let secs: u64 = value.uint(key)?;
                    if secs == 0 {
                        return Err("`trend_window_secs` must be at least 1".to_owned());
                    }
                    forecast.trend_window_secs = Some(secs);
                }
                "min_confidence" => {
                    let level = value.str(key)?;
                    if !matches!(level.as_str(), "low" | "medium" | "high") {
                        return Err(format!(
                            "`min_confidence` must be `low`, `medium`, or `high`, got `{level}`"
                        ));
                    }
                    forecast.min_confidence = Some(level);
                }
                other => return Err(format!("unknown key `{other}` in [forecast]")),
            }
        }
        "flow" => {
            let flow = config.flow.as_mut().expect("section created at header");
            match key {
                "enabled" => flow.enabled = value.boolean(key)?,
                "w99_ms" => {
                    let ms: u64 = value.uint(key)?;
                    if ms == 0 {
                        return Err("`w99_ms` must be at least 1".to_owned());
                    }
                    flow.w99_ms = Some(ms);
                }
                "classes" => {
                    let classes: u8 = value.uint(key)?;
                    if !(1..=10).contains(&classes) {
                        return Err(format!("`classes` must be in 1..=10, got {classes}"));
                    }
                    flow.classes = Some(classes);
                }
                other => return Err(format!("unknown key `{other}` in [flow]")),
            }
        }
        "topic_obs" => {
            let obs = config.topic_obs.as_mut().expect("section created at header");
            match key {
                "enabled" => obs.enabled = value.boolean(key)?,
                "cap" => {
                    let cap: usize = value.uint(key)?;
                    if cap == 0 {
                        return Err("`cap` must be at least 1".to_owned());
                    }
                    obs.cap = Some(cap);
                }
                "target_ratio" => {
                    let r = value.float(key)?;
                    if !(r >= 1.0 && r.is_finite()) {
                        return Err(format!("`target_ratio` must be >= 1, got {r}"));
                    }
                    obs.target_ratio = Some(r);
                }
                other => return Err(format!("unknown key `{other}` in [topic_obs]")),
            }
        }
        _ => unreachable!("sections are validated at their header"),
    }
    Ok(())
}

/// Removes a trailing `#` comment, honoring `#` inside quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one right-hand side: string, bool, array, or number.
fn parse_value(raw: &str) -> Result<Value, String> {
    if raw.is_empty() {
        return Err("missing value".to_owned());
    }
    if raw.starts_with('"') {
        return Ok(Value::Str(parse_string(raw)?.0));
    }
    if raw == "true" {
        return Ok(Value::Bool(true));
    }
    if raw == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = raw.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| "unterminated array (arrays must be single-line)".to_owned())?
            .trim();
        let mut items = Vec::new();
        let mut rest = inner;
        while !rest.is_empty() {
            if !rest.starts_with('"') {
                return Err(format!("array items must be quoted strings, got `{rest}`"));
            }
            let (item, remainder) = parse_string(rest)?;
            items.push(item);
            rest = remainder.trim_start();
            if let Some(after_comma) = rest.strip_prefix(',') {
                rest = after_comma.trim_start();
            } else if !rest.is_empty() {
                return Err(format!("expected `,` between array items, got `{rest}`"));
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Ok(i) = raw.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = raw.parse::<f64>() {
        return Ok(Value::Float(f));
    }
    Err(format!("cannot parse value `{raw}`"))
}

/// Parses a leading quoted string, returning it and the unconsumed rest.
fn parse_string(raw: &str) -> Result<(String, &str), String> {
    let mut out = String::new();
    let mut escaped = false;
    for (i, c) in raw.char_indices().skip(1) {
        match c {
            _ if escaped => {
                out.push(match c {
                    'n' => '\n',
                    't' => '\t',
                    other => other, // \" and \\ pass through
                });
                escaped = false;
            }
            '\\' => escaped = true,
            '"' => return Ok((out, &raw[i + c.len_utf8()..])),
            _ => out.push(c),
        }
    }
    Err(format!("unterminated string in `{raw}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_example() {
        let text = r#"
            # rjms-server.toml
            listen = "127.0.0.1:7670"
            topics = ["orders", "audit"]
            shards = 4
            stats_every = 10        # seconds
            metrics_interval = 30
            cost_model = "corr"
            http = "127.0.0.1:9100"

            [trace]
            tail_quantile = 0.99

            [slo]
            history_secs = 1
            alert_sinks = ["stderr", "webhook:127.0.0.1:9200/alerts"]

            [forecast]
            horizon_secs = 600
            trend_window_secs = 120
            min_confidence = "high"

            [flow]
            w99_ms = 10
            classes = 3

            [topic_obs]
            cap = 128
            target_ratio = 1.2
        "#;
        let c = parse(text).unwrap();
        assert_eq!(c.listen.as_deref(), Some("127.0.0.1:7670"));
        assert_eq!(c.topics, vec!["orders", "audit"]);
        assert_eq!(c.shards, Some(4));
        assert_eq!(c.stats_every, Some(10));
        assert_eq!(c.metrics_interval, Some(30));
        assert_eq!(c.cost_model.as_deref(), Some("corr"));
        assert_eq!(c.http.as_deref(), Some("127.0.0.1:9100"));
        let trace = c.trace.unwrap();
        assert!(trace.enabled);
        assert_eq!(trace.tail_quantile, Some(0.99));
        let slo = c.slo.unwrap();
        assert!(slo.enabled);
        assert_eq!(slo.history_secs, Some(1));
        assert_eq!(slo.alert_sinks.len(), 2);
        let forecast = c.forecast.unwrap();
        assert!(forecast.enabled);
        assert_eq!(forecast.horizon_secs, Some(600));
        assert_eq!(forecast.trend_window_secs, Some(120));
        assert_eq!(forecast.min_confidence.as_deref(), Some("high"));
        let flow = c.flow.unwrap();
        assert!(flow.enabled);
        assert_eq!(flow.w99_ms, Some(10));
        assert_eq!(flow.classes, Some(3));
        let obs = c.topic_obs.unwrap();
        assert!(obs.enabled);
        assert_eq!(obs.cap, Some(128));
        assert_eq!(obs.target_ratio, Some(1.2));
    }

    #[test]
    fn topic_obs_section_presence_enables_and_validates() {
        let c = parse("[topic_obs]\n").unwrap();
        let obs = c.topic_obs.unwrap();
        assert!(obs.enabled);
        assert_eq!(obs.cap, None);
        assert_eq!(obs.target_ratio, None);

        let c = parse("[topic_obs]\nenabled = false\ncap = 32\n").unwrap();
        let obs = c.topic_obs.unwrap();
        assert!(!obs.enabled);
        assert_eq!(obs.cap, Some(32));

        // An integer ratio is accepted via the numeric coercion.
        let c = parse("[topic_obs]\ntarget_ratio = 2\n").unwrap();
        assert_eq!(c.topic_obs.unwrap().target_ratio, Some(2.0));

        assert!(parse("[topic_obs]\ncap = 0\n").unwrap_err().contains("at least 1"));
        assert!(parse("[topic_obs]\ntarget_ratio = 0.9\n").unwrap_err().contains(">= 1"));
        assert!(parse("[topic_obs]\ncap = \"many\"\n")
            .unwrap_err()
            .contains("non-negative integer"));
    }

    #[test]
    fn topic_obs_rejects_unknown_keys_with_line_numbers() {
        let err = parse("[topic_obs]\ncardinality = 64\n").unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
        assert!(err.contains("unknown key `cardinality` in [topic_obs]"), "got: {err}");

        // The unknown-section hint names every section, the new one included.
        let err = parse("[topics_obs]\n").unwrap_err();
        assert!(err.contains("line 1"), "got: {err}");
        assert!(err.contains("topic_obs"), "got: {err}");
    }

    #[test]
    fn malformed_topic_obs_lines_name_the_line() {
        let err = parse("[topic_obs]\n\ncap 64\n").unwrap_err();
        assert!(err.contains("line 3"), "got: {err}");
        assert!(err.contains("key = value"), "got: {err}");

        let err = parse("[topic_obs\ncap = 64\n").unwrap_err();
        assert!(err.contains("line 1"), "got: {err}");
        assert!(err.contains("unterminated section"), "got: {err}");

        let err = parse("[topic_obs]\ncap =\n").unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
        assert!(err.contains("missing value"), "got: {err}");
    }

    #[test]
    fn forecast_section_presence_enables_and_validates() {
        let c = parse("[forecast]\n").unwrap();
        let f = c.forecast.unwrap();
        assert!(f.enabled);
        assert_eq!(f.horizon_secs, None);
        assert_eq!(f.min_confidence, None);

        let c = parse("[forecast]\nenabled = false\nhorizon_secs = 300\n").unwrap();
        let f = c.forecast.unwrap();
        assert!(!f.enabled);
        assert_eq!(f.horizon_secs, Some(300));

        assert!(parse("[forecast]\nhorizon_secs = 0\n").unwrap_err().contains("at least 1"));
        assert!(parse("[forecast]\ntrend_window_secs = 0\n").unwrap_err().contains("at least 1"));
        assert!(parse("[forecast]\nmin_confidence = \"sure\"\n")
            .unwrap_err()
            .contains("`min_confidence`"));
        let err = parse("[forecast]\neta = 5\n").unwrap_err();
        assert!(err.contains("unknown key `eta` in [forecast]"), "got: {err}");
    }

    #[test]
    fn empty_text_is_all_defaults() {
        assert_eq!(parse("").unwrap(), ServerFileConfig::default());
        assert_eq!(parse("# only comments\n\n").unwrap(), ServerFileConfig::default());
    }

    #[test]
    fn section_presence_enables_and_enabled_false_disables() {
        let c = parse("[flow]\n").unwrap();
        assert!(c.flow.unwrap().enabled);
        let c = parse("[flow]\nenabled = false\nw99_ms = 5\n").unwrap();
        let flow = c.flow.unwrap();
        assert!(!flow.enabled);
        assert_eq!(flow.w99_ms, Some(5));
    }

    #[test]
    fn rejects_unknown_keys_sections_and_bad_values() {
        assert!(parse("frobnicate = 1\n").unwrap_err().contains("unknown key"));
        assert!(parse("[nope]\n").unwrap_err().contains("unknown section"));
        assert!(parse("shards = 0\n").unwrap_err().contains("at least 1"));
        assert!(parse("shards = \"four\"\n").unwrap_err().contains("non-negative integer"));
        assert!(parse("cost_model = \"fast\"\n").unwrap_err().contains("corr"));
        assert!(parse("[trace]\ntail_quantile = 1.5\n").unwrap_err().contains("(0, 1)"));
        assert!(parse("listen 127.0.0.1\n").unwrap_err().contains("key = value"));
        assert!(parse("listen = \"unterminated\n").unwrap_err().contains("unterminated"));
        assert!(parse("[slo]\nalert_sinks = [\"smoke-signal\"]\n")
            .unwrap_err()
            .contains("bad alert sink"));
    }

    #[test]
    fn comments_and_strings_interact_correctly() {
        let c = parse("listen = \"host#port\" # trailing comment\n").unwrap();
        assert_eq!(c.listen.as_deref(), Some("host#port"));
    }

    #[test]
    fn error_messages_name_the_line() {
        let err = parse("listen = \"ok\"\nbad line\n").unwrap_err();
        assert!(err.contains("line 2"), "got: {err}");
    }
}
