//! Dependency-free HTTP/1.1 exposition endpoint.
//!
//! Serves the broker's observability surfaces to scrapers and humans:
//!
//! * `GET /metrics` — Prometheus text format (version 0.0.4) rendered from
//!   every attached [`MetricsRegistry`]: counters, gauges, and histograms
//!   with cumulative buckets (`_ns` instruments are rewritten to
//!   `_seconds` base units).
//! * `GET /snapshot.json` — the typed broker snapshot (message counters,
//!   subscription topology, journal state, per-topic totals) plus the full
//!   JSON form of every registry.
//! * `GET /traces` — the flight recorder's span chains as JSON (see
//!   [`rjms_trace`]): tail-sampled slow messages plus the uniform baseline,
//!   grouped per trace id in pipeline order.
//! * `GET /model` — the latest analytic-model verdict text (Eq. 1 +
//!   M/GI/1 drift check), when the host wires one in.
//! * `GET /history?metric=…&window=…&reduce=…` — per-slot series and
//!   merged-window summary from the SLO engine's metric history
//!   ([`rjms_obs::history`]), when one is attached.
//! * `GET /slo` — burn rates, states, and budget remaining for every
//!   objective, plus the engine's latest saturation forecast.
//! * `GET /forecast` — the predictive layer on its own: λ(t) trend,
//!   analytic breach points, time-to-breach ETAs with confidence bands,
//!   and the Little's-law telemetry self-check.
//! * `GET /alerts` — active alert states plus the recent transition feed
//!   with evidence.
//! * `GET /flow` — the admission gate's live calibration (λ_max, its
//!   source, bucket fill, per-class grant/defer/shed counters) as JSON,
//!   when flow control is enabled.
//! * `GET /shards` — per-shard model assessments (measured operating
//!   point vs Eq. 1 + M/GI/1 evaluated per dispatcher shard) as JSON,
//!   when a broker observer is attached and the broker can anchor the
//!   model (a cost model or flow control). With the topic observatory on,
//!   the body also carries a `rebalance` block: per-shard load shares,
//!   the max/mean skew ratio, and the advisor's topic moves.
//! * `GET /topics` — the per-topic workload observatory (arrival rates,
//!   mean filter/replication/service observations, online-fitted Eq. 1
//!   cost constants and drift verdicts per topic plus the pooled global
//!   fit), when the broker runs with `topic_obs` enabled.
//!
//! The server is deliberately minimal — blocking I/O, one thread per
//! connection, `Connection: close` on every response — because its
//! audience is a scraper polling every few seconds, not a serving
//! workload. It has no dependencies beyond the standard library, in
//! keeping with the offline build environment. It is nevertheless
//! defensive at the parsing layer: unknown paths get 404, non-GET methods
//! 405, malformed heads 400, an oversized request line 414, an oversized
//! header block 431, and a stalled or truncated head is abandoned on a
//! read timeout instead of hanging the connection thread.

use rjms_broker::{
    BrokerObserver, BrokerSnapshot, FlowGate, ShardReport, TopicObsRow, TopicObservatorySnapshot,
};
use rjms_core::regression::{FittedCosts, RegressionVerdict};
use rjms_core::ModelVerdict;
use rjms_metrics::{clock, labeled, MetricsRegistry};
use rjms_obs::slo::{SERVICE_METRIC, WAITING_METRIC};
use rjms_obs::topics::{analyze_skew, SkewConfig, TopicLoad};
use rjms_obs::{ObsCore, Reduce, BACKLOG_METRIC};
use rjms_trace::{group_chains, render_chains_json, FlightRecorder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything the endpoint can expose. Build one with the chained setters,
/// then hand it to [`HttpServer::start`].
#[derive(Clone, Default)]
pub struct HttpState {
    registries: Vec<MetricsRegistry>,
    observer: Option<BrokerObserver>,
    recorder: Option<Arc<FlightRecorder>>,
    model: Arc<Mutex<String>>,
    obs: Option<Arc<Mutex<ObsCore>>>,
    flow: Option<Arc<FlowGate>>,
}

impl std::fmt::Debug for HttpState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpState")
            .field("registries", &self.registries.len())
            .field("observer", &self.observer.is_some())
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl HttpState {
    /// An empty state: every endpoint answers, with empty bodies where
    /// nothing is attached.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a metrics registry; `/metrics` and `/snapshot.json`
    /// concatenate all attached registries in order.
    #[must_use]
    pub fn registry(mut self, registry: MetricsRegistry) -> Self {
        self.registries.push(registry);
        self
    }

    /// Attaches the broker counter snapshot source for `/snapshot.json`.
    #[must_use]
    pub fn observer(mut self, observer: BrokerObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches the span-event flight recorder for `/traces`.
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The shared text buffer behind `/model`. A monitoring thread can
    /// lock it and replace the contents with each new verdict; the
    /// endpoint serves whatever is current.
    pub fn model_text(&self) -> Arc<Mutex<String>> {
        Arc::clone(&self.model)
    }

    /// Attaches the SLO engine for `/history`, `/slo`, and `/alerts`
    /// (typically [`rjms_obs::ObsRuntime::core`]).
    #[must_use]
    pub fn obs(mut self, core: Arc<Mutex<ObsCore>>) -> Self {
        self.obs = Some(core);
        self
    }

    /// Attaches the admission gate for `/flow` (typically
    /// [`rjms_broker::Broker::flow`]).
    #[must_use]
    pub fn flow(mut self, gate: Arc<FlowGate>) -> Self {
        self.flow = Some(gate);
        self
    }
}

/// The running exposition server; shuts down on [`HttpServer::shutdown`]
/// or drop.
pub struct HttpServer {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer").field("addr", &self.addr).finish()
    }
}

impl HttpServer {
    /// Binds and starts serving in a background thread.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn start(state: HttpState, addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&stopping);
        let acceptor =
            std::thread::Builder::new().name("rjms-http".to_owned()).spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let state = state.clone();
                    // One short-lived thread per request: the endpoint is
                    // scraped every few seconds, not load-bearing.
                    let _ = std::thread::Builder::new()
                        .name("rjms-http-conn".to_owned())
                        .spawn(move || serve_connection(stream, &state));
                }
            })?;
        Ok(HttpServer { addr, stopping, acceptor: Some(acceptor) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the acceptor thread. In-flight responses
    /// finish on their own threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.stopping.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

fn serve_connection(mut stream: TcpStream, state: &HttpState) {
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let (method, target) = match read_request_head(&mut stream) {
        RequestHead::Ok { method, target } => (method, target),
        RequestHead::Closed => return, // nothing readable: don't guess a reply
        RequestHead::Malformed => {
            respond(&mut stream, "400 Bad Request", "text/plain", "malformed request\n");
            return;
        }
        RequestHead::LineTooLong => {
            respond(&mut stream, "414 URI Too Long", "text/plain", "request line too long\n");
            return;
        }
        RequestHead::HeadTooLarge => {
            respond(
                &mut stream,
                "431 Request Header Fields Too Large",
                "text/plain",
                "request head too large\n",
            );
            return;
        }
    };
    if method != "GET" {
        respond(&mut stream, "405 Method Not Allowed", "text/plain", "only GET is supported\n");
        return;
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    match path {
        "/" => respond(
            &mut stream,
            "200 OK",
            "text/plain; charset=utf-8",
            "rjms exposition endpoints:\n\
             /metrics        Prometheus text format\n\
             /snapshot.json  broker + registry snapshot (JSON)\n\
             /traces         tail-sampled message span chains (JSON)\n\
             /model          latest analytic-model drift verdict\n\
             /history        metric history series (?metric=&window=&reduce=)\n\
             /slo            objective burn rates and budgets (JSON)\n\
             /forecast       time-to-breach saturation forecast (JSON)\n\
             /alerts         alert states and transition feed (JSON)\n\
             /flow           admission-gate calibration and counters (JSON)\n\
             /shards         per-shard model assessments + rebalance advice (JSON)\n\
             /topics         per-topic workload observatory (JSON)\n",
        ),
        "/metrics" => {
            let mut body = String::new();
            for registry in &state.registries {
                body.push_str(&registry.snapshot().render_prometheus());
            }
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4; charset=utf-8", &body);
        }
        "/snapshot.json" => {
            let body = render_snapshot_json(state);
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/traces" => match &state.recorder {
            Some(recorder) => {
                let snap = recorder.snapshot();
                let chains = group_chains(snap.events);
                let body =
                    render_chains_json(&chains, clock::ns_per_tick(), snap.recorded, snap.capacity);
                respond(&mut stream, "200 OK", "application/json", &body);
            }
            None => respond(&mut stream, "404 Not Found", "text/plain", "tracing disabled\n"),
        },
        "/model" => {
            let text = state.model.lock().map(|t| t.clone()).unwrap_or_default();
            let body = if text.is_empty() { "no model assessment yet\n" } else { &text };
            respond(&mut stream, "200 OK", "text/plain; charset=utf-8", body);
        }
        "/slo" => match &state.obs {
            Some(obs) => {
                let body = obs.lock().map(|core| core.render_slo_json()).unwrap_or_default();
                respond(&mut stream, "200 OK", "application/json", &body);
            }
            None => respond(&mut stream, "404 Not Found", "text/plain", "slo engine disabled\n"),
        },
        "/forecast" => match &state.obs {
            Some(obs) => {
                let body = obs.lock().map(|core| core.render_forecast_json()).unwrap_or_default();
                respond(&mut stream, "200 OK", "application/json", &body);
            }
            None => respond(&mut stream, "404 Not Found", "text/plain", "slo engine disabled\n"),
        },
        "/alerts" => match &state.obs {
            Some(obs) => {
                let body = obs.lock().map(|core| core.render_alerts_json()).unwrap_or_default();
                respond(&mut stream, "200 OK", "application/json", &body);
            }
            None => respond(&mut stream, "404 Not Found", "text/plain", "slo engine disabled\n"),
        },
        "/history" => match &state.obs {
            Some(obs) => serve_history(&mut stream, obs, query),
            None => respond(&mut stream, "404 Not Found", "text/plain", "slo engine disabled\n"),
        },
        "/flow" => match &state.flow {
            Some(gate) => {
                let body = render_flow_json(gate);
                respond(&mut stream, "200 OK", "application/json", &body);
            }
            None => respond(&mut stream, "404 Not Found", "text/plain", "flow control disabled\n"),
        },
        "/shards" => match &state.observer {
            Some(observer) => {
                let body = render_shards_json(
                    &observer.shard_reports(),
                    observer.topic_observatory().as_ref(),
                    state,
                );
                respond(&mut stream, "200 OK", "application/json", &body);
            }
            None => respond(&mut stream, "404 Not Found", "text/plain", "no broker attached\n"),
        },
        "/topics" => match &state.observer {
            Some(observer) => match observer.topic_observatory() {
                Some(snap) => {
                    let body = render_topics_json(&snap);
                    respond(&mut stream, "200 OK", "application/json", &body);
                }
                None => respond(
                    &mut stream,
                    "404 Not Found",
                    "text/plain",
                    "topic observatory disabled\n",
                ),
            },
            None => respond(&mut stream, "404 Not Found", "text/plain", "no broker attached\n"),
        },
        _ => respond(&mut stream, "404 Not Found", "text/plain", "unknown path\n"),
    }
}

/// Answers `/history?metric=…[&window=…][&reduce=…]`.
///
/// `window` accepts plain seconds or an `s`/`m`/`h` suffix (default
/// `60s`); `reduce` is `rate`, `level`, `count`, or a quantile like `q99`
/// (default: `q99` for `*_ns` instruments, `rate` otherwise).
fn serve_history(stream: &mut TcpStream, obs: &Arc<Mutex<ObsCore>>, query: &str) {
    let Some(metric) = query_param(query, "metric") else {
        respond(stream, "400 Bad Request", "text/plain", "missing ?metric= parameter\n");
        return;
    };
    let window = match query_param(query, "window") {
        None => Duration::from_secs(60),
        Some(raw) => match parse_window(raw) {
            Some(w) => w,
            None => {
                respond(stream, "400 Bad Request", "text/plain", "bad window (try 90s, 5m, 2h)\n");
                return;
            }
        },
    };
    let reduce = match query_param(query, "reduce") {
        None if metric.ends_with("_ns") => Reduce::Quantile(0.99),
        None => Reduce::Rate,
        Some(raw) => match parse_reduce(raw) {
            Some(r) => r,
            None => {
                respond(
                    stream,
                    "400 Bad Request",
                    "text/plain",
                    "bad reduce (rate, level, count, mean, or q99-style quantile)\n",
                );
                return;
            }
        },
    };
    let body =
        obs.lock().map(|core| core.render_history_json(metric, window, reduce)).unwrap_or_default();
    respond(stream, "200 OK", "application/json", &body);
}

/// First value of a `key=value` pair in a query string (no
/// percent-decoding: metric names are plain dotted identifiers).
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

/// Parses `90`, `90s`, `5m`, or `2h` into a duration.
fn parse_window(raw: &str) -> Option<Duration> {
    let (digits, scale) = match raw.as_bytes().last()? {
        b's' => (&raw[..raw.len() - 1], 1),
        b'm' => (&raw[..raw.len() - 1], 60),
        b'h' => (&raw[..raw.len() - 1], 3600),
        _ => (raw, 1),
    };
    let n: u64 = digits.parse().ok()?;
    (n > 0).then(|| Duration::from_secs(n * scale))
}

/// Parses `rate`, `level`, `count`, `mean`, or `q<digits>` (`q99` →
/// 0.99, `q9999` → 0.9999).
fn parse_reduce(raw: &str) -> Option<Reduce> {
    match raw {
        "rate" => Some(Reduce::Rate),
        "level" => Some(Reduce::Level),
        "count" => Some(Reduce::Count),
        "mean" => Some(Reduce::Mean),
        _ => {
            let digits = raw.strip_prefix('q')?;
            if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let p: f64 = format!("0.{digits}").parse().ok()?;
            (p > 0.0 && p < 1.0).then_some(Reduce::Quantile(p))
        }
    }
}

/// Cap on the request line (method + target + version).
const MAX_REQUEST_LINE: usize = 4 * 1024;
/// Cap on the whole head (request line + headers + blank line).
const MAX_HEAD: usize = 16 * 1024;

/// Outcome of reading a request head.
enum RequestHead {
    /// A parseable request line arrived.
    Ok {
        /// The HTTP method token.
        method: String,
        /// The request target (path plus optional query).
        target: String,
    },
    /// The peer closed, stalled past the read timeout, or errored before a
    /// complete head arrived.
    Closed,
    /// A complete head arrived but the request line is not HTTP-shaped.
    Malformed,
    /// The request line exceeded [`MAX_REQUEST_LINE`].
    LineTooLong,
    /// The head exceeded [`MAX_HEAD`].
    HeadTooLarge,
}

/// Reads the request head (everything through the blank line), tolerating
/// arbitrary chunking of the incoming bytes. Bounded: the request line may
/// not exceed [`MAX_REQUEST_LINE`] bytes and the whole head
/// [`MAX_HEAD`]; a peer that stalls mid-head trips the stream's read
/// timeout and is abandoned.
fn read_request_head(stream: &mut TcpStream) -> RequestHead {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        // Size caps come before the terminator check so a head that blows
        // a cap is rejected even when its final chunk also carries the
        // terminating blank line.
        if !head[..head.len().min(MAX_REQUEST_LINE)].contains(&b'\n')
            && head.len() > MAX_REQUEST_LINE
        {
            return RequestHead::LineTooLong;
        }
        if head.len() > MAX_HEAD {
            return RequestHead::HeadTooLarge;
        }
        if head.windows(4).any(|w| w == b"\r\n\r\n") {
            break;
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return RequestHead::Closed,
            Ok(n) => head.extend_from_slice(&buf[..n]),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let Some(line) = head.lines().next() else {
        return RequestHead::Malformed;
    };
    if line.len() > MAX_REQUEST_LINE {
        return RequestHead::LineTooLong;
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return RequestHead::Malformed;
    };
    if !version.starts_with("HTTP/") {
        return RequestHead::Malformed;
    }
    RequestHead::Ok { method: method.to_owned(), target: target.to_owned() }
}

/// Writes status line, headers, and body as one buffer with a single
/// `write_all`, so concurrent responses never interleave mid-line.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let mut out = String::with_capacity(128 + body.len());
    out.push_str("HTTP/1.1 ");
    out.push_str(status);
    out.push_str("\r\nContent-Type: ");
    out.push_str(content_type);
    out.push_str("\r\nContent-Length: ");
    out.push_str(&body.len().to_string());
    out.push_str("\r\nConnection: close\r\n\r\n");
    out.push_str(body);
    let _ = stream.write_all(out.as_bytes());
    let _ = stream.flush();
}

fn render_snapshot_json(state: &HttpState) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"broker\":");
    match &state.observer {
        Some(observer) => render_broker_json(&mut out, &observer.snapshot()),
        None => out.push_str("null"),
    }
    out.push_str(",\"registries\":[");
    for (i, registry) in state.registries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&registry.snapshot().to_json());
    }
    out.push_str("]}");
    out
}

fn render_broker_json(out: &mut String, snap: &BrokerSnapshot) {
    use std::fmt::Write;
    let m = &snap.messages;
    let _ = write!(
        out,
        "{{\"messages\":{{\"received\":{},\"dispatched\":{},\"filter_evaluations\":{},\
         \"dropped\":{},\"retained\":{},\"expired\":{}}}",
        m.received, m.dispatched, m.filter_evaluations, m.dropped, m.retained, m.expired
    );
    let s = &snap.subscriptions;
    let _ = write!(
        out,
        ",\"subscriptions\":{{\"topics\":{},\"live\":{},\"durable\":{},\"expired\":{}}}",
        s.topics, s.live, s.durable, s.expired
    );
    match &snap.journal {
        Some(j) => {
            let _ = write!(
                out,
                ",\"journal\":{{\"appends\":{},\"bytes_appended\":{},\"fsyncs\":{},\
                 \"frames_recovered\":{},\"torn_bytes_truncated\":{},\"segments_rotated\":{},\
                 \"segments_removed\":{}}}",
                j.appends,
                j.bytes_appended,
                j.fsyncs,
                j.frames_recovered,
                j.torn_bytes_truncated,
                j.segments_rotated,
                j.segments_removed
            );
        }
        None => out.push_str(",\"journal\":null"),
    }
    match &snap.flow {
        Some(fc) => {
            let _ = write!(
                out,
                ",\"flow\":{{\"granted\":{},\"deferred\":{},\"shed\":{}}}",
                fc.granted, fc.deferred, fc.shed
            );
        }
        None => out.push_str(",\"flow\":null"),
    }
    // The `shards` key only appears for sharded brokers, keeping the
    // single-dispatcher snapshot body byte-identical to earlier releases.
    if let Some(shards) = &snap.shards {
        out.push_str(",\"shards\":[");
        for (i, s) in shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{},\"topics\":{},\"received\":{},\"dispatched\":{},\
                 \"filter_evaluations\":{}}}",
                s.shard, s.topics, s.received, s.dispatched, s.filter_evaluations
            );
        }
        out.push(']');
    }
    out.push_str(",\"per_topic\":{");
    for (i, (name, t)) in snap.per_topic.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_escape_into(out, name);
        let _ = write!(out, ":{{\"received\":{},\"dispatched\":{}}}", t.received, t.dispatched);
    }
    out.push('}');
    let _ = write!(out, ",\"topics_overflowed\":{}", snap.topics_overflowed);
    out.push('}');
}

/// Renders the per-shard model reports as the `/shards` JSON body. When
/// flow control is attached, each shard also carries its slice of the
/// admission budget (`lambda_max / shards` — the controller holds every
/// shard at the same inverted utilisation). When the topic observatory is
/// on, the body also carries the skew analyzer's `rebalance` block. When
/// the SLO engine is attached, each shard carries its own saturation
/// forecast computed over its labeled instrument twins.
fn render_shards_json(
    reports: &[ShardReport],
    observatory: Option<&TopicObservatorySnapshot>,
    state: &HttpState,
) -> String {
    use std::fmt::Write;
    let obs_core = state.obs.as_ref().and_then(|o| o.lock().ok());
    let lambda_budget = state
        .flow
        .as_ref()
        .filter(|_| !reports.is_empty())
        .map(|gate| gate.snapshot().lambda_max / reports.len() as f64);
    let mut out = String::with_capacity(512);
    out.push_str("{\"shards\":[");
    for (i, r) in reports.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"shard\":{},\"samples\":{},\"arrival_rate\":{},\"filters\":{},\
             \"replication_grade\":{}",
            r.shard, r.samples, r.arrival_rate, r.filters, r.replication_grade
        );
        match lambda_budget {
            Some(b) => {
                let _ = write!(out, ",\"lambda_budget\":{b}");
            }
            None => out.push_str(",\"lambda_budget\":null"),
        }
        out.push_str(",\"verdict\":");
        match &r.verdict {
            ModelVerdict::Insufficient { samples, required } => {
                let _ = write!(
                    out,
                    "{{\"kind\":\"insufficient\",\"samples\":{samples},\"required\":{required}}}"
                );
            }
            ModelVerdict::Overloaded { utilization } => {
                let _ = write!(out, "{{\"kind\":\"overloaded\",\"utilization\":{utilization}}}");
            }
            verdict @ (ModelVerdict::Calibrated(report) | ModelVerdict::Drift(report)) => {
                let kind = if verdict.is_calibrated() { "calibrated" } else { "drift" };
                let m = &report.measured;
                let p = &report.predicted;
                let _ = write!(
                    out,
                    "{{\"kind\":\"{kind}\",\"measured\":{{\"utilization\":{},\
                     \"mean_service_time\":{},\"mean_waiting_time\":{},\"q99\":{}}},\
                     \"predicted\":{{\"utilization\":{},\"mean_service_time\":{},\
                     \"mean_waiting_time\":{},\"q99\":{}}},\"violations\":{}}}",
                    m.utilization,
                    m.mean_service_time,
                    m.mean_waiting_time,
                    m.q99,
                    p.utilization,
                    p.mean_service_time,
                    p.mean_waiting_time,
                    p.q99,
                    report.violations.len()
                );
            }
            // `ModelVerdict` is non-exhaustive: future variants degrade to
            // their kind name only.
            other => {
                let _ = write!(out, "{{\"kind\":\"{other:?}\"}}");
            }
        }
        out.push_str(",\"forecast\":");
        let forecast = obs_core.as_ref().and_then(|core| {
            let shard = r.shard.to_string();
            let twin = |base: &str| labeled(base, &[("shard", &shard)]);
            core.forecast_for(&twin(WAITING_METRIC), &twin(SERVICE_METRIC), &twin(BACKLOG_METRIC))
        });
        match forecast {
            Some(f) => out.push_str(&f.render_json()),
            None => out.push_str("null"),
        }
        out.push('}');
    }
    out.push(']');
    out.push_str(",\"rebalance\":");
    match observatory {
        Some(snap) => render_rebalance_json(&mut out, snap),
        None => out.push_str("null"),
    }
    out.push('}');
    out
}

/// Renders the skew analyzer's report (shares, ratio, advised moves) from
/// an observatory snapshot.
fn render_rebalance_json(out: &mut String, snap: &TopicObservatorySnapshot) {
    use std::fmt::Write;
    let loads: Vec<TopicLoad> = snap
        .topics
        .iter()
        .map(|t| TopicLoad {
            name: t.name.clone(),
            shard: t.shard,
            arrival_rate: t.arrival_rate,
            mean_service_time: t.mean_service_time,
        })
        .collect();
    let config = SkewConfig {
        shards: snap.shards,
        flag_ratio: snap.config.flag_ratio,
        target_ratio: snap.config.target_ratio,
    };
    let report = analyze_skew(&loads, &config);
    let _ = write!(
        out,
        "{{\"max_mean_ratio\":{},\"skewed\":{},\"flag_ratio\":{},\"target_ratio\":{},\
         \"post_ratio\":{},\"shares\":[",
        report.max_mean_ratio,
        report.skewed,
        config.flag_ratio,
        config.target_ratio,
        report.post_ratio
    );
    for (i, s) in report.shares.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"shard\":{},\"offered_load\":{},\"arrival_share\":{},\"load_share\":{},\
             \"topics\":{}}}",
            s.shard, s.offered_load, s.arrival_share, s.load_share, s.topics
        );
    }
    out.push_str("],\"moves\":[");
    for (i, m) in report.moves.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"topic\":");
        json_escape_into(out, &m.topic);
        let _ = write!(out, ",\"from\":{},\"to\":{},\"load\":{}}}", m.from, m.to, m.load);
    }
    out.push_str("]}");
}

/// Renders the observatory snapshot as the `/topics` JSON body.
fn render_topics_json(snap: &TopicObservatorySnapshot) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"elapsed_secs\":{},\"shards\":{},\"per_topic_cap\":{},\"overflowed_topics\":{},",
        snap.elapsed.as_secs_f64(),
        snap.shards,
        snap.config.per_topic_cap,
        snap.overflowed_topics
    );
    out.push_str("\"anchor\":");
    match &snap.anchor {
        Some(a) => {
            let _ = write!(
                out,
                "{{\"t_rcv\":{},\"t_fltr\":{},\"t_tx\":{},\"t_store\":{}}}",
                a.t_rcv, a.t_fltr, a.t_tx, a.t_store
            );
        }
        None => out.push_str("null"),
    }
    out.push_str(",\"global\":{\"fitted\":");
    render_fitted_json(&mut out, snap.global_fitted.as_ref());
    out.push_str(",\"verdict\":");
    render_regression_verdict_json(&mut out, snap.global_verdict.as_ref());
    out.push_str("},\"topics\":[");
    for (i, t) in snap.topics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        render_topic_row_json(&mut out, t);
    }
    out.push_str("]}");
    out
}

/// Renders one observatory row.
fn render_topic_row_json(out: &mut String, t: &TopicObsRow) {
    use std::fmt::Write;
    out.push_str("{\"name\":");
    json_escape_into(out, &t.name);
    let _ = write!(
        out,
        ",\"shard\":{},\"messages\":{},\"arrival_rate\":{},\"mean_filters\":{},\
         \"mean_replication\":{},\"mean_service_time\":{},\"fitted\":",
        t.shard,
        t.messages,
        t.arrival_rate,
        t.mean_filters,
        t.mean_replication,
        t.mean_service_time
    );
    render_fitted_json(out, t.fitted.as_ref());
    out.push_str(",\"verdict\":");
    render_regression_verdict_json(out, t.verdict.as_ref());
    out.push('}');
}

/// Renders an adaptive fit (or `null`).
fn render_fitted_json(out: &mut String, fitted: Option<&FittedCosts>) {
    use std::fmt::Write;
    match fitted {
        Some(f) => {
            let p = &f.params;
            let _ = write!(
                out,
                "{{\"mode\":\"{}\",\"t_rcv\":{},\"t_fltr\":{},\"t_tx\":{},\"t_store\":{},\
                 \"residual_rms\":{},\"r_squared\":{},\"observations\":{}}}",
                f.mode,
                p.t_rcv,
                p.t_fltr,
                p.t_tx,
                p.t_store,
                f.residual_rms,
                f.r_squared,
                f.observations
            );
        }
        None => out.push_str("null"),
    }
}

/// Renders a regression verdict (or `null`): its kind plus, for
/// stable/drift, the out-of-tolerance components.
fn render_regression_verdict_json(out: &mut String, verdict: Option<&RegressionVerdict>) {
    use std::fmt::Write;
    let Some(verdict) = verdict else {
        out.push_str("null");
        return;
    };
    let _ = write!(out, "{{\"kind\":\"{}\"", verdict.kind());
    if let RegressionVerdict::Insufficient { samples, required } = verdict {
        let _ = write!(out, ",\"samples\":{samples},\"required\":{required}");
    }
    if let Some(report) = verdict.report() {
        out.push_str(",\"deviations\":[");
        for (i, d) in report.deviations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"component\":\"{}\",\"fitted\":{},\"configured\":{},\"error\":{},\
                 \"tolerance\":{}}}",
                d.component, d.fitted, d.configured, d.error, d.tolerance
            );
        }
        out.push(']');
    }
    out.push('}');
}

/// Renders the admission gate's [`FlowSnapshot`](rjms_broker::FlowSnapshot)
/// as the `/flow` JSON body.
fn render_flow_json(gate: &FlowGate) -> String {
    use std::fmt::Write;
    let s = gate.snapshot();
    let mut out = String::with_capacity(512);
    let _ = write!(
        out,
        "{{\"lambda_max\":{},\"rho_max\":{},\"w99_objective\":{},\"headroom\":{},\
         \"source\":\"{}\",\"refreshes\":{},\"classes\":{},\"bucket_level\":{},\
         \"bucket_burst\":{},\"credit_window\":{},\"producers\":{},\"per_class\":[",
        s.lambda_max,
        s.rho_max,
        s.w99_objective,
        s.headroom,
        s.source,
        s.refreshes,
        s.classes,
        s.bucket_level,
        s.bucket_burst,
        s.credit_window,
        s.producers
    );
    for (i, c) in s.per_class.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"class\":{},\"granted\":{},\"deferred\":{},\"shed\":{}}}",
            c.class, c.granted, c.deferred, c.shed
        );
    }
    out.push_str("]}");
    out
}

/// Appends `s` as a quoted JSON string (topic names are user input).
fn json_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjms_obs::ObsConfig;

    fn server(state: HttpState) -> HttpServer {
        HttpServer::start(state, "127.0.0.1:0").expect("bind")
    }

    /// Sends raw bytes (in the given chunks, with a pause between them)
    /// and returns the full response text.
    fn raw_request(addr: SocketAddr, chunks: &[&[u8]]) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        for (i, chunk) in chunks.iter().enumerate() {
            if i > 0 {
                std::thread::sleep(Duration::from_millis(20));
            }
            stream.write_all(chunk).expect("write");
            stream.flush().ok();
        }
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    fn get(addr: SocketAddr, path: &str) -> String {
        raw_request(addr, &[format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes()])
    }

    fn status_of(response: &str) -> &str {
        response.split("\r\n").next().unwrap_or("")
    }

    #[test]
    fn unknown_path_is_404() {
        let s = server(HttpState::new());
        let r = get(s.local_addr(), "/nope");
        assert_eq!(status_of(&r), "HTTP/1.1 404 Not Found");
        s.shutdown();
    }

    #[test]
    fn non_get_method_is_405() {
        let s = server(HttpState::new());
        let r = raw_request(s.local_addr(), &[b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n"]);
        assert_eq!(status_of(&r), "HTTP/1.1 405 Method Not Allowed");
        s.shutdown();
    }

    #[test]
    fn malformed_request_line_is_400() {
        let s = server(HttpState::new());
        let r = raw_request(s.local_addr(), &[b"BOGUS\r\n\r\n"]);
        assert_eq!(status_of(&r), "HTTP/1.1 400 Bad Request");
        let r = raw_request(s.local_addr(), &[b"GET /metrics NOTHTTP\r\n\r\n"]);
        assert_eq!(status_of(&r), "HTTP/1.1 400 Bad Request");
        s.shutdown();
    }

    #[test]
    fn oversized_request_line_is_414() {
        let s = server(HttpState::new());
        let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_REQUEST_LINE + 10));
        let r = raw_request(s.local_addr(), &[long_path.as_bytes()]);
        assert_eq!(status_of(&r), "HTTP/1.1 414 URI Too Long");
        s.shutdown();
    }

    #[test]
    fn oversized_header_block_is_431() {
        let s = server(HttpState::new());
        let huge = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "b".repeat(MAX_HEAD + 10));
        let r = raw_request(s.local_addr(), &[huge.as_bytes()]);
        assert_eq!(status_of(&r), "HTTP/1.1 431 Request Header Fields Too Large");
        s.shutdown();
    }

    #[test]
    fn partial_writes_are_assembled() {
        let s = server(HttpState::new());
        let r = raw_request(s.local_addr(), &[b"GET / HT", b"TP/1.1\r\nHo", b"st: t\r\n", b"\r\n"]);
        assert_eq!(status_of(&r), "HTTP/1.1 200 OK");
        s.shutdown();
    }

    #[test]
    fn truncated_head_then_close_gets_no_response() {
        let s = server(HttpState::new());
        let mut stream = TcpStream::connect(s.local_addr()).expect("connect");
        stream.write_all(b"GET / HTTP/1.1\r\nHost: t\r\n").expect("write");
        // Half-close the write side: the server sees EOF mid-head and must
        // drop the connection rather than answer or hang.
        stream.shutdown(std::net::Shutdown::Write).expect("shutdown");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.is_empty(), "unexpected response: {response}");
        s.shutdown();
    }

    #[test]
    fn slo_endpoints_404_without_engine() {
        let s = server(HttpState::new());
        for path in ["/slo", "/alerts", "/forecast", "/history?metric=x", "/flow"] {
            let r = get(s.local_addr(), path);
            assert_eq!(status_of(&r), "HTTP/1.1 404 Not Found", "path {path}");
        }
        s.shutdown();
    }

    #[test]
    fn flow_endpoint_renders_gate_snapshot() {
        use rjms_broker::FlowConfig;
        let gate = Arc::new(FlowGate::new(FlowConfig::default()));
        let s = server(HttpState::new().flow(gate));
        let r = get(s.local_addr(), "/flow");
        assert_eq!(status_of(&r), "HTTP/1.1 200 OK");
        for key in ["\"lambda_max\":", "\"source\":\"analytic\"", "\"per_class\":["] {
            assert!(r.contains(key), "missing {key} in body: {r}");
        }
        s.shutdown();
    }

    fn obs_state() -> HttpState {
        let registry = MetricsRegistry::new();
        let waiting = registry.histogram("broker.waiting_ns");
        let mut core = ObsCore::new(ObsConfig::default());
        for t in 1..=3u64 {
            waiting.record(500_000);
            core.tick(Duration::from_secs(t), &registry.snapshot(), None);
        }
        HttpState::new().registry(registry).obs(Arc::new(Mutex::new(core)))
    }

    #[test]
    fn slo_and_alerts_render_json() {
        let s = server(obs_state());
        let r = get(s.local_addr(), "/slo");
        assert_eq!(status_of(&r), "HTTP/1.1 200 OK");
        assert!(r.contains("\"objectives\":["), "body: {r}");
        assert!(r.contains("\"forecast\":"), "body: {r}");
        let r = get(s.local_addr(), "/alerts");
        assert_eq!(status_of(&r), "HTTP/1.1 200 OK");
        assert!(r.contains("\"active\":["), "body: {r}");
        s.shutdown();
    }

    #[test]
    fn forecast_endpoint_renders_knobs_and_forecast() {
        let s = server(obs_state());
        let r = get(s.local_addr(), "/forecast");
        assert_eq!(status_of(&r), "HTTP/1.1 200 OK");
        for key in ["\"enabled\":true", "\"horizon_ms\":", "\"min_confidence\":", "\"forecast\":"] {
            assert!(r.contains(key), "missing {key} in body: {r}");
        }
        s.shutdown();
    }

    #[test]
    fn history_serves_backlog_mean_series() {
        let registry = MetricsRegistry::new();
        let waiting = registry.histogram("broker.waiting_ns");
        let backlog = registry.histogram("broker.backlog");
        let mut core = ObsCore::new(ObsConfig::default());
        for t in 1..=3u64 {
            waiting.record(500_000);
            backlog.record(4);
            core.tick(Duration::from_secs(t), &registry.snapshot(), None);
        }
        let s = server(HttpState::new().registry(registry).obs(Arc::new(Mutex::new(core))));
        let r = get(s.local_addr(), "/history?metric=broker.backlog&reduce=mean");
        assert_eq!(status_of(&r), "HTTP/1.1 200 OK");
        assert!(r.contains("\"reduce\":\"mean\""), "body: {r}");
        s.shutdown();
    }

    #[test]
    fn history_requires_metric_and_validates_params() {
        let s = server(obs_state());
        let r = get(s.local_addr(), "/history");
        assert_eq!(status_of(&r), "HTTP/1.1 400 Bad Request");
        let r = get(s.local_addr(), "/history?metric=broker.waiting_ns&window=soon");
        assert_eq!(status_of(&r), "HTTP/1.1 400 Bad Request");
        let r = get(s.local_addr(), "/history?metric=broker.waiting_ns&reduce=zigzag");
        assert_eq!(status_of(&r), "HTTP/1.1 400 Bad Request");
        let r = get(s.local_addr(), "/history?metric=broker.waiting_ns&window=5m&reduce=q99");
        assert_eq!(status_of(&r), "HTTP/1.1 200 OK");
        assert!(r.contains("\"points\":["), "body: {r}");
        assert!(r.contains("\"metric\":\"broker.waiting_ns\""), "body: {r}");
        s.shutdown();
    }

    #[test]
    fn topics_endpoint_404_without_observatory() {
        use rjms_broker::{Broker, BrokerConfig};
        // Observer attached but the observatory disabled: explicit 404.
        let broker = Broker::start(BrokerConfig::default());
        let s = server(HttpState::new().observer(broker.observer()));
        let r = get(s.local_addr(), "/topics");
        assert_eq!(status_of(&r), "HTTP/1.1 404 Not Found");
        assert!(r.contains("topic observatory disabled"), "body: {r}");
        s.shutdown();
        broker.shutdown();
        // No broker attached at all: also 404.
        let s = server(HttpState::new());
        let r = get(s.local_addr(), "/topics");
        assert_eq!(status_of(&r), "HTTP/1.1 404 Not Found");
        s.shutdown();
    }

    #[test]
    fn topics_and_rebalance_render_with_observatory() {
        use rjms_broker::{Broker, BrokerConfig, Message, TopicObsConfig};
        let broker =
            Broker::start(BrokerConfig::builder().topic_obs(TopicObsConfig::default()).build());
        broker.create_topic("t").unwrap();
        let sub = broker.subscription("t").open().unwrap();
        let publisher = broker.publisher("t").unwrap();
        for _ in 0..32 {
            publisher.publish(Message::builder().build()).unwrap();
        }
        for _ in 0..32 {
            sub.receive_timeout(Duration::from_secs(1)).expect("delivered");
        }
        let s = server(HttpState::new().observer(broker.observer()));
        // The dispatcher merges its staged observations when idle; poll
        // until the row shows up.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let body = loop {
            let r = get(s.local_addr(), "/topics");
            assert_eq!(status_of(&r), "HTTP/1.1 200 OK");
            if r.contains("\"name\":\"t\"") {
                break r;
            }
            assert!(std::time::Instant::now() < deadline, "no observatory row: {r}");
            std::thread::sleep(Duration::from_millis(20));
        };
        for key in
            ["\"per_topic_cap\":64", "\"overflowed_topics\":0", "\"global\":{", "\"arrival_rate\":"]
        {
            assert!(body.contains(key), "missing {key} in {body}");
        }
        // The observatory also feeds the /shards rebalance block.
        let r = get(s.local_addr(), "/shards");
        assert_eq!(status_of(&r), "HTTP/1.1 200 OK");
        for key in ["\"rebalance\":{", "\"max_mean_ratio\":", "\"moves\":[", "\"shares\":["] {
            assert!(r.contains(key), "missing {key} in {r}");
        }
        // And the snapshot carries the overflow counter.
        let r = get(s.local_addr(), "/snapshot.json");
        assert!(r.contains("\"topics_overflowed\":0"), "body: {r}");
        s.shutdown();
        broker.shutdown();
    }

    #[test]
    fn window_and_reduce_parsers() {
        assert_eq!(parse_window("90"), Some(Duration::from_secs(90)));
        assert_eq!(parse_window("90s"), Some(Duration::from_secs(90)));
        assert_eq!(parse_window("5m"), Some(Duration::from_secs(300)));
        assert_eq!(parse_window("2h"), Some(Duration::from_secs(7200)));
        assert_eq!(parse_window("0"), None);
        assert_eq!(parse_window("m"), None);
        assert_eq!(parse_window("-5s"), None);
        assert_eq!(parse_reduce("rate"), Some(Reduce::Rate));
        assert_eq!(parse_reduce("mean"), Some(Reduce::Mean));
        assert_eq!(parse_reduce("q99"), Some(Reduce::Quantile(0.99)));
        assert_eq!(parse_reduce("q9999"), Some(Reduce::Quantile(0.9999)));
        assert_eq!(parse_reduce("q"), None);
        assert_eq!(parse_reduce("q0"), None);
        assert_eq!(parse_reduce("p99"), None);
    }
}
