//! Dependency-free HTTP/1.1 exposition endpoint.
//!
//! Serves the broker's observability surfaces to scrapers and humans:
//!
//! * `GET /metrics` — Prometheus text format (version 0.0.4) rendered from
//!   every attached [`MetricsRegistry`]: counters, gauges, and histograms
//!   with cumulative buckets (`_ns` instruments are rewritten to
//!   `_seconds` base units).
//! * `GET /snapshot.json` — the typed broker snapshot (message counters,
//!   subscription topology, journal state, per-topic totals) plus the full
//!   JSON form of every registry.
//! * `GET /traces` — the flight recorder's span chains as JSON (see
//!   [`rjms_trace`]): tail-sampled slow messages plus the uniform baseline,
//!   grouped per trace id in pipeline order.
//! * `GET /model` — the latest analytic-model verdict text (Eq. 1 +
//!   M/GI/1 drift check), when the host wires one in.
//!
//! The server is deliberately minimal — blocking I/O, one thread per
//! connection, `Connection: close` on every response — because its
//! audience is a scraper polling every few seconds, not a serving
//! workload. It has no dependencies beyond the standard library, in
//! keeping with the offline build environment.

use rjms_broker::{BrokerObserver, BrokerSnapshot};
use rjms_metrics::{clock, MetricsRegistry};
use rjms_trace::{group_chains, render_chains_json, FlightRecorder};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Everything the endpoint can expose. Build one with the chained setters,
/// then hand it to [`HttpServer::start`].
#[derive(Clone, Default)]
pub struct HttpState {
    registries: Vec<MetricsRegistry>,
    observer: Option<BrokerObserver>,
    recorder: Option<Arc<FlightRecorder>>,
    model: Arc<Mutex<String>>,
}

impl std::fmt::Debug for HttpState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpState")
            .field("registries", &self.registries.len())
            .field("observer", &self.observer.is_some())
            .field("recorder", &self.recorder.is_some())
            .finish()
    }
}

impl HttpState {
    /// An empty state: every endpoint answers, with empty bodies where
    /// nothing is attached.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a metrics registry; `/metrics` and `/snapshot.json`
    /// concatenate all attached registries in order.
    #[must_use]
    pub fn registry(mut self, registry: MetricsRegistry) -> Self {
        self.registries.push(registry);
        self
    }

    /// Attaches the broker counter snapshot source for `/snapshot.json`.
    #[must_use]
    pub fn observer(mut self, observer: BrokerObserver) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches the span-event flight recorder for `/traces`.
    #[must_use]
    pub fn recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// The shared text buffer behind `/model`. A monitoring thread can
    /// lock it and replace the contents with each new verdict; the
    /// endpoint serves whatever is current.
    pub fn model_text(&self) -> Arc<Mutex<String>> {
        Arc::clone(&self.model)
    }
}

/// The running exposition server; shuts down on [`HttpServer::shutdown`]
/// or drop.
pub struct HttpServer {
    addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer").field("addr", &self.addr).finish()
    }
}

impl HttpServer {
    /// Binds and starts serving in a background thread.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound.
    pub fn start(state: HttpState, addr: impl ToSocketAddrs) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stopping = Arc::new(AtomicBool::new(false));
        let stop = Arc::clone(&stopping);
        let acceptor =
            std::thread::Builder::new().name("rjms-http".to_owned()).spawn(move || {
                for stream in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let state = state.clone();
                    // One short-lived thread per request: the endpoint is
                    // scraped every few seconds, not load-bearing.
                    let _ = std::thread::Builder::new()
                        .name("rjms-http-conn".to_owned())
                        .spawn(move || serve_connection(stream, &state));
                }
            })?;
        Ok(HttpServer { addr, stopping, acceptor: Some(acceptor) })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the acceptor thread. In-flight responses
    /// finish on their own threads.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.stopping.store(true, Ordering::Relaxed);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop();
        }
    }
}

fn serve_connection(mut stream: TcpStream, state: &HttpState) {
    stream.set_read_timeout(Some(Duration::from_secs(5))).ok();
    let Some((method, path)) = read_request_head(&mut stream) else {
        return;
    };
    if method != "GET" {
        respond(&mut stream, "405 Method Not Allowed", "text/plain", "only GET is supported\n");
        return;
    }
    // Ignore any query string: every endpoint is parameterless.
    let path = path.split('?').next().unwrap_or("");
    match path {
        "/" => respond(
            &mut stream,
            "200 OK",
            "text/plain; charset=utf-8",
            "rjms exposition endpoints:\n\
             /metrics        Prometheus text format\n\
             /snapshot.json  broker + registry snapshot (JSON)\n\
             /traces         tail-sampled message span chains (JSON)\n\
             /model          latest analytic-model drift verdict\n",
        ),
        "/metrics" => {
            let mut body = String::new();
            for registry in &state.registries {
                body.push_str(&registry.snapshot().render_prometheus());
            }
            respond(&mut stream, "200 OK", "text/plain; version=0.0.4; charset=utf-8", &body);
        }
        "/snapshot.json" => {
            let body = render_snapshot_json(state);
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/traces" => match &state.recorder {
            Some(recorder) => {
                let snap = recorder.snapshot();
                let chains = group_chains(snap.events);
                let body =
                    render_chains_json(&chains, clock::ns_per_tick(), snap.recorded, snap.capacity);
                respond(&mut stream, "200 OK", "application/json", &body);
            }
            None => respond(&mut stream, "404 Not Found", "text/plain", "tracing disabled\n"),
        },
        "/model" => {
            let text = state.model.lock().map(|t| t.clone()).unwrap_or_default();
            let body = if text.is_empty() { "no model assessment yet\n" } else { &text };
            respond(&mut stream, "200 OK", "text/plain; charset=utf-8", body);
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "unknown path\n"),
    }
}

/// Reads the request head (everything through the blank line) and returns
/// `(method, path)`. `None` on malformed or timed-out input.
fn read_request_head(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > 16 * 1024 {
            return None; // oversized head: drop the connection
        }
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return None,
            Ok(n) => head.extend_from_slice(&buf[..n]),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next()?.split_whitespace();
    let method = parts.next()?.to_owned();
    let path = parts.next()?.to_owned();
    Some((method, path))
}

/// Writes status line, headers, and body as one buffer with a single
/// `write_all`, so concurrent responses never interleave mid-line.
fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let mut out = String::with_capacity(128 + body.len());
    out.push_str("HTTP/1.1 ");
    out.push_str(status);
    out.push_str("\r\nContent-Type: ");
    out.push_str(content_type);
    out.push_str("\r\nContent-Length: ");
    out.push_str(&body.len().to_string());
    out.push_str("\r\nConnection: close\r\n\r\n");
    out.push_str(body);
    let _ = stream.write_all(out.as_bytes());
    let _ = stream.flush();
}

fn render_snapshot_json(state: &HttpState) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\"broker\":");
    match &state.observer {
        Some(observer) => render_broker_json(&mut out, &observer.snapshot()),
        None => out.push_str("null"),
    }
    out.push_str(",\"registries\":[");
    for (i, registry) in state.registries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&registry.snapshot().to_json());
    }
    out.push_str("]}");
    out
}

fn render_broker_json(out: &mut String, snap: &BrokerSnapshot) {
    use std::fmt::Write;
    let m = &snap.messages;
    let _ = write!(
        out,
        "{{\"messages\":{{\"received\":{},\"dispatched\":{},\"filter_evaluations\":{},\
         \"dropped\":{},\"retained\":{},\"expired\":{}}}",
        m.received, m.dispatched, m.filter_evaluations, m.dropped, m.retained, m.expired
    );
    let s = &snap.subscriptions;
    let _ = write!(
        out,
        ",\"subscriptions\":{{\"topics\":{},\"live\":{},\"durable\":{},\"expired\":{}}}",
        s.topics, s.live, s.durable, s.expired
    );
    match &snap.journal {
        Some(j) => {
            let _ = write!(
                out,
                ",\"journal\":{{\"appends\":{},\"bytes_appended\":{},\"fsyncs\":{},\
                 \"frames_recovered\":{},\"torn_bytes_truncated\":{},\"segments_rotated\":{},\
                 \"segments_removed\":{}}}",
                j.appends,
                j.bytes_appended,
                j.fsyncs,
                j.frames_recovered,
                j.torn_bytes_truncated,
                j.segments_rotated,
                j.segments_removed
            );
        }
        None => out.push_str(",\"journal\":null"),
    }
    out.push_str(",\"per_topic\":{");
    for (i, (name, t)) in snap.per_topic.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_escape_into(out, name);
        let _ = write!(out, ":{{\"received\":{},\"dispatched\":{}}}", t.received, t.dispatched);
    }
    out.push_str("}}");
}

/// Appends `s` as a quoted JSON string (topic names are user input).
fn json_escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
