//! `rjms-sub` — subscribe to a remote broker and print received messages.
//!
//! ```text
//! rjms-sub --topic NAME [--connect ADDR] [--selector EXPR | --corr-id PAT]
//!          [--pattern] [--count N] [--quiet]
//! ```
//!
//! `--pattern` treats `--topic` as a wildcard pattern (`sensors.>`).
//! With `--count N` the process exits after N messages (useful in scripts);
//! otherwise it runs until killed.

use rjms::net::client::{RemoteBroker, RemoteSubscriber};
use rjms::net::wire::WireFilter;
use std::time::Duration;

struct Args {
    connect: String,
    topic: String,
    filter: WireFilter,
    pattern: bool,
    count: Option<u64>,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        connect: "127.0.0.1:7670".to_owned(),
        topic: String::new(),
        filter: WireFilter::None,
        pattern: false,
        count: None,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut next = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--connect" => args.connect = next("--connect")?,
            "--topic" => args.topic = next("--topic")?,
            "--selector" => args.filter = WireFilter::Selector(next("--selector")?),
            "--corr-id" => args.filter = WireFilter::CorrelationId(next("--corr-id")?),
            "--pattern" => args.pattern = true,
            "--count" => {
                args.count =
                    Some(next("--count")?.parse().map_err(|e| format!("bad --count: {e}"))?)
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!(
                    "usage: rjms-sub --topic NAME [--connect ADDR] \
                     [--selector EXPR | --corr-id PAT] [--pattern] [--count N] [--quiet]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if args.topic.is_empty() {
        return Err("--topic is required".to_owned());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let client = match RemoteBroker::connect(args.connect.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {}: {e}", args.connect);
            std::process::exit(1);
        }
    };
    let sub: RemoteSubscriber = {
        let result = if args.pattern {
            client.subscribe_pattern(&args.topic, args.filter.clone())
        } else {
            client.subscribe(&args.topic, args.filter.clone())
        };
        match result {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: subscribe failed: {e}");
                std::process::exit(1);
            }
        }
    };
    eprintln!("subscribed to {} — waiting for messages", args.topic);

    let mut received = 0u64;
    loop {
        match sub.receive_timeout(Duration::from_millis(500)) {
            Some(m) => {
                received += 1;
                if !args.quiet {
                    let props: Vec<String> =
                        m.properties().iter().map(|(k, v)| format!("{k}={v}")).collect();
                    println!(
                        "[{}] corr={} props={{{}}} body={}B trace={:016x}",
                        received,
                        m.correlation_id().unwrap_or("-"),
                        props.join(", "),
                        m.body().len(),
                        m.trace_id()
                    );
                }
                if Some(received) == args.count {
                    break;
                }
            }
            None => {
                // Timeout: keep waiting (also detects closed connections).
                if sub.try_receive().is_none() && received == 0 && client.ping().is_err() {
                    eprintln!("error: connection lost");
                    std::process::exit(1);
                }
            }
        }
    }
    println!("received {received} message(s)");
}
