//! `rjms-pub` — publish messages to a remote broker.
//!
//! ```text
//! rjms-pub --topic NAME [--connect ADDR] [--count N] [--rate MSGS_PER_SEC]
//!          [--corr-id ID] [--prop key=value]... [--body TEXT] [--create-topic]
//!          [--print-trace-ids]
//! ```
//!
//! With `--rate`, publishes at that Poisson-free fixed rate; without it,
//! publishes as fast as the broker's push-back allows (the paper's
//! saturated-publisher mode). `--print-trace-ids` prints each published
//! message's trace id (`trace <decimal-id>`, one per line, matching the
//! `trace_id` values in the server's `/traces` JSON) so a script can look
//! up the matching span chain on the exposition endpoint.
//!
//! Against a flow-enabled server (`rjms-server --flow`) the publisher is
//! a well-behaved flow citizen: a deferred publish sleeps out the
//! server's `retry_after` hint and retries, so a burst above the
//! admission budget is paced down instead of failing; a shed publish
//! (the gate protecting higher classes) is a hard error.

use rjms::broker::{Error, Message};
use rjms::net::client::RemoteBroker;
use rjms::selector::Value;
use std::time::{Duration, Instant};

struct Args {
    connect: String,
    topic: String,
    count: u64,
    rate: Option<f64>,
    corr_id: Option<String>,
    props: Vec<(String, Value)>,
    body: Vec<u8>,
    create_topic: bool,
    print_trace_ids: bool,
}

fn parse_prop(s: &str) -> Result<(String, Value), String> {
    let (k, v) = s.split_once('=').ok_or("property must be key=value")?;
    // Typed literals: int, float, bool, else string.
    let value = if let Ok(i) = v.parse::<i64>() {
        Value::Int(i)
    } else if let Ok(f) = v.parse::<f64>() {
        Value::Float(f)
    } else if v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("false") {
        Value::Bool(v.eq_ignore_ascii_case("true"))
    } else {
        Value::Str(v.to_owned())
    };
    Ok((k.to_owned(), value))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        connect: "127.0.0.1:7670".to_owned(),
        topic: String::new(),
        count: 1,
        rate: None,
        corr_id: None,
        props: Vec::new(),
        body: Vec::new(),
        create_topic: false,
        print_trace_ids: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut next = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--connect" => args.connect = next("--connect")?,
            "--topic" => args.topic = next("--topic")?,
            "--count" => {
                args.count = next("--count")?.parse().map_err(|e| format!("bad --count: {e}"))?
            }
            "--rate" => {
                args.rate = Some(next("--rate")?.parse().map_err(|e| format!("bad --rate: {e}"))?)
            }
            "--corr-id" => args.corr_id = Some(next("--corr-id")?),
            "--prop" => args.props.push(parse_prop(&next("--prop")?)?),
            "--body" => args.body = next("--body")?.into_bytes(),
            "--create-topic" => args.create_topic = true,
            "--print-trace-ids" => args.print_trace_ids = true,
            "--help" | "-h" => {
                println!(
                    "usage: rjms-pub --topic NAME [--connect ADDR] [--count N] \
                     [--rate R] [--corr-id ID] [--prop k=v]... [--body TEXT] [--create-topic] \
                     [--print-trace-ids]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if args.topic.is_empty() {
        return Err("--topic is required".to_owned());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let client = match RemoteBroker::connect(args.connect.as_str()) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: cannot connect to {}: {e}", args.connect);
            std::process::exit(1);
        }
    };
    if args.create_topic {
        // Ignore "already exists".
        let _ = client.create_topic(&args.topic);
    }

    let started = Instant::now();
    let mut deferrals = 0u64;
    for i in 0..args.count {
        let mut b = Message::builder().body(args.body.clone());
        if let Some(c) = &args.corr_id {
            b = b.correlation_id(c.clone());
        }
        for (k, v) in &args.props {
            b = b.property(k.clone(), v.clone());
        }
        let message = b.build();
        if args.print_trace_ids {
            println!("trace {}", message.trace_id());
        }
        loop {
            match client.publish(&args.topic, &message) {
                Ok(()) => break,
                Err(Error::PublishDeferred { retry_after_ms, .. }) => {
                    deferrals += 1;
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1)));
                }
                Err(e) => {
                    eprintln!("error: publish {i} failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(rate) = args.rate {
            let due = started + Duration::from_secs_f64((i + 1) as f64 / rate);
            if let Some(wait) = due.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    println!(
        "published {} message(s) in {elapsed:.3}s ({:.1}/s)",
        args.count,
        args.count as f64 / elapsed.max(1e-9)
    );
    if deferrals > 0 {
        eprintln!("admission control deferred {deferrals} publish attempt(s); all retried");
    }
}
