//! `rjms-server` — run a standalone broker listening on TCP.
//!
//! ```text
//! rjms-server [--listen ADDR] [--topic NAME]... [--stats-every SECS]
//! ```
//!
//! Topics can be pre-created with `--topic` (repeatable) or created later
//! by clients. With `--stats-every N` the server prints a throughput line
//! every N seconds, in the spirit of the paper's measurement logs.

use rjms::broker::{BrokerConfig, ThroughputProbe};
use rjms::net::server::BrokerServer;
use std::time::Duration;

struct Args {
    listen: String,
    topics: Vec<String>,
    stats_every: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { listen: "127.0.0.1:7670".to_owned(), topics: Vec::new(), stats_every: None };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => {
                args.listen = it.next().ok_or("--listen needs an address")?;
            }
            "--topic" => {
                args.topics.push(it.next().ok_or("--topic needs a name")?);
            }
            "--stats-every" => {
                let v = it.next().ok_or("--stats-every needs a number of seconds")?;
                args.stats_every =
                    Some(v.parse().map_err(|e| format!("bad --stats-every value: {e}"))?);
            }
            "--help" | "-h" => {
                println!(
                    "usage: rjms-server [--listen ADDR] [--topic NAME]... [--stats-every SECS]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let server = match BrokerServer::start(BrokerConfig::default(), args.listen.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot listen on {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    for topic in &args.topics {
        if let Err(e) = server.broker().create_topic(topic) {
            eprintln!("error: cannot create topic `{topic}`: {e}");
            std::process::exit(1);
        }
    }
    println!("rjms-server listening on {}", server.local_addr());
    if !args.topics.is_empty() {
        println!("topics: {}", args.topics.join(", "));
    }

    match args.stats_every {
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        Some(secs) => loop {
            let stats = server.broker().stats();
            let probe = ThroughputProbe::start(&stats);
            std::thread::sleep(Duration::from_secs(secs));
            let t = probe.finish(&stats);
            println!(
                "received {:.1}/s  dispatched {:.1}/s  overall {:.1}/s  (R = {:.2})",
                t.received_per_sec,
                t.dispatched_per_sec,
                t.overall_per_sec(),
                t.replication_grade().unwrap_or(0.0),
            );
        },
    }
}
