//! `rjms-server` — run a standalone broker listening on TCP.
//!
//! ```text
//! rjms-server [--listen ADDR] [--topic NAME]... [--stats-every SECS]
//!             [--metrics-interval SECS] [--cost-model corr|app]
//! ```
//!
//! Topics can be pre-created with `--topic` (repeatable) or created later
//! by clients. With `--stats-every N` the server prints a throughput line
//! every N seconds, in the spirit of the paper's measurement logs. With
//! `--metrics-interval N` the broker's live observability layer is enabled
//! (waiting/service/sojourn histograms, sampled Eq. 1 stage decomposition)
//! and a full instrument report — broker and wire-level registries — is
//! printed every N seconds.
//!
//! With `--cost-model corr|app` the broker burns the paper's Table I
//! per-message CPU costs (correlation-ID or application-property
//! constants), and — when `--metrics-interval` is also set — each report
//! ends with a `ModelMonitor` drift verdict: the measured waiting/service
//! distributions are checked against the Eq. 1 + M/GI/1 prediction at the
//! measured arrival rate, filter count, and replication grade. The paper's
//! Figs. 10–12 as a runtime check.

use rjms::broker::{BrokerConfig, CostModel, MetricsConfig, ThroughputProbe};
use rjms::model::model::ServerModel;
use rjms::model::monitor::{ModelMonitor, ModelVerdict};
use rjms::model::params::CostParams;
use rjms::net::server::BrokerServer;
use rjms::queueing::replication::ReplicationModel;
use std::time::{Duration, Instant};

struct Args {
    listen: String,
    topics: Vec<String>,
    stats_every: Option<u64>,
    metrics_interval: Option<u64>,
    cost_model: Option<(CostModel, CostParams)>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: "127.0.0.1:7670".to_owned(),
        topics: Vec::new(),
        stats_every: None,
        metrics_interval: None,
        cost_model: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--listen" => {
                args.listen = it.next().ok_or("--listen needs an address")?;
            }
            "--topic" => {
                args.topics.push(it.next().ok_or("--topic needs a name")?);
            }
            "--stats-every" => {
                let v = it.next().ok_or("--stats-every needs a number of seconds")?;
                args.stats_every =
                    Some(v.parse().map_err(|e| format!("bad --stats-every value: {e}"))?);
            }
            "--metrics-interval" => {
                let v = it.next().ok_or("--metrics-interval needs a number of seconds")?;
                args.metrics_interval =
                    Some(v.parse().map_err(|e| format!("bad --metrics-interval value: {e}"))?);
            }
            "--cost-model" => {
                let v = it.next().ok_or("--cost-model needs `corr` or `app`")?;
                args.cost_model = Some(match v.as_str() {
                    "corr" => (CostModel::CORRELATION_ID, CostParams::CORRELATION_ID),
                    "app" => (CostModel::APPLICATION_PROPERTY, CostParams::APPLICATION_PROPERTY),
                    other => return Err(format!("bad --cost-model `{other}` (corr|app)")),
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: rjms-server [--listen ADDR] [--topic NAME]... \
                     [--stats-every SECS] [--metrics-interval SECS] [--cost-model corr|app]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let mut config = BrokerConfig::default();
    if args.metrics_interval.is_some() {
        config = config.metrics(MetricsConfig::default());
    }
    if let Some((cost, _)) = args.cost_model {
        config = config.cost_model(cost);
    }
    let server = match BrokerServer::start(config, args.listen.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot listen on {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    for topic in &args.topics {
        if let Err(e) = server.broker().create_topic(topic) {
            eprintln!("error: cannot create topic `{topic}`: {e}");
            std::process::exit(1);
        }
    }
    println!("rjms-server listening on {}", server.local_addr());
    if !args.topics.is_empty() {
        println!("topics: {}", args.topics.join(", "));
    }

    // Metrics exporter: dumps every instrument (broker-side dispatch
    // histograms + wire-side gauges) as an aligned text report.
    if let Some(secs) = args.metrics_interval {
        let broker_metrics = server.broker().metrics().expect("metrics enabled above");
        let wire_metrics = server.metrics();
        let observer = server.broker().observer();
        let params = args.cost_model.map(|(_, p)| p);
        let started = Instant::now();
        std::thread::Builder::new()
            .name("rjms-metrics-export".to_owned())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_secs(secs));
                println!("--- metrics ---");
                let snap = broker_metrics.snapshot();
                print!("{}", snap.render_text());
                print!("{}", wire_metrics.snapshot().render_text());
                // Drift check: Eq. 1 + M/GI/1 at the *measured* operating
                // point (arrival rate, filters per message, replication
                // grade) vs the measured distributions.
                let Some(params) = params else { continue };
                let counters = observer.snapshot().messages;
                if counters.received == 0 {
                    continue;
                }
                let n_fltr = (counters.filter_evaluations / counters.received).min(u32::MAX as u64);
                let grade = counters.dispatched as f64 / counters.received as f64;
                let monitor = ModelMonitor::new(
                    ServerModel::new(params, n_fltr as u32),
                    ReplicationModel::deterministic(grade),
                );
                let (Some(waiting), Some(service)) =
                    (snap.histogram("broker.waiting_ns"), snap.histogram("broker.service_ns"))
                else {
                    continue;
                };
                match monitor.assess(waiting, service, started.elapsed()) {
                    ModelVerdict::Calibrated(report) => {
                        println!("model check: CALIBRATED (all within tolerance)");
                        print!("{}", report.render_text());
                    }
                    ModelVerdict::Drift(report) => {
                        println!("model check: DRIFT");
                        print!("{}", report.render_text());
                    }
                    verdict => println!("model check: {verdict:?}"),
                }
            })
            .expect("failed to spawn metrics exporter");
    }

    match args.stats_every {
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        Some(secs) => loop {
            let probe = ThroughputProbe::begin(server.broker());
            std::thread::sleep(Duration::from_secs(secs));
            let t = probe.end(server.broker());
            println!(
                "received {:.1}/s  dispatched {:.1}/s  overall {:.1}/s  (R = {:.2})",
                t.received_per_sec,
                t.dispatched_per_sec,
                t.overall_per_sec(),
                t.replication_grade().unwrap_or(0.0),
            );
        },
    }
}
