//! `rjms-server` — run a standalone broker listening on TCP.
//!
//! ```text
//! rjms-server [--config FILE] [--listen ADDR] [--topic NAME]...
//!             [--shards N] [--stats-every SECS]
//!             [--metrics-interval SECS] [--cost-model corr|app]
//!             [--http ADDR] [--trace] [--trace-quantile Q]
//!             [--forecast] [--forecast-horizon SECS] [--forecast-confidence LEVEL]
//!             [--flow] [--flow-w99 MS] [--flow-classes N]
//!             [--topic-obs] [--topic-obs-cap N] [--topic-obs-target RATIO]
//! ```
//!
//! `--config FILE` loads a TOML-subset configuration file covering the
//! whole flag surface (see `rjms::config_file` for the schema). Precedence
//! is strictly *flags over file over built-in defaults*: any flag given on
//! the command line overrides the file's value for that setting, list
//! settings (`--topic`, `--alert-sink`) append to the file's lists, and
//! feature toggles (`--trace`, `--slo`, `--flow`) OR with the file's
//! sections — a section's presence enables the feature unless it says
//! `enabled = false`.
//!
//! Topics can be pre-created with `--topic` (repeatable) or created later
//! by clients. With `--shards N` the broker runs N dispatcher threads;
//! topics hash onto shards (`rjms::broker::shard_of`) and each shard is
//! modeled as its own M/GI/1 server (the clustered scenario of the paper's
//! §V applied to one process). With `--stats-every N` the server prints a
//! throughput line every N seconds, in the spirit of the paper's
//! measurement logs. With `--metrics-interval N` the broker's live
//! observability layer is enabled (waiting/service/sojourn histograms,
//! sampled Eq. 1 stage decomposition) and a full instrument report —
//! broker and wire-level registries — is printed every N seconds.
//!
//! With `--cost-model corr|app` the broker burns the paper's Table I
//! per-message CPU costs (correlation-ID or application-property
//! constants), and — when `--metrics-interval` is also set — each report
//! ends with a `ModelMonitor` drift verdict: the measured waiting/service
//! distributions are checked against the Eq. 1 + M/GI/1 prediction at the
//! measured arrival rate, filter count, and replication grade. The paper's
//! Figs. 10–12 as a runtime check.
//!
//! `--trace` enables the tail-sampled flight recorder: full per-message
//! span chains (receive → journal → filter → fan-out → wire-flush) are
//! kept for messages whose sojourn time exceeds a live quantile threshold
//! (`--trace-quantile`, default 0.99) plus a uniform 1-in-128 baseline.
//! On a DRIFT verdict the recorder is dumped so the spans that produced
//! the anomaly survive for inspection.
//!
//! `--flow` enables model-driven admission control (`rjms::flow`): the
//! broker inverts Eq. 1 + the M/GI/1 waiting-time model into a maximum
//! admissible arrival rate `λ_max` for the configured `W99` objective
//! (`--flow-w99`, milliseconds, default 10; implies `--flow`) and
//! enforces it with priority-class token buckets (`--flow-classes`,
//! default 3; implies `--flow`) plus credit-based wire flow control for
//! `FEATURE_FLOW` clients. A background thread re-assesses model drift
//! every second and recalibrates — or tightens — the budget. With
//! `--cost-model app` the flow gate seeds its model from the same
//! application-property cost constants.
//!
//! `--topic-obs` enables the per-topic workload observatory: the
//! dispatchers keep a bounded per-topic accounting table (cap set by
//! `--topic-obs-cap`, default 64; implies `--topic-obs`) with an online
//! least-squares fit of each topic's Eq. 1 cost constants, served on
//! `/topics`, plus the shard-skew analyzer and rebalance advisor
//! (`/shards` gains a `rebalance` block; `--topic-obs-target` sets the
//! max/mean shard-load ratio the advised moves aim under, default 1.10;
//! implies `--topic-obs`). When `--cost-model` or `--flow` is on, the
//! fits are compared against those reference constants and each topic
//! gets a stable/drift verdict.
//!
//! `--http ADDR` serves `/metrics` (Prometheus text), `/snapshot.json`,
//! `/traces`, `/model`, `/shards` (per-shard model assessments), `/topics`
//! (the per-topic observatory, when `--topic-obs` is on), `/flow`
//! (admission-control state, when `--flow` is on), and — when the SLO
//! engine is on — `/history`, `/slo`, and `/alerts` — see `rjms::http`.
//!
//! `--slo` enables the waiting-time SLO engine (`rjms::obs`): a
//! background sampler keeps a multi-resolution metric history and
//! evaluates the default objectives (W99 ≤ 10 ms, W99.99 ≤ 100 ms,
//! ρ ≤ 0.9, model health) as fast/slow burn rates, with alert
//! transitions delivered to stderr and any sinks added with
//! `--alert-sink` (repeatable: `stderr`, or `webhook:HOST:PORT/PATH` for
//! a JSON POST per transition). `--history SECS` tunes the sampling
//! interval (default 1 s; implies `--slo`).
//!
//! Forecasting rides on the SLO engine and is on by default when the
//! engine runs: the λ(t) trend over the metric history is projected into
//! the analytic breach points (W99 exhaustion, ρ saturation) and a
//! high-confidence breach inside the horizon raises the proactive
//! `pending` alert state before any burn. `--forecast` requests it
//! explicitly (implies `--slo`); `--forecast-horizon SECS` sets the
//! look-ahead (default 900) and `--forecast-confidence low|medium|high`
//! the gate a forecast must clear to page (default medium). The
//! `[forecast]` config section can also set `trend_window_secs` or turn
//! the layer off with `enabled = false`. `/forecast`, `/slo`, and
//! `/shards` expose the projections.
//!
//! Periodic reports go to **stderr**, each as one pre-built buffer written
//! with a single `write_all`, so concurrent stats and metrics reports
//! never interleave mid-line and stdout stays machine-parseable.

use rjms::broker::{
    BrokerConfig, CostModel, FlowConfig, MetricsConfig, ThroughputProbe, TopicObsConfig,
    TraceConfig,
};
use rjms::http::{HttpServer, HttpState};
use rjms::metrics::clock;
use rjms::model::model::ServerModel;
use rjms::model::monitor::{ModelMonitor, ModelVerdict};
use rjms::model::params::CostParams;
use rjms::net::server::BrokerServer;
use rjms::obs::{
    Confidence, ForecastConfig, HistoryConfig, ObsConfig, ObsCore, ObsRuntime, StderrSink,
    WebhookSink,
};
use rjms::queueing::replication::ReplicationModel;
use rjms::trace::group_chains;
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Raw command-line flags: `None`/`false` means "not given", so the merge
/// with a `--config` file can tell explicit flags from defaults.
#[derive(Default)]
struct Args {
    config: Option<String>,
    listen: Option<String>,
    topics: Vec<String>,
    shards: Option<usize>,
    stats_every: Option<u64>,
    metrics_interval: Option<u64>,
    cost_model: Option<(CostModel, CostParams)>,
    http: Option<String>,
    trace: bool,
    trace_quantile: Option<f64>,
    slo: bool,
    history: Option<u64>,
    alert_sinks: Vec<String>,
    forecast: bool,
    forecast_horizon: Option<u64>,
    forecast_confidence: Option<String>,
    flow: bool,
    flow_w99_ms: Option<u64>,
    flow_classes: Option<u8>,
    topic_obs: bool,
    topic_obs_cap: Option<usize>,
    topic_obs_target: Option<f64>,
}

/// The server's effective settings: flags merged over the file merged
/// over built-in defaults.
struct Settings {
    listen: String,
    topics: Vec<String>,
    shards: usize,
    stats_every: Option<u64>,
    metrics_interval: Option<u64>,
    cost_model: Option<(CostModel, CostParams)>,
    http: Option<String>,
    trace: bool,
    trace_quantile: f64,
    slo: bool,
    history: Option<u64>,
    alert_sinks: Vec<String>,
    /// Effective forecasting switch (on by default when the SLO engine
    /// runs; `[forecast] enabled = false` turns it off).
    forecast: bool,
    /// Whether forecasting was explicitly requested (flag or enabled
    /// file section) — an explicit request implies `--slo`.
    forecast_requested: bool,
    forecast_horizon: Option<u64>,
    forecast_trend_window: Option<u64>,
    forecast_confidence: Option<Confidence>,
    flow: bool,
    flow_w99_ms: Option<u64>,
    flow_classes: Option<u8>,
    topic_obs: bool,
    topic_obs_cap: Option<usize>,
    topic_obs_target: Option<f64>,
}

/// Merges command-line flags over file values over built-in defaults (see
/// the module docs for the precedence contract).
fn merge(args: Args, file: rjms::config_file::ServerFileConfig) -> Result<Settings, String> {
    let cost_model = match (args.cost_model, file.cost_model.as_deref()) {
        (Some(pair), _) => Some(pair),
        (None, Some("corr")) => Some((CostModel::CORRELATION_ID, CostParams::CORRELATION_ID)),
        (None, Some("app")) => {
            Some((CostModel::APPLICATION_PROPERTY, CostParams::APPLICATION_PROPERTY))
        }
        (None, Some(other)) => return Err(format!("bad cost_model `{other}` in config file")),
        (None, None) => None,
    };
    let mut topics = file.topics;
    for topic in args.topics {
        if !topics.contains(&topic) {
            topics.push(topic);
        }
    }
    let mut alert_sinks = file.slo.as_ref().map(|s| s.alert_sinks.clone()).unwrap_or_default();
    for sink in args.alert_sinks {
        if !alert_sinks.contains(&sink) {
            alert_sinks.push(sink);
        }
    }
    let forecast_requested = args.forecast
        || args.forecast_horizon.is_some()
        || args.forecast_confidence.is_some()
        || file.forecast.as_ref().is_some_and(|f| f.enabled);
    let forecast_confidence = match args
        .forecast_confidence
        .as_deref()
        .or(file.forecast.as_ref().and_then(|f| f.min_confidence.as_deref()))
    {
        None => None,
        Some(level) => match Confidence::parse(level) {
            Some(c) => Some(c),
            None => return Err(format!("bad forecast confidence `{level}` (low|medium|high)")),
        },
    };
    Ok(Settings {
        listen: args.listen.or(file.listen).unwrap_or_else(|| "127.0.0.1:7670".to_owned()),
        topics,
        shards: args.shards.or(file.shards).unwrap_or(1),
        stats_every: args.stats_every.or(file.stats_every),
        metrics_interval: args.metrics_interval.or(file.metrics_interval),
        cost_model,
        http: args.http.or(file.http),
        trace: args.trace || file.trace.as_ref().is_some_and(|t| t.enabled),
        trace_quantile: args
            .trace_quantile
            .or(file.trace.as_ref().and_then(|t| t.tail_quantile))
            .unwrap_or(0.99),
        slo: args.slo || file.slo.as_ref().is_some_and(|s| s.enabled),
        history: args.history.or(file.slo.as_ref().and_then(|s| s.history_secs)),
        alert_sinks,
        forecast: forecast_requested || file.forecast.as_ref().is_none_or(|f| f.enabled),
        forecast_requested,
        forecast_horizon: args
            .forecast_horizon
            .or(file.forecast.as_ref().and_then(|f| f.horizon_secs)),
        forecast_trend_window: file.forecast.as_ref().and_then(|f| f.trend_window_secs),
        forecast_confidence,
        flow: args.flow || file.flow.as_ref().is_some_and(|f| f.enabled),
        flow_w99_ms: args.flow_w99_ms.or(file.flow.as_ref().and_then(|f| f.w99_ms)),
        flow_classes: args.flow_classes.or(file.flow.as_ref().and_then(|f| f.classes)),
        topic_obs: args.topic_obs || file.topic_obs.as_ref().is_some_and(|t| t.enabled),
        topic_obs_cap: args.topic_obs_cap.or(file.topic_obs.as_ref().and_then(|t| t.cap)),
        topic_obs_target: args
            .topic_obs_target
            .or(file.topic_obs.as_ref().and_then(|t| t.target_ratio)),
    })
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--config" => {
                args.config = Some(it.next().ok_or("--config needs a file path")?);
            }
            "--listen" => {
                args.listen = Some(it.next().ok_or("--listen needs an address")?);
            }
            "--shards" => {
                let v = it.next().ok_or("--shards needs a count")?;
                let n: usize = v.parse().map_err(|e| format!("bad --shards value: {e}"))?;
                if n == 0 {
                    return Err("--shards must be at least 1".to_owned());
                }
                args.shards = Some(n);
            }
            "--topic" => {
                args.topics.push(it.next().ok_or("--topic needs a name")?);
            }
            "--stats-every" => {
                let v = it.next().ok_or("--stats-every needs a number of seconds")?;
                args.stats_every =
                    Some(v.parse().map_err(|e| format!("bad --stats-every value: {e}"))?);
            }
            "--metrics-interval" => {
                let v = it.next().ok_or("--metrics-interval needs a number of seconds")?;
                args.metrics_interval =
                    Some(v.parse().map_err(|e| format!("bad --metrics-interval value: {e}"))?);
            }
            "--cost-model" => {
                let v = it.next().ok_or("--cost-model needs `corr` or `app`")?;
                args.cost_model = Some(match v.as_str() {
                    "corr" => (CostModel::CORRELATION_ID, CostParams::CORRELATION_ID),
                    "app" => (CostModel::APPLICATION_PROPERTY, CostParams::APPLICATION_PROPERTY),
                    other => return Err(format!("bad --cost-model `{other}` (corr|app)")),
                });
            }
            "--http" => {
                args.http = Some(it.next().ok_or("--http needs an address")?);
            }
            "--trace" => args.trace = true,
            "--slo" => args.slo = true,
            "--flow" => args.flow = true,
            "--flow-w99" => {
                let v = it.next().ok_or("--flow-w99 needs a number of milliseconds")?;
                let ms: u64 = v.parse().map_err(|e| format!("bad --flow-w99 value: {e}"))?;
                if ms == 0 {
                    return Err("--flow-w99 must be at least 1 millisecond".to_owned());
                }
                args.flow_w99_ms = Some(ms);
            }
            "--flow-classes" => {
                let v = it.next().ok_or("--flow-classes needs a count in 1..=10")?;
                let n: u8 = v.parse().map_err(|e| format!("bad --flow-classes value: {e}"))?;
                if !(1..=10).contains(&n) {
                    return Err(format!("--flow-classes must be in 1..=10, got {n}"));
                }
                args.flow_classes = Some(n);
            }
            "--topic-obs" => args.topic_obs = true,
            "--topic-obs-cap" => {
                let v = it.next().ok_or("--topic-obs-cap needs a count")?;
                let n: usize = v.parse().map_err(|e| format!("bad --topic-obs-cap value: {e}"))?;
                if n == 0 {
                    return Err("--topic-obs-cap must be at least 1".to_owned());
                }
                args.topic_obs_cap = Some(n);
            }
            "--topic-obs-target" => {
                let v = it.next().ok_or("--topic-obs-target needs a ratio >= 1")?;
                let r: f64 = v.parse().map_err(|e| format!("bad --topic-obs-target value: {e}"))?;
                if !(r >= 1.0 && r.is_finite()) {
                    return Err(format!("--topic-obs-target must be >= 1, got {r}"));
                }
                args.topic_obs_target = Some(r);
            }
            "--history" => {
                let v = it.next().ok_or("--history needs a number of seconds")?;
                let secs: u64 = v.parse().map_err(|e| format!("bad --history value: {e}"))?;
                if secs == 0 {
                    return Err("--history must be at least 1 second".to_owned());
                }
                args.history = Some(secs);
            }
            "--forecast" => args.forecast = true,
            "--forecast-horizon" => {
                let v = it.next().ok_or("--forecast-horizon needs a number of seconds")?;
                let secs: u64 =
                    v.parse().map_err(|e| format!("bad --forecast-horizon value: {e}"))?;
                if secs == 0 {
                    return Err("--forecast-horizon must be at least 1 second".to_owned());
                }
                args.forecast_horizon = Some(secs);
            }
            "--forecast-confidence" => {
                let v = it.next().ok_or("--forecast-confidence needs low|medium|high")?;
                if Confidence::parse(&v).is_none() {
                    return Err(format!("bad --forecast-confidence `{v}` (low|medium|high)"));
                }
                args.forecast_confidence = Some(v);
            }
            "--alert-sink" => {
                let v = it.next().ok_or("--alert-sink needs `stderr` or `webhook:ADDR/PATH`")?;
                if v != "stderr" && !v.starts_with("webhook:") {
                    return Err(format!("bad --alert-sink `{v}` (stderr|webhook:ADDR/PATH)"));
                }
                args.alert_sinks.push(v);
            }
            "--trace-quantile" => {
                let v = it.next().ok_or("--trace-quantile needs a value in (0, 1)")?;
                let q: f64 = v.parse().map_err(|e| format!("bad --trace-quantile value: {e}"))?;
                if !(q > 0.0 && q < 1.0) {
                    return Err(format!("--trace-quantile must be in (0, 1), got {q}"));
                }
                args.trace_quantile = Some(q);
            }
            "--help" | "-h" => {
                println!(
                    "usage: rjms-server [--config FILE] [--listen ADDR] [--topic NAME]... \
                     [--shards N] \
                     [--stats-every SECS] [--metrics-interval SECS] [--cost-model corr|app] \
                     [--http ADDR] [--trace] [--trace-quantile Q] \
                     [--slo] [--history SECS] [--alert-sink stderr|webhook:ADDR/PATH]... \
                     [--forecast] [--forecast-horizon SECS] [--forecast-confidence LEVEL] \
                     [--flow] [--flow-w99 MS] [--flow-classes N] \
                     [--topic-obs] [--topic-obs-cap N] [--topic-obs-target RATIO]\n\
                     flags override --config file values; see rjms::config_file for the schema"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// Writes a pre-built report to stderr in one `write_all`: reports from
/// the stats and metrics threads never interleave mid-line.
fn report(text: &str) {
    let stderr = std::io::stderr();
    let mut handle = stderr.lock();
    let _ = handle.write_all(text.as_bytes());
    let _ = handle.flush();
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let file = match args.config.as_deref().map(rjms::config_file::load).transpose() {
        Ok(f) => f.unwrap_or_default(),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let args = match merge(args, file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    let slo_enabled = args.slo || args.history.is_some() || args.forecast_requested;
    let mut builder = BrokerConfig::builder().shards(args.shards);
    if args.metrics_interval.is_some() || slo_enabled {
        // The SLO engine samples the broker's registry, so it needs the
        // dispatch instruments even without a periodic text report.
        builder = builder.metrics(MetricsConfig::default());
    }
    if args.trace {
        // Trace implies metrics: the tail threshold needs the sojourn
        // histogram (Broker::start enables a default MetricsConfig too,
        // but being explicit keeps --metrics-interval-less runs obvious).
        builder = builder.trace(TraceConfig::default().tail_quantile(args.trace_quantile));
    }
    if let Some((cost, _)) = args.cost_model {
        builder = builder.cost_model(cost);
    }
    let flow_enabled = args.flow || args.flow_w99_ms.is_some() || args.flow_classes.is_some();
    if flow_enabled {
        let mut flow = FlowConfig::default();
        if let Some(ms) = args.flow_w99_ms {
            flow = flow.w99_objective(ms as f64 / 1e3);
        }
        if let Some(n) = args.flow_classes {
            flow = flow.classes(n);
        }
        if let Some((_, params)) = args.cost_model {
            // Seed the gate's analytic model with the same cost constants
            // the broker burns, so λ_max matches the machine it polices.
            flow = flow.params(params);
        }
        builder = builder.flow(flow);
    }
    let topic_obs_enabled =
        args.topic_obs || args.topic_obs_cap.is_some() || args.topic_obs_target.is_some();
    if topic_obs_enabled {
        let mut obs = TopicObsConfig::default();
        if let Some(cap) = args.topic_obs_cap {
            obs = obs.per_topic_cap(cap);
        }
        if let Some(ratio) = args.topic_obs_target {
            obs = obs.target_ratio(ratio);
        }
        builder = builder.topic_obs(obs);
    }
    let config = builder.build();
    let server = match BrokerServer::start(config, args.listen.as_str()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot listen on {}: {e}", args.listen);
            std::process::exit(1);
        }
    };
    for topic in &args.topics {
        if let Err(e) = server.broker().create_topic(topic) {
            eprintln!("error: cannot create topic `{topic}`: {e}");
            std::process::exit(1);
        }
    }
    println!("rjms-server listening on {}", server.local_addr());
    if !args.topics.is_empty() {
        println!("topics: {}", args.topics.join(", "));
    }
    if args.shards > 1 {
        println!("sharded dispatch: {} dispatcher threads (topics hash onto shards)", args.shards);
    }
    if let Some(gate) = server.broker().flow() {
        println!(
            "flow control on (lambda_max {:.0}/s for W99 <= {:.1} ms, {} classes)",
            gate.lambda_max(),
            gate.config().w99_objective * 1e3,
            gate.config().classes,
        );
    }
    if let Some(snap) = server.broker().observer().topic_observatory() {
        println!(
            "topic observatory on (cap {} topics, skew target ratio {:.2}, /topics)",
            snap.config.per_topic_cap, snap.config.target_ratio,
        );
    }

    // SLO engine: background sampler + burn-rate alerting over the
    // broker's dispatch instruments.
    let obs_runtime = if slo_enabled {
        let registry = server.broker().metrics().expect("metrics enabled above");
        let interval = Duration::from_secs(args.history.unwrap_or(1));
        let mut forecast = ForecastConfig { enabled: args.forecast, ..ForecastConfig::default() };
        if let Some(secs) = args.forecast_horizon {
            forecast.horizon = Duration::from_secs(secs);
        }
        if let Some(secs) = args.forecast_trend_window {
            forecast.trend_window = Duration::from_secs(secs);
        }
        if let Some(level) = args.forecast_confidence {
            forecast.min_confidence = level;
        }
        let mut core = ObsCore::new(ObsConfig {
            history: HistoryConfig { fine_interval: interval, ..HistoryConfig::default() },
            forecast,
            ..ObsConfig::default()
        });
        core.add_sink(Box::new(StderrSink));
        for sink in &args.alert_sinks {
            match sink.as_str() {
                "stderr" => {} // always attached above
                spec => {
                    let rest = spec.strip_prefix("webhook:").expect("validated in parse_args");
                    let (addr, path) = match rest.find('/') {
                        Some(i) => (rest[..i].to_owned(), rest[i..].to_owned()),
                        None => (rest.to_owned(), "/".to_owned()),
                    };
                    core.add_sink(Box::new(WebhookSink { addr, path }));
                }
            }
        }
        let runtime = ObsRuntime::start(core, registry, server.broker().tracer(), interval);
        if forecast.enabled {
            println!(
                "slo engine on ({}s sampling, forecast horizon {}s at >= {} confidence)",
                interval.as_secs(),
                forecast.horizon.as_secs(),
                forecast.min_confidence.name(),
            );
        } else {
            println!("slo engine on ({}s sampling, forecasting off)", interval.as_secs());
        }
        Some(runtime)
    } else {
        None
    };

    // HTTP exposition: /metrics, /snapshot.json, /traces, /model, and the
    // SLO surfaces when the engine is on.
    let mut http_state = HttpState::new().observer(server.broker().observer());
    if let Some(m) = server.broker().metrics() {
        http_state = http_state.registry(m);
    }
    http_state = http_state.registry(server.metrics());
    if let Some(recorder) = server.broker().tracer() {
        http_state = http_state.recorder(recorder);
    }
    if let Some(runtime) = &obs_runtime {
        http_state = http_state.obs(runtime.core());
    }
    if let Some(gate) = server.broker().flow() {
        http_state = http_state.flow(gate);
    }
    let model_text = http_state.model_text();
    let _http =
        args.http.as_ref().map(|addr| match HttpServer::start(http_state.clone(), addr.as_str()) {
            Ok(h) => {
                println!("http exposition on http://{}/", h.local_addr());
                h
            }
            Err(e) => {
                eprintln!("error: cannot bind http endpoint {addr}: {e}");
                std::process::exit(1);
            }
        });

    // Metrics exporter: dumps every instrument (broker-side dispatch
    // histograms + wire-side gauges) as an aligned text report.
    if let Some(secs) = args.metrics_interval {
        let broker_metrics = server.broker().metrics().expect("metrics enabled above");
        let wire_metrics = server.metrics();
        let observer = server.broker().observer();
        let recorder = server.broker().tracer();
        let params = args.cost_model.map(|(_, p)| p);
        let obs_core = obs_runtime.as_ref().map(|r| r.core());
        let started = Instant::now();
        std::thread::Builder::new()
            .name("rjms-metrics-export".to_owned())
            .spawn(move || loop {
                std::thread::sleep(Duration::from_secs(secs));
                let mut out = String::from("--- metrics ---\n");
                let snap = broker_metrics.snapshot();
                out.push_str(&snap.render_text());
                out.push_str(&wire_metrics.snapshot().render_text());
                // Drift check: Eq. 1 + M/GI/1 at the *measured* operating
                // point (arrival rate, filters per message, replication
                // grade) vs the measured distributions.
                'check: {
                    let Some(params) = params else { break 'check };
                    let counters = observer.snapshot().messages;
                    if counters.received == 0 {
                        break 'check;
                    }
                    let n_fltr =
                        (counters.filter_evaluations / counters.received).min(u32::MAX as u64);
                    let grade = counters.dispatched as f64 / counters.received as f64;
                    let monitor = ModelMonitor::new(
                        ServerModel::new(params, n_fltr as u32),
                        ReplicationModel::deterministic(grade),
                    );
                    // Keep the SLO engine's drift objective on the same
                    // measured operating point as this report.
                    if let Some(core) = &obs_core {
                        if let Ok(mut c) = core.lock() {
                            c.set_monitor(ModelMonitor::new(
                                ServerModel::new(params, n_fltr as u32),
                                ReplicationModel::deterministic(grade),
                            ));
                        }
                    }
                    let (Some(waiting), Some(service)) =
                        (snap.histogram("broker.waiting_ns"), snap.histogram("broker.service_ns"))
                    else {
                        break 'check;
                    };
                    let mut verdict_text = String::new();
                    match monitor.assess(waiting, service, started.elapsed()) {
                        ModelVerdict::Calibrated(report) => {
                            verdict_text
                                .push_str("model check: CALIBRATED (all within tolerance)\n");
                            verdict_text.push_str(&report.render_text());
                        }
                        ModelVerdict::Drift(report) => {
                            verdict_text.push_str("model check: DRIFT\n");
                            verdict_text.push_str(&report.render_text());
                            // Drift hook: dump the flight recorder so the
                            // span chains of the slow tail that produced
                            // the anomaly survive for inspection.
                            if let Some(r) = &recorder {
                                verdict_text.push_str(&render_drift_traces(r));
                            }
                        }
                        verdict => {
                            let _ = writeln!(verdict_text, "model check: {verdict:?}");
                        }
                    }
                    out.push_str(&verdict_text);
                    if let Ok(mut m) = model_text.lock() {
                        *m = verdict_text;
                    }
                }
                report(&out);
            })
            .expect("failed to spawn metrics exporter");
    }

    match args.stats_every {
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
        Some(secs) => loop {
            let probe = ThroughputProbe::begin(server.broker());
            std::thread::sleep(Duration::from_secs(secs));
            let t = probe.end(server.broker());
            report(&format!(
                "received {:.1}/s  dispatched {:.1}/s  overall {:.1}/s  (R = {:.2})\n",
                t.received_per_sec,
                t.dispatched_per_sec,
                t.overall_per_sec(),
                t.replication_grade().unwrap_or(0.0),
            ));
        },
    }
}

/// Summarizes the recorder's slowest chains for a drift report: the spans
/// behind the tail the model check just flagged.
fn render_drift_traces(recorder: &rjms::trace::FlightRecorder) -> String {
    let mut chains = group_chains(recorder.snapshot().events);
    chains.sort_by_key(|c| std::cmp::Reverse(c.total_duration_ns()));
    let mut out = String::from("drift traces (slowest sampled chains):\n");
    for chain in chains.iter().take(8) {
        let _ = write!(
            out,
            "  trace {:016x}  total {:>9}ns ",
            chain.trace_id,
            chain.total_duration_ns()
        );
        for e in &chain.events {
            let _ = write!(out, " {}={}ns", e.stage.name(), e.duration_ns);
        }
        out.push('\n');
    }
    if chains.is_empty() {
        out.push_str("  (recorder empty)\n");
    }
    let _ = writeln!(out, "  ns_per_tick {:.4}", clock::ns_per_tick());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjms::config_file;

    #[test]
    fn topic_obs_flags_override_file_values() {
        let file = config_file::parse("[topic_obs]\ncap = 32\ntarget_ratio = 1.5\n").unwrap();
        let args =
            Args { topic_obs_cap: Some(256), topic_obs_target: Some(1.05), ..Args::default() };
        let settings = merge(args, file).unwrap();
        assert!(settings.topic_obs, "section presence enables the observatory");
        assert_eq!(settings.topic_obs_cap, Some(256), "flag beats file cap");
        assert_eq!(settings.topic_obs_target, Some(1.05), "flag beats file ratio");
    }

    #[test]
    fn topic_obs_file_values_fill_flag_gaps() {
        let file =
            config_file::parse("[topic_obs]\nenabled = false\ncap = 32\ntarget_ratio = 1.5\n")
                .unwrap();
        let settings = merge(Args::default(), file).unwrap();
        assert!(!settings.topic_obs, "enabled = false keeps tuning without the feature");
        assert_eq!(settings.topic_obs_cap, Some(32));
        assert_eq!(settings.topic_obs_target, Some(1.5));

        // `--topic-obs` alone re-enables it over the file's `enabled = false`.
        let file = config_file::parse("[topic_obs]\nenabled = false\ncap = 32\n").unwrap();
        let args = Args { topic_obs: true, ..Args::default() };
        let settings = merge(args, file).unwrap();
        assert!(settings.topic_obs);
        assert_eq!(settings.topic_obs_cap, Some(32));
    }

    #[test]
    fn topic_obs_defaults_stay_off() {
        let settings = merge(Args::default(), config_file::ServerFileConfig::default()).unwrap();
        assert!(!settings.topic_obs);
        assert_eq!(settings.topic_obs_cap, None);
        assert_eq!(settings.topic_obs_target, None);
    }
}
