//! `rjms-top` — a dependency-free terminal dashboard for the rjms SLO
//! engine.
//!
//! ```text
//! rjms-top [--url HOST:PORT] [--interval SECS] [--once]
//! ```
//!
//! Polls the broker's HTTP exposition endpoint (`rjms-server --http ADDR
//! --slo`) and redraws one screen per interval:
//!
//! * a **waiting-time pane**: sparkline of the per-slot W99 over the last
//!   ten minutes plus the merged-window quantile summary,
//! * a **throughput pane**: sparkline of messages per slot,
//! * a **flow pane** (when the server runs `--flow`): the live `λ_max`
//!   budget and its calibration source, the global bucket fill, the
//!   granted/deferred/shed admission counters, and a **sheds timeline**
//!   — granted- and shed-rate sparklines on the same ten-minute window
//!   as the waiting-time pane, so an operator sees *when* the gate
//!   started rejecting load relative to the W99 excursion it protects,
//! * a **forecast pane** (when the server runs `--forecast`): the fitted
//!   arrival-rate trend, the model-derived saturation and W99-breach
//!   rates, an ETA countdown with its confidence band for the soonest
//!   projected breach, and the Little's-law self-check verdict backing
//!   the forecast's confidence grade,
//! * a **topic pane** (when the server runs `--topic-obs`): a skew gauge
//!   from the `/shards` rebalance block (max/mean shard-load ratio,
//!   advised moves and the ratio they would reach), then the hottest
//!   topics from `/topics` with their arrival rate, fitted Eq. 1 filter
//!   and replication costs, and the regression verdict against the
//!   configured cost model,
//! * an **SLO table**: per objective, the alert state, fast/slow burn
//!   rates against the threshold, and an error-budget gauge,
//! * an **alert feed**: the most recent state transitions with their
//!   burn rates.
//!
//! `--once` renders a single frame without clearing the screen and exits
//! with a scriptable status code:
//!
//! * `0` — every objective is healthy,
//! * `1` — an objective is **firing**, or one is **pending** (forecast
//!   predicts a breach inside the horizon) while the forecaster reports
//!   **high** confidence,
//! * `2` — transport or usage error (server unreachable, bad flag).
//!
//! Everything is plain `std`: the HTTP client is a blocking
//! `TcpStream`, the JSON reader is [`rjms::obs::minijson`].

use rjms::obs::minijson::{self, Value};
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::time::Duration;

const SPARK: [char; 8] = [
    '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}',
];
const SPARK_WIDTH: usize = 60;
const FEED_LINES: usize = 8;
const TOPIC_LINES: usize = 6;

struct Args {
    url: String,
    interval: u64,
    once: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { url: "127.0.0.1:7881".to_owned(), interval: 2, once: false };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--url" => {
                let v = it.next().ok_or("--url needs HOST:PORT")?;
                args.url = v.trim_start_matches("http://").trim_end_matches('/').to_owned();
            }
            "--interval" => {
                let v = it.next().ok_or("--interval needs a number of seconds")?;
                let secs: u64 = v.parse().map_err(|e| format!("bad --interval value: {e}"))?;
                if secs == 0 {
                    return Err("--interval must be at least 1 second".to_owned());
                }
                args.interval = secs;
            }
            "--once" => args.once = true,
            "--help" | "-h" => {
                println!("usage: rjms-top [--url HOST:PORT] [--interval SECS] [--once]");
                println!();
                println!("--once exit codes:");
                println!("  0  all objectives healthy");
                println!("  1  an objective is firing, or pending with a high-confidence forecast");
                println!("  2  transport or usage error");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

/// One blocking HTTP/1.1 GET; returns the body of a 200 response.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(5))))
        .map_err(|e| format!("socket setup: {e}"))?;
    let mut stream = stream;
    stream
        .write_all(
            format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .map_err(|e| format!("send: {e}"))?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| format!("recv: {e}"))?;
    let text = String::from_utf8_lossy(&raw);
    let (head, body) = text.split_once("\r\n\r\n").ok_or("malformed response")?;
    let status = head.lines().next().unwrap_or_default();
    if !status.contains(" 200 ") {
        return Err(format!("{path}: {status}"));
    }
    Ok(body.to_owned())
}

fn get_json(addr: &str, path: &str) -> Result<Value, String> {
    let body = http_get(addr, path)?;
    minijson::parse(&body).map_err(|e| format!("{path}: {e}"))
}

/// Renders `points` (a `/history` points array) as a sparkline scaled to
/// the window maximum, downsampled to at most [`SPARK_WIDTH`] cells.
fn sparkline(points: &[f64]) -> (String, f64) {
    if points.is_empty() {
        return ("(no data)".to_owned(), 0.0);
    }
    // Downsample by max within each cell so spikes survive.
    let cells = points.len().min(SPARK_WIDTH);
    let per = points.len().div_ceil(cells);
    let reduced: Vec<f64> =
        points.chunks(per).map(|c| c.iter().cloned().fold(0.0, f64::max)).collect();
    let top = reduced.iter().cloned().fold(0.0, f64::max);
    let line = reduced
        .iter()
        .map(|&v| {
            if top <= 0.0 {
                SPARK[0]
            } else {
                let i = ((v / top) * (SPARK.len() - 1) as f64).round() as usize;
                SPARK[i.min(SPARK.len() - 1)]
            }
        })
        .collect();
    (line, top)
}

fn series_values(history: &Value) -> Vec<f64> {
    history
        .get("points")
        .map(Value::items)
        .unwrap_or_default()
        .iter()
        .filter_map(|p| p.get("v").and_then(Value::as_f64))
        .collect()
}

/// `[########........]  63% budget` — the slow-window error budget.
fn budget_gauge(remaining: f64) -> String {
    let filled = (remaining.clamp(0.0, 1.0) * 16.0).round() as usize;
    let bar: String = (0..16).map(|i| if i < filled { '#' } else { '.' }).collect();
    format!("[{bar}] {:>4.0}%", remaining.clamp(0.0, 1.0) * 100.0)
}

/// Colors a regression verdict kind from the `/topics` payload.
fn verdict_tag(kind: Option<&str>) -> &'static str {
    match kind {
        Some("stable") => "\x1b[32mstable\x1b[0m",
        Some("drift") => "\x1b[31mDRIFT\x1b[0m",
        Some("insufficient") => "warming",
        Some("unidentifiable") => "\x1b[33mdegenerate\x1b[0m",
        Some(_) => "?",
        None => "-",
    }
}

fn state_tag(state: &str) -> &'static str {
    // ANSI colors: green ok, yellow warning, magenta pending (forecast),
    // red firing, cyan resolved.
    match state {
        "ok" => "\x1b[32mok      \x1b[0m",
        "warning" => "\x1b[33mwarning \x1b[0m",
        "pending" => "\x1b[35mpending \x1b[0m",
        "firing" => "\x1b[31mFIRING  \x1b[0m",
        "resolved" => "\x1b[36mresolved\x1b[0m",
        _ => "?       ",
    }
}

fn fmt_ms(ns: f64) -> String {
    format!("{:.2}ms", ns / 1e6)
}

fn fmt_elapsed(ms: u64) -> String {
    let s = ms / 1000;
    format!("{:02}:{:02}:{:02}", s / 3600, (s / 60) % 60, s % 60)
}

/// Builds one full frame; returns the text and the `--once` exit code:
/// `1` when an objective is firing, or pending while the forecaster
/// reports high confidence; `0` otherwise.
fn render_frame(addr: &str) -> Result<(String, i32), String> {
    let slo = get_json(addr, "/slo")?;
    let alerts = get_json(addr, "/alerts")?;
    let w99 = get_json(addr, "/history?metric=broker.waiting_ns&window=10m&reduce=q99")?;
    let load = get_json(addr, "/history?metric=broker.waiting_ns&window=10m&reduce=count")?;

    let mut out = String::new();
    let elapsed = slo.get("elapsed_ms").and_then(Value::as_u64).unwrap_or(0);
    let verdict = slo.get("model_verdict").and_then(Value::as_str).unwrap_or("-").to_owned();
    out.push_str(&format!(
        "rjms-top \u{2014} {addr}   up {}   model {verdict}\n\n",
        fmt_elapsed(elapsed)
    ));

    // Waiting-time pane.
    let (spark, top) = sparkline(&series_values(&w99));
    out.push_str(&format!("  W99 (10m)   {spark}  peak {}\n", fmt_ms(top)));
    if let Some(summary) = w99.get("summary") {
        let q50 = summary.get("q50_ns").and_then(Value::as_u64).unwrap_or(0);
        let q99 = summary.get("q99_ns").and_then(Value::as_u64).unwrap_or(0);
        let q9999 = summary.get("q9999_ns").and_then(Value::as_u64).unwrap_or(0);
        let count = summary.get("count").and_then(Value::as_u64).unwrap_or(0);
        out.push_str(&format!(
            "              window: n={count}  q50 {}  q99 {}  q99.99 {}\n",
            fmt_ms(q50 as f64),
            fmt_ms(q99 as f64),
            fmt_ms(q9999 as f64),
        ));
    }
    let (spark, top) = sparkline(&series_values(&load));
    out.push_str(&format!("  msgs/slot   {spark}  peak {top:.0}\n\n"));

    // Forecast pane: the model-driven time-to-breach projection, when the
    // server runs --forecast. /forecast is 404 while the slo engine is
    // off; skip the pane quietly.
    let mut forecast_high = false;
    if let Ok(fc) = get_json(addr, "/forecast") {
        if matches!(fc.get("enabled"), Some(Value::Bool(true))) {
            match fc.get("forecast") {
                Some(f) if !matches!(f, Value::Null) => {
                    let lambda = f.get("lambda_now").and_then(Value::as_f64).unwrap_or(0.0);
                    let slope = f.get("lambda_slope_per_s").and_then(Value::as_f64).unwrap_or(0.0);
                    let rho = f.get("rho_now").and_then(Value::as_f64).unwrap_or(0.0);
                    let confidence =
                        f.get("confidence").and_then(Value::as_str).unwrap_or("?").to_owned();
                    forecast_high = confidence == "high";
                    let lambda_sat =
                        f.get("lambda_saturation").and_then(Value::as_f64).unwrap_or(0.0);
                    out.push_str(&format!(
                        "  forecast    lambda {lambda:.0}/s  trend {slope:+.2}/s\u{00b2}  rho {rho:.3}  confidence {confidence}\n"
                    ));
                    let breach = match f.get("lambda_breach").and_then(Value::as_f64) {
                        Some(v) => format!("{v:.0}/s"),
                        None => "-".to_owned(),
                    };
                    out.push_str(&format!(
                        "              breach rates: w99 {breach}  saturation {lambda_sat:.0}/s\n"
                    ));
                    // ETA countdowns with their confidence bands; an open
                    // late edge means the slope's error bars reach zero.
                    let fmt_band = |band: &Value| {
                        let eta = band.get("eta_ms").and_then(Value::as_u64).unwrap_or(0);
                        let early = band.get("early_ms").and_then(Value::as_u64).unwrap_or(eta);
                        match band.get("late_ms").and_then(Value::as_u64) {
                            Some(late) => format!(
                                "{} in {} (band {}..{})",
                                if eta == 0 { "BREACHED" } else { "breach" },
                                fmt_elapsed(eta),
                                fmt_elapsed(early),
                                fmt_elapsed(late)
                            ),
                            None => format!(
                                "breach in {} (band {}..\u{221e})",
                                fmt_elapsed(eta),
                                fmt_elapsed(early)
                            ),
                        }
                    };
                    for (label, key) in
                        [("w99-breach", "eta_breach"), ("saturation", "eta_saturation")]
                    {
                        if let Some(band) = f.get(key).filter(|b| !matches!(b, Value::Null)) {
                            let line = format!("              ETA {label:<11} {}", fmt_band(band));
                            if forecast_high {
                                out.push_str(&format!("\x1b[31m{line}\x1b[0m\n"));
                            } else {
                                out.push_str(&line);
                                out.push('\n');
                            }
                        }
                    }
                    // The Little's-law self-check backing the grade.
                    if let Some(ll) = f.get("littles_law").filter(|v| !matches!(v, Value::Null)) {
                        let measured = ll.get("measured_l").and_then(Value::as_f64).unwrap_or(0.0);
                        let predicted =
                            ll.get("predicted_l").and_then(Value::as_f64).unwrap_or(0.0);
                        let err = ll.get("error").and_then(Value::as_f64).unwrap_or(0.0);
                        let tag = if matches!(ll.get("consistent"), Some(Value::Bool(true))) {
                            "\x1b[32mconsistent\x1b[0m"
                        } else {
                            "\x1b[33mDISAGREES\x1b[0m"
                        };
                        out.push_str(&format!(
                            "              littles-law L {measured:.1} vs lambda*E[W] {predicted:.1} (err {:.0}%) {tag}\n",
                            err * 100.0
                        ));
                    }
                    out.push('\n');
                }
                _ => {
                    out.push_str(
                        "  forecast    (warming up \u{2014} not enough trend history)\n\n",
                    );
                }
            }
        }
    }

    // Flow pane: admission-control state, when the server runs --flow.
    // /flow is 404 on a flow-less server; skip the pane quietly.
    if let Ok(flow) = get_json(addr, "/flow") {
        let lambda = flow.get("lambda_max").and_then(Value::as_f64).unwrap_or(0.0);
        let w99 = flow.get("w99_objective").and_then(Value::as_f64).unwrap_or(0.0);
        let source = flow.get("source").and_then(Value::as_str).unwrap_or("?");
        let level = flow.get("bucket_level").and_then(Value::as_f64).unwrap_or(0.0);
        let burst = flow.get("bucket_burst").and_then(Value::as_f64).unwrap_or(0.0);
        let fill = if burst > 0.0 { level / burst } else { 0.0 };
        out.push_str(&format!(
            "  flow        lambda_max {lambda:.0}/s ({source})  W99 obj {}  bucket {}\n",
            fmt_ms(w99 * 1e9),
            budget_gauge(fill),
        ));
        let mut granted = 0;
        let mut deferred = 0;
        let mut shed = 0;
        for c in flow.get("per_class").map(Value::items).unwrap_or_default() {
            granted += c.get("granted").and_then(Value::as_u64).unwrap_or(0);
            deferred += c.get("deferred").and_then(Value::as_u64).unwrap_or(0);
            shed += c.get("shed").and_then(Value::as_u64).unwrap_or(0);
        }
        let tag = if shed > 0 { "\x1b[31mshedding\x1b[0m" } else { "\x1b[32mopen\x1b[0m" };
        out.push_str(&format!(
            "              granted {granted}  deferred {deferred}  shed {shed}  gate {tag}\n"
        ));
        // Sheds timeline: admission rates from the same history rings as
        // the W99 sparkline, so the panes line up slot for slot.
        if let Ok(granted) = get_json(addr, "/history?metric=flow.granted&window=10m&reduce=rate") {
            let (spark, top) = sparkline(&series_values(&granted));
            out.push_str(&format!("  granted/s   {spark}  peak {top:.0}\n"));
        }
        if let Ok(shed) = get_json(addr, "/history?metric=flow.shed&window=10m&reduce=rate") {
            let values = series_values(&shed);
            let shedding = values.iter().any(|&v| v > 0.0);
            let (spark, top) = sparkline(&values);
            let line = format!("  shed/s      {spark}  peak {top:.0}\n");
            if shedding {
                out.push_str(&format!("\x1b[31m{}\x1b[0m", line.trim_end()));
                out.push('\n');
            } else {
                out.push_str(&line);
            }
        }
        out.push('\n');
    }

    // Topic pane: the per-topic workload observatory, when the server
    // runs --topic-obs. /topics is 404 on an observatory-less server;
    // skip the pane quietly.
    if let Ok(obs) = get_json(addr, "/topics") {
        let cap = obs.get("per_topic_cap").and_then(Value::as_u64).unwrap_or(0);
        let overflowed = obs.get("overflowed_topics").and_then(Value::as_u64).unwrap_or(0);
        let all = obs.get("topics").map(Value::items).unwrap_or_default();
        out.push_str(&format!("  topics      {} tracked (cap {cap})", all.len()));
        if overflowed > 0 {
            out.push_str(&format!("  \x1b[33m{overflowed} overflowed into __other__\x1b[0m"));
        }
        // Skew gauge: the /shards rebalance block analyzes the same table.
        if let Ok(shards) = get_json(addr, "/shards") {
            if let Some(reb) = shards.get("rebalance") {
                if let Some(ratio) = reb.get("max_mean_ratio").and_then(Value::as_f64) {
                    let skewed = matches!(reb.get("skewed"), Some(Value::Bool(true)));
                    let moves = reb.get("moves").map(Value::items).unwrap_or_default().len();
                    let tag =
                        if skewed { "\x1b[31mSKEWED\x1b[0m" } else { "\x1b[32mbalanced\x1b[0m" };
                    out.push_str(&format!("  shard skew {ratio:.2}x mean {tag}"));
                    if moves > 0 {
                        let post = reb.get("post_ratio").and_then(Value::as_f64).unwrap_or(0.0);
                        out.push_str(&format!(
                            "  ({moves} move{} advised -> {post:.2}x)",
                            if moves == 1 { "" } else { "s" }
                        ));
                    }
                }
            }
        }
        out.push('\n');
        let mut rows: Vec<&Value> = all.iter().collect();
        rows.sort_by(|a, b| {
            let ra = a.get("arrival_rate").and_then(Value::as_f64).unwrap_or(0.0);
            let rb = b.get("arrival_rate").and_then(Value::as_f64).unwrap_or(0.0);
            rb.partial_cmp(&ra).unwrap_or(std::cmp::Ordering::Equal)
        });
        if !rows.is_empty() {
            out.push_str(
                "              topic                shard     msg/s  t_fltr    t_tx    fit\n",
            );
        }
        for row in rows.iter().take(TOPIC_LINES) {
            let name = row.get("name").and_then(Value::as_str).unwrap_or("?");
            let shard = row.get("shard").and_then(Value::as_u64).unwrap_or(0);
            let rate = row.get("arrival_rate").and_then(Value::as_f64).unwrap_or(0.0);
            let fitted = row.get("fitted");
            let (t_fltr, t_tx) = match fitted {
                Some(f) => {
                    (f.get("t_fltr").and_then(Value::as_f64), f.get("t_tx").and_then(Value::as_f64))
                }
                None => (None, None),
            };
            let fmt_cost = |c: Option<f64>| match c {
                Some(v) => format!("{:>6.2}us", v * 1e6),
                None => "       -".to_owned(),
            };
            out.push_str(&format!(
                "              {name:<20} {shard:>5} {rate:>9.1}  {}  {}  {}\n",
                fmt_cost(t_fltr),
                fmt_cost(t_tx),
                verdict_tag(row.get("verdict").and_then(|v| v.get("kind")).and_then(Value::as_str)),
            ));
        }
        out.push('\n');
    }

    // SLO table.
    out.push_str(
        "  objective                 state     fast-burn  slow-burn  thresh  error budget\n",
    );
    let mut firing = false;
    let mut pending = false;
    for obj in slo.get("objectives").map(Value::items).unwrap_or_default() {
        let name = obj.get("name").and_then(Value::as_str).unwrap_or("?");
        let state = obj.get("state").and_then(Value::as_str).unwrap_or("?");
        firing |= state == "firing";
        pending |= state == "pending";
        let fast = obj.get("fast_burn").and_then(Value::as_f64).unwrap_or(0.0);
        let slow = obj.get("slow_burn").and_then(Value::as_f64).unwrap_or(0.0);
        let thresh = obj.get("threshold").and_then(Value::as_f64).unwrap_or(0.0);
        let budget = obj.get("budget_remaining").and_then(Value::as_f64).unwrap_or(0.0);
        out.push_str(&format!(
            "  {name:<25} {} {fast:>9.2} {slow:>10.2} {thresh:>7.1}  {}\n",
            state_tag(state),
            budget_gauge(budget),
        ));
    }

    // Alert feed, newest last in the payload; show the tail.
    out.push_str("\n  recent transitions\n");
    let events = alerts.get("events").map(Value::items).unwrap_or_default();
    if events.is_empty() {
        out.push_str("    (none)\n");
    }
    for event in events.iter().rev().take(FEED_LINES).rev() {
        let at = event.get("at_ms").and_then(Value::as_u64).unwrap_or(0);
        let name = event.get("name").and_then(Value::as_str).unwrap_or("?");
        let from = event.get("from").and_then(Value::as_str).unwrap_or("?");
        let to = event.get("to").and_then(Value::as_str).unwrap_or("?");
        let fast = event.get("fast_burn").and_then(Value::as_f64).unwrap_or(0.0);
        let mut line =
            format!("    {}  {name:<25} {from} -> {to}  fast-burn {fast:.2}", fmt_elapsed(at));
        // Firing evidence carries the model's opinion of the same load.
        if let Some(p) = event.get("evidence").and_then(|e| e.get("prediction")) {
            if let (Some(rho), Some(q99)) = (
                p.get("utilization").and_then(Value::as_f64),
                p.get("q99_s").and_then(Value::as_f64),
            ) {
                line.push_str(&format!("  (model: rho {rho:.3}, W99 {})", fmt_ms(q99 * 1e9)));
            }
        }
        line.push('\n');
        out.push_str(&line);
    }
    // Exit-code policy: firing is always actionable; a pending objective
    // only is when the forecaster stands behind its projection.
    let code = if firing || (pending && forecast_high) { 1 } else { 0 };
    Ok((out, code))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    if args.once {
        match render_frame(&args.url) {
            Ok((frame, code)) => {
                print!("{frame}");
                std::process::exit(code);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    loop {
        match render_frame(&args.url) {
            // Clear screen + home, then the frame: one flicker-free redraw.
            Ok((frame, _)) => print!("\x1b[2J\x1b[H{frame}"),
            Err(e) => eprintln!("rjms-top: {e} (retrying)"),
        }
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_secs(args.interval));
    }
}
