//! Offline stand-in for `parking_lot`: `Mutex` and `RwLock` wrappers over
//! `std::sync` with parking_lot's poison-free, guard-returning API.

use std::sync;

/// A mutex that never poisons: a panic while holding the lock simply
/// releases it to the next acquirer, matching parking_lot semantics.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
