//! Offline stand-in for `bytes`: a reference-counted immutable byte buffer
//! ([`Bytes`]), a growable builder ([`BytesMut`]), and the big-endian
//! [`Buf`]/[`BufMut`] accessor traits the wire codec uses.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, sliceable, immutable byte buffer.
///
/// Clones and slices share one allocation; only construction copies.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer from a static byte slice (copies; the shim does not
    /// special-case static storage).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::copy_from_slice(bytes)
    }

    /// Creates a buffer by copying a slice.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(bytes);
        Bytes { start: 0, end: data.len(), data }
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-slice sharing this buffer's allocation.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice {lo}..{hi} out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }

    /// Splits off and returns the first `at` bytes, advancing `self` past
    /// them. Both halves share the allocation.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to({at}) out of bounds");
        let head = Bytes { data: Arc::clone(&self.data), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// Copies the buffer into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v.into_boxed_slice());
        Bytes { start: 0, end: data.len(), data }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Self::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Self::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Self::copy_from_slice(s.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    vec: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { vec: Vec::with_capacity(capacity) }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.vec.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.vec.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.vec.extend_from_slice(slice);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.vec)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.vec
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.vec
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Bytes::copy_from_slice(&self.vec).fmt(f)
    }
}

/// Read access to a byte buffer, big-endian (the `bytes` default).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a `u8`.
    ///
    /// # Panics
    ///
    /// All `get_*` methods panic when fewer bytes remain than requested.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(raw)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(raw)
    }

    /// Reads a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance({n}) out of bounds");
        self.start += n;
    }
}

/// Write access to a byte buffer, big-endian (the `bytes` default).
pub trait BufMut {
    /// Appends a slice.
    fn put_slice(&mut self, slice: &[u8]);

    /// Appends a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, slice: &[u8]) {
        self.vec.extend_from_slice(slice);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, slice: &[u8]) {
        self.extend_from_slice(slice);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_i64(-42);
        b.put_f64(2.5);
        let mut bytes = b.freeze();
        assert_eq!(bytes.get_u8(), 7);
        assert_eq!(bytes.get_u32(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u64(), 42);
        assert_eq!(bytes.get_i64(), -42);
        assert_eq!(bytes.get_f64(), 2.5);
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let tail = b.slice(2..);
        assert_eq!(tail.as_ref(), &[3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[1, 2]);
        assert_eq!(b.as_ref(), &[3, 4, 5]);
        assert_eq!(b, tail);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn split_past_end_panics() {
        Bytes::from(vec![1]).split_to(2);
    }

    #[test]
    fn equality_and_debug() {
        let b = Bytes::from_static(b"ab\n");
        assert_eq!(b, b"ab\n"[..]);
        assert_eq!(format!("{b:?}"), "b\"ab\\n\"");
    }
}
