//! Offline stand-in for `criterion`.
//!
//! Mirrors the API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`/`bench_with_input`, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/
//! `criterion_main!` macros — and really runs the benchmarks, reporting a
//! wall-clock mean per iteration (no warm-up statistics, outlier
//! rejection, or plots).

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Work-per-iteration declaration; reported as a rate next to the mean.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many logical elements.
    Elements(u64),
    /// Iterations process this many bytes.
    Bytes(u64),
}

/// A benchmark identifier: a function name, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{}/{parameter}", name.into()) }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { label: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Runs closures repeatedly and accumulates elapsed time.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the target wall-clock time spent measuring each benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Accepted for compatibility; the shim sizes samples by time alone.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim's single calibration pass is
    /// its warm-up.
    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    /// Declares the work performed per iteration of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.measurement_time, self.throughput, |b| routine(b));
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_benchmark(&label, self.measurement_time, self.throughput, |b| routine(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {
        let _ = self.criterion;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut routine: F,
) {
    // Calibration pass: one iteration, to size the measured sample.
    let mut bencher = Bencher { iterations: 1, elapsed: Duration::ZERO };
    routine(&mut bencher);
    let per_iter = bencher.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.as_secs_f64() / per_iter.as_secs_f64();
    let iterations = (budget.clamp(1.0, 1e9)) as u64;

    let mut bencher = Bencher { iterations, elapsed: Duration::ZERO };
    routine(&mut bencher);
    let mean = bencher.elapsed.as_secs_f64() / iterations as f64;

    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  {:>12.0} elem/s", n as f64 / mean),
        Some(Throughput::Bytes(n)) => format!("  {:>12.0} B/s", n as f64 / mean),
        None => String::new(),
    };
    println!("{label:<48} {:>12.1} ns/iter{rate}", mean * 1e9);
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            measurement_time: Duration::from_secs(3),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into().to_string();
        run_benchmark(&label, Duration::from_secs(3), None, |b| routine(b));
        self
    }
}

/// Declares a function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
