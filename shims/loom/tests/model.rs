//! Self-tests for the loom shim: the explorer must *find* classic
//! interleaving bugs (lost update, torn pair, deadlock) and must *pass*
//! their corrected counterparts — otherwise every downstream model is
//! vacuous.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs a model and returns its failure message, if it failed.
fn check_fails<F: Fn() + Send + Sync + 'static>(f: F) -> Option<String> {
    let result = catch_unwind(AssertUnwindSafe(|| loom::model(f)));
    result.err().map(|payload| {
        if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            String::from("<non-string panic>")
        }
    })
}

#[test]
fn finds_lost_update_in_load_then_store() {
    // Classic check-then-act: both threads read 0, both store 1.
    let failure = check_fails(|| {
        let value = Arc::new(AtomicU64::new(0));
        let other = Arc::clone(&value);
        let t = loom::thread::spawn(move || {
            let v = other.load(Ordering::Relaxed);
            other.store(v + 1, Ordering::Relaxed);
        });
        let v = value.load(Ordering::Relaxed);
        value.store(v + 1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(value.load(Ordering::Relaxed), 2, "lost update");
    });
    let failure = failure.expect("explorer must find the lost-update interleaving");
    assert!(failure.contains("lost update"), "wrong failure surfaced: {failure}");
}

#[test]
fn passes_atomic_rmw_increment() {
    loom::model(|| {
        let value = Arc::new(AtomicU64::new(0));
        let other = Arc::clone(&value);
        let t = loom::thread::spawn(move || {
            other.fetch_add(1, Ordering::Relaxed);
        });
        value.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(value.load(Ordering::Relaxed), 2);
    });
}

#[test]
fn finds_torn_write_of_an_unprotected_pair() {
    // Two words meant to be published together, with no protocol: a
    // reader can observe the first store without the second.
    let failure = check_fails(|| {
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        let (wa, wb) = (Arc::clone(&a), Arc::clone(&b));
        let t = loom::thread::spawn(move || {
            wa.store(7, Ordering::Relaxed);
            wb.store(7, Ordering::Relaxed);
        });
        let seen_b = b.load(Ordering::Relaxed);
        let seen_a = a.load(Ordering::Relaxed);
        t.join().unwrap();
        // Reading b first: if b is already 7, a must be too — except in
        // the torn interleaving the explorer is expected to reach. The
        // reversed read order makes the assert genuinely violable.
        if seen_a == 7 {
            assert_eq!(seen_b, 7, "torn pair observed");
        }
    });
    assert!(
        failure.expect("explorer must find the torn interleaving").contains("torn pair"),
        "wrong failure surfaced"
    );
}

#[test]
fn passes_mutex_guarded_increment() {
    loom::model(|| {
        let value = Arc::new(Mutex::new(0u64));
        let other = Arc::clone(&value);
        let t = loom::thread::spawn(move || {
            *other.lock().unwrap() += 1;
        });
        *value.lock().unwrap() += 1;
        t.join().unwrap();
        assert_eq!(*value.lock().unwrap(), 2);
    });
}

#[test]
fn detects_lock_order_deadlock() {
    let failure = check_fails(|| {
        let ab = Arc::new((Mutex::new(0u64), Mutex::new(0u64)));
        let ba = Arc::clone(&ab);
        let t = loom::thread::spawn(move || {
            let _x = ba.1.lock().unwrap();
            let _y = ba.0.lock().unwrap();
        });
        let _x = ab.0.lock().unwrap();
        let _y = ab.1.lock().unwrap();
        drop((_x, _y));
        t.join().unwrap();
    });
    assert!(
        failure.expect("explorer must find the deadlock").contains("deadlock"),
        "wrong failure surfaced"
    );
}

#[test]
fn explores_more_than_one_schedule() {
    use std::sync::atomic::{AtomicUsize, Ordering as StdOrdering};
    let executions = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&executions);
    loom::model(move || {
        counter.fetch_add(1, StdOrdering::Relaxed);
        let value = Arc::new(AtomicU64::new(0));
        let other = Arc::clone(&value);
        let t = loom::thread::spawn(move || {
            other.fetch_add(1, Ordering::Relaxed);
        });
        value.fetch_add(2, Ordering::Relaxed);
        t.join().unwrap();
    });
    assert!(
        executions.load(StdOrdering::Relaxed) > 1,
        "a two-thread model must explore several schedules, ran {}",
        executions.load(StdOrdering::Relaxed)
    );
}

#[test]
fn join_returns_the_thread_value() {
    loom::model(|| {
        let t = loom::thread::spawn(|| 41u64 + 1);
        assert_eq!(t.join().unwrap(), 42);
    });
}
