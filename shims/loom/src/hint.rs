//! Model-aware replacement for `std::hint`.

/// In a model, a spin-loop hint is a scheduling point — the spinning
/// thread must let the thread it is waiting on make progress.
pub fn spin_loop() {
    crate::rt::yield_point();
}
