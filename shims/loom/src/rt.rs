//! The execution engine behind [`crate::model`]: a token-passing
//! scheduler over real OS threads plus a depth-first search over the
//! scheduling decisions.
//!
//! Exactly one model thread holds the *token* (is `current`) at any time;
//! every scheduling point ([`yield_point`]) offers the scheduler a chance
//! to hand the token to another runnable thread. Each point where more
//! than one thread could run is a [`Decision`]; an execution is fully
//! described by the sequence of decisions taken, so replaying a decision
//! prefix and then deviating explores a different interleaving. The
//! search is exhaustive within the configured preemption bound: schedules
//! that switch away from a still-runnable thread more than `bound` times
//! are pruned (the CHESS result — most concurrency bugs need very few
//! preemptions — makes small bounds effective).
//!
//! Threads that block (loom mutex contention, joining an unfinished
//! thread) hand the token over without consuming preemption budget. If
//! every live thread is blocked the execution is declared a deadlock and
//! reported like any other model failure.

use std::any::Any;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// What a parked model thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    /// A loom mutex (keyed by address) held by another thread.
    Mutex(usize),
    /// Completion of another model thread.
    Join(usize),
}

/// Lifecycle state of one model thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum St {
    Runnable,
    Blocked(Block),
    Finished,
}

/// One branch point of an execution: `candidates` threads were runnable
/// and the `chosen`-th (in candidate order) received the token.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Decision {
    pub(crate) candidates: usize,
    pub(crate) chosen: usize,
}

/// Sentinel panic payload used to unwind threads of an execution that has
/// already failed elsewhere; it must never overwrite the original report.
struct Aborted;

#[derive(Default)]
struct Exec {
    /// True between `begin_execution` and `end_execution`.
    active: bool,
    threads: Vec<St>,
    /// Completed threads' return values, boxed for [`crate::thread::JoinHandle`].
    results: Vec<Option<Box<dyn Any + Send>>>,
    /// The thread currently holding the token.
    current: usize,
    /// Loom mutexes currently held: address → holder tid.
    locked: HashMap<usize, usize>,
    /// Decision prefix to replay before deviating (DFS state).
    replay: Vec<usize>,
    /// Decision points consumed so far this execution.
    depth: usize,
    /// Decisions actually taken this execution.
    decisions: Vec<Decision>,
    preemptions: usize,
    bound: usize,
    /// First failure of the execution (assertion panic or deadlock).
    panic: Option<String>,
    /// Threads not yet `Finished`.
    live: usize,
}

struct Rt {
    st: Mutex<Exec>,
    cv: Condvar,
}

fn rt() -> &'static Rt {
    static RT: OnceLock<Rt> = OnceLock::new();
    RT.get_or_init(|| Rt { st: Mutex::new(Exec::default()), cv: Condvar::new() })
}

fn lock() -> MutexGuard<'static, Exec> {
    // A failed model panics while holding the state lock poisoned; the
    // state is reset by the next `begin_execution`, so poisoning carries
    // no information here.
    rt().st.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    static TID: Cell<Option<usize>> = const { Cell::new(None) };
}

fn current_tid() -> Option<usize> {
    TID.with(|t| t.get())
}

pub(crate) fn set_tid(tid: usize) {
    TID.with(|t| t.set(Some(tid)));
}

pub(crate) fn clear_tid() {
    TID.with(|t| t.set(None));
}

/// Records the first failure and frees every blocked thread so it can
/// observe the abort and unwind.
fn set_panic(st: &mut Exec, msg: String) {
    if st.panic.is_none() {
        st.panic = Some(msg);
    }
    for t in &mut st.threads {
        if matches!(t, St::Blocked(_)) {
            *t = St::Runnable;
        }
    }
}

/// Renders a panic payload the way the default hook would.
fn payload_to_string(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Unwinds the calling model thread out of an execution that has already
/// failed. The sentinel is caught by the thread's `catch_unwind` (the
/// model body for tid 0, the spawn wrapper otherwise).
fn abort(st: MutexGuard<'_, Exec>) -> ! {
    drop(st);
    std::panic::resume_unwind(Box::new(Aborted));
}

/// Picks the next token holder. Must only be called by the thread that
/// currently holds the token (`me`), after updating its own state.
fn schedule(st: &mut Exec, me: usize) {
    loop {
        let me_runnable = st.threads.get(me).is_some_and(|s| *s == St::Runnable);
        let mut candidates: Vec<usize> = Vec::new();
        if me_runnable {
            // Put the current thread first so choice 0 — the DFS default —
            // is "keep running", making the preemption-free schedule the
            // first one explored.
            candidates.push(me);
        }
        for (tid, s) in st.threads.iter().enumerate() {
            if tid != me && *s == St::Runnable {
                candidates.push(tid);
            }
        }
        if candidates.is_empty() {
            if st.live > 0 {
                set_panic(st, "deadlock: every live thread is blocked".to_string());
                continue; // set_panic released the blocked threads; retry
            }
            return; // nothing left to run
        }
        let candidates = if me_runnable && st.preemptions >= st.bound {
            vec![me] // preemption budget spent: must keep running
        } else {
            candidates
        };
        let chosen = if candidates.len() > 1 {
            let i = st.replay.get(st.depth).copied().unwrap_or(0).min(candidates.len() - 1);
            st.decisions.push(Decision { candidates: candidates.len(), chosen: i });
            st.depth += 1;
            i
        } else {
            0
        };
        let next = candidates[chosen];
        if me_runnable && next != me {
            st.preemptions += 1;
        }
        st.current = next;
        return;
    }
}

/// Hands the token over via [`schedule`] and parks until it comes back.
fn pass_token_and_wait(mut st: MutexGuard<'static, Exec>, me: usize) -> MutexGuard<'static, Exec> {
    schedule(&mut st, me);
    rt().cv.notify_all();
    loop {
        if st.panic.is_some() {
            abort(st);
        }
        if st.current == me && st.threads[me] == St::Runnable {
            return st;
        }
        st = rt().cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// A scheduling point: the modelled thread is about to perform a visible
/// operation and the scheduler may switch first. No-op outside a model
/// (so instrumented code keeps working in ordinary builds of loom-cfg'd
/// test binaries) and during unwinding (drop glue running while a model
/// failure propagates must not re-enter the scheduler).
pub(crate) fn yield_point() {
    let Some(me) = current_tid() else { return };
    if std::thread::panicking() {
        return;
    }
    let st = lock();
    if !st.active {
        return;
    }
    if st.panic.is_some() {
        abort(st);
    }
    drop(pass_token_and_wait(st, me));
}

/// Blocks until the loom mutex at `addr` is free, then marks it held.
/// Callers must emit a [`yield_point`] before attempting acquisition.
pub(crate) fn acquire_mutex(addr: usize) {
    let Some(me) = current_tid() else { return };
    if std::thread::panicking() {
        return;
    }
    loop {
        let mut st = lock();
        if !st.active {
            return;
        }
        if st.panic.is_some() {
            abort(st);
        }
        if let std::collections::hash_map::Entry::Vacant(e) = st.locked.entry(addr) {
            e.insert(me);
            return;
        }
        st.threads[me] = St::Blocked(Block::Mutex(addr));
        drop(pass_token_and_wait(st, me));
    }
}

/// Releases the loom mutex at `addr` and lets contenders race for it at
/// the next scheduling point.
pub(crate) fn release_mutex(addr: usize) {
    if current_tid().is_none() {
        return;
    }
    {
        let mut st = lock();
        if !st.active {
            return;
        }
        st.locked.remove(&addr);
        for t in &mut st.threads {
            if *t == St::Blocked(Block::Mutex(addr)) {
                *t = St::Runnable;
            }
        }
    }
    yield_point();
}

/// Registers a new model thread (spawned by the current token holder)
/// and returns its tid. The thread becomes schedulable at the parent's
/// next scheduling point.
pub(crate) fn register_thread() -> usize {
    let mut st = lock();
    assert!(st.active, "loom::thread::spawn outside of loom::model");
    let tid = st.threads.len();
    st.threads.push(St::Runnable);
    st.results.push(None);
    st.live += 1;
    tid
}

/// Parks a freshly spawned OS thread until the scheduler first hands it
/// the token.
pub(crate) fn wait_first_schedule(me: usize) {
    let mut st = lock();
    loop {
        if st.panic.is_some() {
            abort(st);
        }
        if st.current == me && st.threads[me] == St::Runnable {
            return;
        }
        st = rt().cv.wait(st).unwrap_or_else(|e| e.into_inner());
    }
}

/// Marks a spawned thread finished, stores its result (or failure), wakes
/// joiners, and passes the token on.
pub(crate) fn finish_thread(
    me: usize,
    result: Option<Box<dyn Any + Send>>,
    panicked: Option<Box<dyn Any + Send>>,
) {
    let mut st = lock();
    if let Some(payload) = panicked {
        if !payload.is::<Aborted>() {
            set_panic(&mut st, payload_to_string(payload.as_ref()));
        }
    }
    st.results[me] = result;
    st.threads[me] = St::Finished;
    st.live -= 1;
    for t in &mut st.threads {
        if *t == St::Blocked(Block::Join(me)) {
            *t = St::Runnable;
        }
    }
    schedule(&mut st, me);
    drop(st);
    rt().cv.notify_all();
}

/// Blocks until thread `tid` finishes and takes its boxed return value.
/// `None` means the joined thread panicked (the execution is failing).
pub(crate) fn join_thread(tid: usize) -> Option<Box<dyn Any + Send>> {
    yield_point();
    let me = current_tid()?;
    let mut st = lock();
    loop {
        if !st.active {
            return None;
        }
        if st.panic.is_some() {
            abort(st);
        }
        if st.threads[tid] == St::Finished {
            return st.results[tid].take();
        }
        st.threads[me] = St::Blocked(Block::Join(tid));
        st = pass_token_and_wait(st, me);
    }
}

/// Resets the engine for one execution of the model body on the calling
/// thread (which becomes tid 0 and holds the token).
pub(crate) fn begin_execution(replay: Vec<usize>, bound: usize) {
    let mut st = lock();
    assert!(!st.active, "nested loom::model executions are not supported");
    *st = Exec {
        active: true,
        threads: vec![St::Runnable],
        results: vec![None],
        current: 0,
        locked: HashMap::new(),
        replay,
        depth: 0,
        decisions: Vec::new(),
        preemptions: 0,
        bound,
        panic: None,
        live: 1,
    };
    drop(st);
    set_tid(0);
}

/// Records a panic that escaped the model body on the main thread.
pub(crate) fn note_main_panic(payload: Box<dyn Any + Send>) {
    if payload.is::<Aborted>() {
        return; // original failure already recorded
    }
    let mut st = lock();
    set_panic(&mut st, payload_to_string(payload.as_ref()));
    drop(st);
    rt().cv.notify_all();
}

/// Called after the model body returns (or unwinds): marks tid 0 finished
/// and drives every remaining thread to completion so the execution ends
/// in a quiescent state.
pub(crate) fn finish_main() {
    let mut st = lock();
    if !st.active {
        return;
    }
    st.threads[0] = St::Finished;
    st.live -= 1;
    for t in &mut st.threads {
        if *t == St::Blocked(Block::Join(0)) {
            *t = St::Runnable;
        }
    }
    if st.live > 0 {
        schedule(&mut st, 0);
        rt().cv.notify_all();
        while st.live > 0 {
            st = rt().cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// Tears the execution down, returning the decisions taken and the
/// failure (if any) for the explorer in [`crate::model`].
pub(crate) fn end_execution() -> (Vec<Decision>, Option<String>) {
    let mut st = lock();
    st.active = false;
    clear_tid();
    (std::mem::take(&mut st.decisions), st.panic.take())
}
