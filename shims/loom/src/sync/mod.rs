//! Model-aware replacements for `std::sync` types.
//!
//! [`Arc`] is re-exported unchanged (reference counting needs no
//! modelling under sequential consistency); [`Mutex`] and [`OnceLock`]
//! participate in the scheduler so contention, hand-off order, and
//! initialization races are explored.

pub mod atomic;

mod mutex;
mod once;

pub use mutex::{Mutex, MutexGuard};
pub use once::OnceLock;
pub use std::sync::Arc;
pub use std::sync::LockResult;
