//! Model-aware mutex.
//!
//! The scheduler tracks ownership by address, so acquisition order and
//! contention are explored like any other scheduling decision; the data
//! itself lives in an inner `std::sync::Mutex`, whose lock can never
//! contend (only the token-holding thread touches it) and exists purely
//! to provide safe interior mutability and a borrowing guard.

use crate::rt;
use std::ops::{Deref, DerefMut};
use std::sync::LockResult;

/// Model-aware `std::sync::Mutex` replacement.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `t`.
    pub fn new(t: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(t) }
    }

    /// Acquires the mutex, blocking the model thread (and handing the
    /// token on) while another thread holds it. Never poisons.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        rt::yield_point();
        let addr = self as *const Mutex<T> as usize;
        rt::acquire_mutex(addr);
        let guard = self
            .inner
            .try_lock()
            .expect("loom mutex: std lock held across a scheduling point (see crate docs)");
        Ok(MutexGuard { inner: Some(guard), addr })
    }

    /// Consumes the mutex, returning the guarded data.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.inner.into_inner().unwrap_or_else(|e| e.into_inner()))
    }
}

/// Guard returned by [`Mutex::lock`]; releases at drop like std's.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    /// `Some` until drop; the option lets drop release the inner std
    /// guard *before* notifying the model scheduler.
    inner: Option<std::sync::MutexGuard<'a, T>>,
    addr: usize,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard alive")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard alive")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.inner.take());
        rt::release_mutex(self.addr);
    }
}
