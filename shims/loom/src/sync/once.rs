//! Model-aware `OnceLock`.
//!
//! Wraps `std::sync::OnceLock` with scheduling points around each access.
//! Under the token-passing scheduler the inner std operations can never
//! block mid-initialization (only one model thread runs at a time and no
//! scheduling point sits inside them), so initialization races surface as
//! explored `set` orderings rather than real blocking.

use crate::rt;

/// Model-aware `std::sync::OnceLock` replacement.
#[derive(Debug, Default)]
pub struct OnceLock<T> {
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell.
    pub const fn new() -> OnceLock<T> {
        OnceLock { inner: std::sync::OnceLock::new() }
    }

    /// The stored value, if initialized.
    pub fn get(&self) -> Option<&T> {
        rt::yield_point();
        self.inner.get()
    }

    /// Stores `value` if the cell is empty; returns it back otherwise.
    pub fn set(&self, value: T) -> Result<(), T> {
        rt::yield_point();
        self.inner.set(value)
    }

    /// Gets the value, initializing it with `f` if empty.
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        rt::yield_point();
        self.inner.get_or_init(f)
    }
}
