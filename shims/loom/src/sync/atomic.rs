//! Model-aware atomics.
//!
//! Every operation is a scheduling point, so the explorer can interleave
//! threads between any two atomic accesses. Operations execute with
//! sequentially consistent semantics regardless of the `Ordering`
//! argument — the shim checks interleavings, not weak-memory reorderings
//! (see the [crate docs](crate) for why, and what covers the gap).

pub use std::sync::atomic::Ordering;

use crate::rt;

macro_rules! atomic_int {
    ($(#[$doc:meta])* $name:ident, $std:ident, $int:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates a new atomic with the given initial value.
            pub const fn new(v: $int) -> Self {
                Self { inner: std::sync::atomic::$std::new(v) }
            }

            /// Loads the value (modelled sequentially consistent).
            pub fn load(&self, _order: Ordering) -> $int {
                rt::yield_point();
                self.inner.load(Ordering::SeqCst)
            }

            /// Stores a value (modelled sequentially consistent).
            pub fn store(&self, v: $int, _order: Ordering) {
                rt::yield_point();
                self.inner.store(v, Ordering::SeqCst)
            }

            /// Swaps the value, returning the previous one.
            pub fn swap(&self, v: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.inner.swap(v, Ordering::SeqCst)
            }

            /// Atomic compare-and-exchange.
            pub fn compare_exchange(
                &self,
                current: $int,
                new: $int,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$int, $int> {
                rt::yield_point();
                self.inner.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Like [`Self::compare_exchange`]; the shim never fails
            /// spuriously (a strictly smaller behaviour set than real
            /// hardware, which the real loom also explores).
            pub fn compare_exchange_weak(
                &self,
                current: $int,
                new: $int,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$int, $int> {
                self.compare_exchange(current, new, success, failure)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.inner.fetch_add(v, Ordering::SeqCst)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.inner.fetch_sub(v, Ordering::SeqCst)
            }

            /// Atomic bitwise and, returning the previous value.
            pub fn fetch_and(&self, v: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.inner.fetch_and(v, Ordering::SeqCst)
            }

            /// Atomic bitwise or, returning the previous value.
            pub fn fetch_or(&self, v: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.inner.fetch_or(v, Ordering::SeqCst)
            }

            /// Atomic bitwise xor, returning the previous value.
            pub fn fetch_xor(&self, v: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.inner.fetch_xor(v, Ordering::SeqCst)
            }

            /// Atomic minimum, returning the previous value.
            pub fn fetch_min(&self, v: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.inner.fetch_min(v, Ordering::SeqCst)
            }

            /// Atomic maximum, returning the previous value.
            pub fn fetch_max(&self, v: $int, _order: Ordering) -> $int {
                rt::yield_point();
                self.inner.fetch_max(v, Ordering::SeqCst)
            }

            /// Consumes the atomic, returning the contained value.
            pub fn into_inner(self) -> $int {
                self.inner.into_inner()
            }
        }
    };
}

atomic_int!(
    /// Model-aware `AtomicU64`.
    AtomicU64,
    AtomicU64,
    u64
);
atomic_int!(
    /// Model-aware `AtomicU32`.
    AtomicU32,
    AtomicU32,
    u32
);
atomic_int!(
    /// Model-aware `AtomicUsize`.
    AtomicUsize,
    AtomicUsize,
    usize
);
atomic_int!(
    /// Model-aware `AtomicI64`.
    AtomicI64,
    AtomicI64,
    i64
);

/// Model-aware `AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates a new atomic with the given initial value.
    pub const fn new(v: bool) -> Self {
        Self { inner: std::sync::atomic::AtomicBool::new(v) }
    }

    /// Loads the value (modelled sequentially consistent).
    pub fn load(&self, _order: Ordering) -> bool {
        rt::yield_point();
        self.inner.load(Ordering::SeqCst)
    }

    /// Stores a value (modelled sequentially consistent).
    pub fn store(&self, v: bool, _order: Ordering) {
        rt::yield_point();
        self.inner.store(v, Ordering::SeqCst)
    }

    /// Swaps the value, returning the previous one.
    pub fn swap(&self, v: bool, _order: Ordering) -> bool {
        rt::yield_point();
        self.inner.swap(v, Ordering::SeqCst)
    }

    /// Atomic compare-and-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        _success: Ordering,
        _failure: Ordering,
    ) -> Result<bool, bool> {
        rt::yield_point();
        self.inner.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
    }

    /// Atomic bitwise or, returning the previous value.
    pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
        rt::yield_point();
        self.inner.fetch_or(v, Ordering::SeqCst)
    }

    /// Atomic bitwise and, returning the previous value.
    pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
        rt::yield_point();
        self.inner.fetch_and(v, Ordering::SeqCst)
    }
}

/// A memory fence is a pure ordering construct; under the shim's
/// sequentially consistent execution it reduces to a scheduling point.
pub fn fence(_order: Ordering) {
    rt::yield_point();
}
