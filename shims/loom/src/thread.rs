//! Model-aware replacement for `std::thread` (spawn/join/yield subset).

use crate::rt;
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Handle to a model thread, returned by [`spawn`].
#[derive(Debug)]
pub struct JoinHandle<T> {
    tid: usize,
    _t: PhantomData<T>,
}

impl<T: 'static> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result. `Err` means
    /// the thread panicked (the model execution is failing and the
    /// scheduler will surface the original panic message).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        match rt::join_thread(self.tid) {
            Some(boxed) => Ok(*boxed.downcast::<T>().expect("join result type")),
            None => Err(Box::new("loom: joined thread panicked".to_string())
                as Box<dyn Any + Send + 'static>),
        }
    }
}

/// Spawns a model thread. Only valid inside [`crate::model`]; the spawned
/// thread becomes schedulable at the parent's next scheduling point, and
/// the model body must join it before returning.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    rt::yield_point();
    let tid = rt::register_thread();
    std::thread::Builder::new()
        .name(format!("loom-{tid}"))
        .spawn(move || {
            rt::set_tid(tid);
            // The first-schedule wait sits inside the catch so an aborted
            // execution still reaches finish_thread and the scheduler
            // never loses track of a live thread.
            let result = catch_unwind(AssertUnwindSafe(|| {
                rt::wait_first_schedule(tid);
                f()
            }));
            match result {
                Ok(v) => rt::finish_thread(tid, Some(Box::new(v) as Box<dyn Any + Send>), None),
                Err(payload) => rt::finish_thread(tid, None, Some(payload)),
            }
        })
        .expect("failed to spawn loom model thread");
    JoinHandle { tid, _t: PhantomData }
}

/// A bare scheduling point (models `std::thread::yield_now`).
pub fn yield_now() {
    rt::yield_point();
}
