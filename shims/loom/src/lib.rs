//! # loom (offline shim)
//!
//! A minimal, dependency-free stand-in for the `loom` model checker. Like
//! the real crate it runs a closure many times, exploring a different
//! thread interleaving on each run, and fails the test on the first
//! execution whose assertions panic — reporting the schedule that broke.
//!
//! ## What it checks, and what it does not
//!
//! The shim models **sequential consistency**: exactly one model thread
//! runs at a time, every atomic operation / mutex acquisition / spawn /
//! join is a *scheduling point*, and a depth-first search over the
//! scheduling decisions enumerates every interleaving reachable within a
//! configurable **preemption bound** (default 2, like CHESS; override per
//! model with [`model::Builder`] or globally with `LOOM_MAX_PREEMPTIONS`).
//! Exhaustive-within-bound exploration catches lost updates, torn
//! multi-word publications, check-then-act races, lock-ordering deadlocks
//! and accounting violations.
//!
//! What it deliberately does **not** model is C11 *weak memory*: the real
//! loom can additionally reorder relaxed operations between threads. The
//! `Ordering` argument is accepted (and linted by `lint-atomics` for an
//! `// ORD:` justification) but executed sequentially consistent, so a
//! model that is racy only under store-buffer reordering will pass here.
//! That residual risk is exactly what the ThreadSanitizer CI job covers;
//! the division of labour is spelled out in `DESIGN.md` §3.14.
//!
//! ## Usage
//!
//! ```
//! use loom::sync::atomic::{AtomicU64, Ordering};
//! use loom::sync::Arc;
//!
//! loom::model(|| {
//!     let a = Arc::new(AtomicU64::new(0));
//!     let b = Arc::clone(&a);
//!     let t = loom::thread::spawn(move || {
//!         b.fetch_add(1, Ordering::Relaxed);
//!     });
//!     a.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(a.load(Ordering::Relaxed), 2);
//! });
//! ```
//!
//! Model bodies must join every thread they spawn, and may freely use
//! `std` sync primitives *as long as no loom scheduling point occurs while
//! a `std` lock is held* (only one model thread runs at a time, so a
//! std lock acquired and released between scheduling points can never
//! contend; one held across a scheduling point can deadlock the token
//! hand-off).

pub mod hint;
pub mod model;
pub(crate) mod rt;
pub mod sync;
pub mod thread;

pub use model::model;
