//! The exploration driver: runs a model body repeatedly, depth-first over
//! the tree of scheduling decisions.

use crate::rt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, OnceLock};

/// Default preemption bound when neither [`Builder::preemption_bound`] nor
/// `LOOM_MAX_PREEMPTIONS` says otherwise. Two preemptions reach the vast
/// majority of interleaving bugs (the CHESS observation) while keeping
/// exhaustive exploration tractable for CI-sized models.
const DEFAULT_PREEMPTION_BOUND: usize = 2;

/// Default cap on explored executions; a model that exceeds it panics
/// with advice to shrink, rather than hanging CI.
const DEFAULT_MAX_ITERATIONS: usize = 200_000;

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.parse().ok()
}

/// Configures and runs a model, mirroring `loom::model::Builder`.
///
/// # Examples
///
/// ```
/// let mut builder = loom::model::Builder::new();
/// builder.preemption_bound = Some(3);
/// builder.check(|| {
///     // model body
/// });
/// ```
#[derive(Debug, Default)]
pub struct Builder {
    /// Maximum times the scheduler may switch away from a still-runnable
    /// thread per execution. `None` falls back to `LOOM_MAX_PREEMPTIONS`
    /// or the shim default of 2. (Divergence from real loom, where `None`
    /// means unbounded: the shim always bounds, because its search has no
    /// partial-order reduction to tame the unbounded tree.)
    pub preemption_bound: Option<usize>,
    /// Cap on the number of executions explored before the model fails
    /// with a "too large" diagnostic. `None` falls back to
    /// `LOOM_MAX_ITERATIONS` or 200 000.
    pub max_iterations: Option<usize>,
}

impl Builder {
    /// A builder with every knob at its default.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Exhaustively checks `f` within the configured bounds, panicking on
    /// the first failing interleaving with the schedule that reached it.
    pub fn check<F: Fn()>(&self, f: F) {
        // One model at a time per process: the scheduler state is global,
        // and `cargo test` runs tests on several threads.
        static MODEL_LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let _serial =
            MODEL_LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|e| e.into_inner());

        let bound = self
            .preemption_bound
            .or_else(|| env_usize("LOOM_MAX_PREEMPTIONS"))
            .unwrap_or(DEFAULT_PREEMPTION_BOUND);
        let max_iterations = self
            .max_iterations
            .or_else(|| env_usize("LOOM_MAX_ITERATIONS"))
            .unwrap_or(DEFAULT_MAX_ITERATIONS);

        let mut replay: Vec<usize> = Vec::new();
        let mut executions = 0usize;
        loop {
            executions += 1;
            assert!(
                executions <= max_iterations,
                "loom: exceeded {max_iterations} executions without exhausting the \
                 schedule space; shrink the model or raise LOOM_MAX_ITERATIONS"
            );
            rt::begin_execution(replay.clone(), bound);
            let outcome = catch_unwind(AssertUnwindSafe(&f));
            if let Err(payload) = outcome {
                rt::note_main_panic(payload);
            }
            rt::finish_main();
            let (decisions, failure) = rt::end_execution();
            if let Some(message) = failure {
                let schedule: Vec<usize> = decisions.iter().map(|d| d.chosen).collect();
                panic!(
                    "loom: model failed on execution {executions} \
                     (schedule {schedule:?}, preemption bound {bound})\n{message}"
                );
            }
            // Depth-first advance: bump the deepest decision that still
            // has an unexplored alternative, drop everything below it.
            let mut next: Vec<usize> = decisions.iter().map(|d| d.chosen).collect();
            let mut advanced = false;
            while let Some(chosen) = next.pop() {
                if chosen + 1 < decisions[next.len()].candidates {
                    next.push(chosen + 1);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                break; // every schedule within the bound has been explored
            }
            replay = next;
        }
    }
}

/// Exhaustively model-checks `f` with default bounds. See the
/// [crate docs](crate) for semantics and limitations.
pub fn model<F: Fn()>(f: F) {
    Builder::new().check(f);
}
