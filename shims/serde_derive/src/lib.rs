//! No-op derive macros standing in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! documentation of intent — nothing calls a serde serializer — so the
//! offline shim expands both derives to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
