//! Offline stand-in for `crossbeam`: the `channel` module only, with
//! crossbeam's MPMC semantics (cloneable senders *and* receivers, queued
//! messages still deliverable after all senders drop).

pub mod channel;
