//! MPMC channels with crossbeam's API and disconnect semantics.
//!
//! * `send` on a channel whose receivers are all gone fails immediately
//!   (even if the buffer has space) — delivery would be pointless.
//! * `recv` drains queued messages even after every sender is gone, and
//!   only then reports disconnection.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct State<T> {
    queue: VecDeque<T>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn new(capacity: Option<usize>) -> Arc<Self> {
        Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), capacity, senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        })
    }
}

/// Creates a bounded channel with the given capacity.
///
/// # Panics
///
/// Panics if `capacity` is 0 (rendezvous channels are not supported by
/// this shim; the workspace never creates them).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "zero-capacity channels are not supported");
    let shared = Shared::new(Some(capacity));
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Shared::new(None);
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

/// Error returned by [`Sender::send`] when all receivers are gone.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Sender::try_send`].
pub enum TrySendError<T> {
    /// The channel is full; the message is handed back.
    Full(T),
    /// All receivers are gone; the message is handed back.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error returned by [`Receiver::recv`] when the channel is drained and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// The sending half of a channel. Cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Sends a message, blocking while a bounded channel is full.
    ///
    /// # Errors
    ///
    /// Returns the message if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            let full = state.capacity.is_some_and(|c| state.queue.len() >= c);
            if !full {
                state.queue.push_back(value);
                drop(state);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            state = self.shared.not_full.wait(state).unwrap();
        }
    }

    /// Sends without blocking.
    ///
    /// # Errors
    ///
    /// [`TrySendError::Full`] when a bounded channel is at capacity,
    /// [`TrySendError::Disconnected`] when every receiver is gone.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut state = self.shared.state.lock().unwrap();
        if state.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if state.capacity.is_some_and(|c| state.queue.len() >= c) {
            return Err(TrySendError::Full(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// The number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.senders -= 1;
        if state.senders == 0 {
            drop(state);
            // Wake receivers blocked on an empty queue so they observe
            // disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

/// The receiving half of a channel. Cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Receives a message, blocking while the channel is empty.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is empty *and* every sender
    /// has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.shared.not_empty.wait(state).unwrap();
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when additionally all senders are
    /// gone.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.state.lock().unwrap();
        match state.queue.pop_front() {
            Some(value) => {
                drop(state);
                self.shared.not_full.notify_one();
                Ok(value)
            }
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Receives with a deadline.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] when nothing arrived in time,
    /// [`RecvTimeoutError::Disconnected`] when the channel is drained and
    /// all senders are gone.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap();
        loop {
            if let Some(value) = state.queue.pop_front() {
                drop(state);
                self.shared.not_full.notify_one();
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) =
                self.shared.not_empty.wait_timeout(state, deadline - now).unwrap();
            state = guard;
            if result.timed_out() && state.queue.is_empty() {
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// The number of queued messages.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// Whether the channel is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.state.lock().unwrap().receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap();
        state.receivers -= 1;
        if state.receivers == 0 {
            drop(state);
            // Wake senders blocked on a full queue so they observe
            // disconnection.
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_unbounded() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_try_send_full() {
        let (tx, rx) = bounded(1);
        tx.try_send(1).unwrap();
        assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
        drop(rx);
        assert!(matches!(tx.try_send(3), Err(TrySendError::Disconnected(3))));
    }

    #[test]
    fn drained_then_disconnected() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<i32>(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn blocking_send_unblocks_on_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || tx.send(2));
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        handle.join().unwrap().unwrap();
        assert_eq!(rx.recv(), Ok(2));
    }

    #[test]
    fn mpmc_clone_both_sides() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let rx2 = rx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        let a = rx.recv().unwrap();
        let b = rx2.recv().unwrap();
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2]);
    }
}
