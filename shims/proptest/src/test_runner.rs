//! Test-run configuration, failure reporting, and the deterministic
//! generator handed to strategies.

use std::fmt;

/// Per-`proptest!` block configuration.
///
/// Only `cases` influences the shim; the other fields exist so struct
/// literals written against real proptest (`ProptestConfig { cases: 24,
/// ..ProptestConfig::default() }`) keep compiling.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; the shim rejects inline in `prop_filter`.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0, max_global_rejects: 65_536 }
    }
}

impl ProptestConfig {
    /// A default config with the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// A rejected input (same handling as failure in the shim).
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The generator strategies draw from: xoshiro256++, seeded per case so
/// every failure is reproducible from the reported seed.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds the generator from a 64-bit seed via splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        TestRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, 1]` (both endpoints reachable).
    pub fn f64_unit_inclusive(&mut self) -> f64 {
        self.next_u64() as f64 / u64::MAX as f64
    }

    /// Uniform draw from `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is an empty range");
        // Modulo bias is < 2^-64 * bound; negligible for test generation.
        self.next_u64() % bound
    }
}
