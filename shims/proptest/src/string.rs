//! String strategies from regex-like patterns.
//!
//! A `&'static str` is itself a strategy (as in real proptest). The shim
//! supports the dialect the workspace's tests use: a sequence of atoms,
//! where an atom is a literal character or a `[...]` character class
//! (ranges and literal members), optionally followed by an `{m}` or
//! `{m,n}` repetition count. Unsupported syntax panics at generation time
//! with the offending pattern.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Atom {
    /// The characters this atom can produce.
    choices: Vec<char>,
    min: u32,
    max_inclusive: u32,
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>, pattern: &str) -> Vec<char> {
    let mut members = Vec::new();
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in pattern {pattern:?}"));
        match c {
            ']' => break,
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                members.push(escaped);
            }
            _ => {
                // `a-z` is a range unless the `-` is last (then literal).
                if chars.peek() == Some(&'-') {
                    let mut lookahead = chars.clone();
                    lookahead.next();
                    match lookahead.peek() {
                        Some(&']') | None => members.push(c),
                        Some(&hi) => {
                            chars.next();
                            chars.next();
                            assert!(c <= hi, "inverted range {c}-{hi} in pattern {pattern:?}");
                            members.extend(c..=hi);
                        }
                    }
                } else {
                    members.push(c);
                }
            }
        }
    }
    assert!(!members.is_empty(), "empty character class in pattern {pattern:?}");
    members
}

fn parse_quantifier(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    pattern: &str,
) -> (u32, u32) {
    let mut body = String::new();
    loop {
        match chars.next() {
            Some('}') => break,
            Some(c) => body.push(c),
            None => panic!("unterminated quantifier in pattern {pattern:?}"),
        }
    }
    let parse = |s: &str| -> u32 {
        s.trim()
            .parse()
            .unwrap_or_else(|_| panic!("bad quantifier {{{body}}} in pattern {pattern:?}"))
    };
    match body.split_once(',') {
        Some((lo, hi)) => (parse(lo), parse(hi)),
        None => {
            let n = parse(&body);
            (n, n)
        }
    }
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms: Vec<Atom> = Vec::new();
    while let Some(c) = chars.next() {
        match c {
            '[' => {
                let choices = parse_class(&mut chars, pattern);
                atoms.push(Atom { choices, min: 1, max_inclusive: 1 });
            }
            '{' => {
                let (min, max_inclusive) = parse_quantifier(&mut chars, pattern);
                assert!(min <= max_inclusive, "inverted quantifier in pattern {pattern:?}");
                let atom = atoms
                    .last_mut()
                    .unwrap_or_else(|| panic!("quantifier with no atom in pattern {pattern:?}"));
                atom.min = min;
                atom.max_inclusive = max_inclusive;
            }
            '\\' => {
                let escaped = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}"));
                atoms.push(Atom { choices: vec![escaped], min: 1, max_inclusive: 1 });
            }
            '.' | '*' | '+' | '?' | '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex syntax {c:?} in pattern {pattern:?} (shim dialect: literals, [classes], {{m,n}})");
            }
            _ => atoms.push(Atom { choices: vec![c], min: 1, max_inclusive: 1 }),
        }
    }
    atoms
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_pattern(self) {
            let span = (atom.max_inclusive - atom.min + 1) as u64;
            let count = atom.min + rng.below(span) as u32;
            for _ in 0..count {
                let index = rng.below(atom.choices.len() as u64) as usize;
                out.push(atom.choices[index]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn draw(pattern: &'static str, seed: u64) -> String {
        pattern.generate(&mut TestRng::seed_from_u64(seed))
    }

    #[test]
    fn identifier_pattern_shape() {
        for seed in 0..200 {
            let s = draw("[a-zA-Z_][a-zA-Z0-9_]{0,8}", seed);
            assert!((1..=9).contains(&s.len()), "{s:?}");
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_', "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'), "{s:?}");
        }
    }

    #[test]
    fn printable_ascii_range_class() {
        for seed in 0..200 {
            let s = draw("[ -~]{0,24}", seed);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn class_with_literal_specials() {
        for seed in 0..200 {
            let s = draw("[a-z.*>]{1,20}", seed);
            assert!((1..=20).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || ".*>".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn literal_atoms_and_exact_counts() {
        assert_eq!(draw("ab", 7), "ab");
        assert_eq!(draw("[x]{3}", 7), "xxx");
    }
}
