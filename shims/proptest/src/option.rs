//! `prop::option::of` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
#[derive(Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.next_u64() & 1 == 1 {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Some(value)` from the inner strategy half the time, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
