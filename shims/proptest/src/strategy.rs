//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree or shrinking: a strategy
/// draws a fresh value directly from the test generator, and failures are
/// reproduced from the reported case seed instead of being minimised.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Rejects generated values failing the predicate, redrawing in their
    /// place. Panics after 1024 consecutive rejections.
    fn prop_filter<F>(self, reason: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason: reason.into(), predicate }
    }

    /// Builds a bounded recursive strategy: `recurse` receives the strategy
    /// for the previous depth and returns the strategy for one level up.
    /// Each level falls back to the leaf strategy half the time, so depth
    /// never exceeds `depth`. `desired_size` and `expected_branch_size`
    /// are accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = Union::new(vec![leaf.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Type-erases the strategy behind a cheaply cloneable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy { draw: Rc::new(move |rng| self.generate(rng)) }
    }
}

/// A type-erased, cheaply cloneable strategy handle.
pub struct BoxedStrategy<T> {
    draw: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { draw: Rc::clone(&self.draw) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.draw)(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let candidate = self.inner.generate(rng);
            if (self.predicate)(&candidate) {
                return candidate;
            }
        }
        panic!("prop_filter rejected 1024 consecutive values: {}", self.reason);
    }
}

/// Uniform choice between same-typed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Wraps the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { options: self.options.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy range is empty");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // span can be 2^64 (full-domain u64/i64); fold the draw in u128.
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "strategy range is empty");
        self.start + rng.f64_unit() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "strategy range is empty");
        lo + rng.f64_unit_inclusive() * (hi - lo)
    }
}

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
