//! `any::<T>()` — whole-domain strategies for primitives.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value uniformly over the type's domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values only; the tests compare round-trips with ==.
        loop {
            let candidate = f64::from_bits(rng.next_u64());
            if candidate.is_finite() {
                return candidate;
            }
        }
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
