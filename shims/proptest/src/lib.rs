//! Offline stand-in for `proptest`.
//!
//! Implements the strategy combinators and the `proptest!` macro surface
//! the workspace's property tests use: `any::<T>()`, numeric ranges,
//! regex-lite string patterns, tuples, `prop_map`/`prop_filter`/
//! `prop_recursive`, `prop_oneof!`, `Just`, `prop::collection::{vec,
//! hash_map}`, `prop::option::of`, `prop::sample::select`, and the
//! `prop_assert*` macros. Failing cases report the generating seed, but
//! there is no shrinking — the seed makes failures reproducible instead.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs one property-test function: generates `cases` inputs and invokes
/// the body closure, panicking with the seed on the first failure.
#[doc(hidden)]
pub fn run_property_test<F>(name: &str, config: &test_runner::ProptestConfig, mut case: F)
where
    F: FnMut(&mut test_runner::TestRng) -> Result<(), test_runner::TestCaseError>,
{
    // A deterministic per-test seed: same inputs on every run.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    for case_index in 0..config.cases {
        let case_seed = seed.wrapping_add(case_index as u64);
        let mut rng = test_runner::TestRng::seed_from_u64(case_seed);
        if let Err(e) = case(&mut rng) {
            panic!(
                "proptest case {case_index}/{} failed (seed {case_seed:#x}): {}",
                config.cases, e.message
            );
        }
    }
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` inner
/// attribute followed by `#[test]` functions whose arguments are drawn
/// from strategies via `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_property_test(stringify!($name), &config, |rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strategy), rng);
                    )+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// the whole process) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}", left, right, format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, "assertion failed: `{:?}` == `{:?}`", left, right);
    }};
}
