//! `prop::sample::select` — uniform choice from a fixed list.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len() as u64) as usize;
        self.options[index].clone()
    }
}

/// One of the given values, uniformly.
///
/// # Panics
///
/// Panics if `options` is empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}
