//! Collection strategies: `prop::collection::{vec, hash_map}`.

use std::collections::HashMap;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive-lower, chosen-uniformly collection size.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        let span = (self.max_inclusive - self.min + 1) as u64;
        self.min + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max_inclusive: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "collection size range is empty");
        SizeRange { min: r.start, max_inclusive: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "collection size range is empty");
        SizeRange { min: *r.start(), max_inclusive: *r.end() }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.draw(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`hash_map`].
#[derive(Clone)]
pub struct HashMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for HashMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Hash + Eq,
    V: Strategy,
{
    type Value = HashMap<K::Value, V::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Duplicate keys collapse, so the realised size may undershoot the
        // draw — same contract as real proptest.
        let len = self.size.draw(rng);
        (0..len).map(|_| (self.key.generate(rng), self.value.generate(rng))).collect()
    }
}

/// A `HashMap` with keys from `key`, values from `value`, and size drawn
/// from `size` (before duplicate-key collapse).
pub fn hash_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> HashMapStrategy<K, V>
where
    K::Value: Hash + Eq,
{
    HashMapStrategy { key, value, size: size.into() }
}
