//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its model types but
//! never drives an actual serializer (reports are hand-rolled text), so the
//! shim provides marker traits satisfied by every type plus the no-op
//! derive macros from the sibling `serde_derive` shim. Derive-macro names
//! and trait names share an identifier but live in separate namespaces, so
//! `use serde::{Deserialize, Serialize}` imports both.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

/// Namespace mirror of `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}
