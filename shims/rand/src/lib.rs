//! Offline stand-in for `rand` 0.8: the `Rng`/`RngCore`/`SeedableRng`
//! trait subset the workspace uses, backed by a xoshiro256++ generator.
//!
//! Determinism matters more than crypto here — the simulators seed every
//! run explicitly — so `StdRng` is xoshiro256++ seeded through splitmix64,
//! which passes the statistical bar the Monte-Carlo tests set (hundreds of
//! thousands of samples at ~1% tolerance).

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly over their whole domain by
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable as [`Rng::gen_range`] bounds.
pub trait SampleUniform: Sized {
    /// Draws uniformly from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        low + f64::sample(rng) * (high - low)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is < 2^-64 for the spans the workspace uses.
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's domain (`[0, 1)` for
    /// floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform + PartialOrd + Copy>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with an empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Draws `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Explicitly seedable generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The standard deterministic generator: xoshiro256++.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Namespace mirror of `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

/// Module mirror of `rand::seq` (not used by the workspace; kept empty).
pub mod seq {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_with_good_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.25f64..0.25);
            assert!((-0.25..0.25).contains(&x));
            let k = rng.gen_range(3u32..17);
            assert!((3..17).contains(&k));
        }
    }

    #[test]
    fn works_through_unsized_fn_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 1.0);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        rng.gen_range(1.0f64..1.0);
    }
}
