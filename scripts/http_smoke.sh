#!/usr/bin/env bash
# HTTP exposition smoke test: start a traced two-shard rjms-server with
# the HTTP endpoint, the SLO engine, the saturation forecaster, flow
# control, and the per-topic observatory, drive a workload through the
# TCP clients, then validate the /metrics, /snapshot.json, /traces,
# /model, /flow, /history, /slo, /alerts, /forecast, /shards, and
# /topics responses.
#
# Usage: scripts/http_smoke.sh [path-to-target-dir]
# Exits non-zero on any failed check.

set -euo pipefail

TARGET="${1:-target/release}"
SERVER="$TARGET/rjms-server"
PUB="$TARGET/rjms-pub"
SUB="$TARGET/rjms-sub"
HTTP_ADDR="127.0.0.1:7881"
LISTEN_ADDR="127.0.0.1:7871"
COUNT=200

# Scratch space for captured responses, removed on exit.
WORKDIR="$(mktemp -d "${TMPDIR:-/tmp}/rjms-http-smoke.XXXXXX")"

for bin in "$SERVER" "$PUB" "$SUB"; do
  [ -x "$bin" ] || { echo "missing binary: $bin (build with cargo build --release)"; exit 1; }
done

fail() { echo "FAIL: $*"; exit 1; }

"$SERVER" --listen "$LISTEN_ADDR" --http "$HTTP_ADDR" --trace --slo --forecast --flow \
  --shards 2 --topic-obs --topic smoke &
SERVER_PID=$!
trap 'kill "$SERVER_PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

# Wait for both listeners to come up.
for _ in $(seq 1 50); do
  if curl -sf "http://$HTTP_ADDR/" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "http://$HTTP_ADDR/" >/dev/null || fail "http endpoint never came up"

# Let the SLO sampler (1 s interval) record its baseline first, so the
# workload below lands in a delta slot and is visible in /history.
sleep 1.2

# Drive the workload: a subscriber consuming $COUNT messages, a publisher
# sending them with trace ids printed.
"$SUB" --connect "$LISTEN_ADDR" --topic smoke --count "$COUNT" --quiet &
SUB_PID=$!
sleep 0.3
"$PUB" --connect "$LISTEN_ADDR" --topic smoke --count "$COUNT" --print-trace-ids \
  > "$WORKDIR/pub_trace_ids.txt"
wait "$SUB_PID" || fail "subscriber did not receive all $COUNT messages"
sleep 0.3

# --- /metrics: Prometheus text format ---------------------------------
curl -sf "http://$HTTP_ADDR/metrics" > "$WORKDIR/metrics.txt" || fail "/metrics not served"
grep -q '^# TYPE broker_sojourn_seconds histogram$' "$WORKDIR/metrics.txt" \
  || fail "/metrics missing the sojourn histogram family"
grep -q "^broker_topic_received{topic=\"smoke\"} $COUNT\$" "$WORKDIR/metrics.txt" \
  || fail "/metrics missing the per-topic labeled counter"
grep -q '_bucket{le="+Inf"}' "$WORKDIR/metrics.txt" || fail "/metrics histograms lack +Inf buckets"
# Cumulative bucket counts must be monotone within each family and every
# sample line must parse as <name>[{labels}] <number>.
awk '
  /^#/ { prev = -1; next }
  !/^[A-Za-z_:][A-Za-z0-9_:]*({[^}]*})? -?[0-9.+eE-]+$/ { print "bad line: " $0; bad = 1 }
  /_bucket\{le="[^+]/ {
    n = $NF + 0
    if (n < prev) { print "non-monotone bucket: " $0; bad = 1 }
    prev = n
    next
  }
  { prev = -1 }
  END { exit bad }
' "$WORKDIR/metrics.txt" || fail "/metrics output is not well-formed Prometheus text"

# --- /snapshot.json ----------------------------------------------------
curl -sf "http://$HTTP_ADDR/snapshot.json" > "$WORKDIR/snapshot.json" || fail "/snapshot.json not served"
grep -q "\"received\":$COUNT" "$WORKDIR/snapshot.json" || fail "/snapshot.json missing message counters"
grep -q '"per_topic":{"smoke"' "$WORKDIR/snapshot.json" || fail "/snapshot.json missing per-topic stats"

# --- /traces: complete 5-stage chains for >=99% of published ids -------
curl -sf "http://$HTTP_ADDR/traces" > "$WORKDIR/traces.json" || fail "/traces not served"
# Every chain kept while the tail threshold is still 0, so each published
# trace id must appear as a complete, monotone chain with a wire_flush span.
COMPLETE=$(
  awk -v ids_file="$WORKDIR/pub_trace_ids.txt" '
    BEGIN {
      while ((getline line < ids_file) > 0)
        if (split(line, a, " ") == 2) want[a[2]] = 1
      RS = "{\"trace_id\":"
    }
    NR > 1 {
      split($0, parts, ",")
      id = parts[1]
      if ((id in want) && /"complete":true/ && /"monotone":true/ && /wire_flush/) n++
    }
    END { print n + 0 }
  ' "$WORKDIR/traces.json"
)
echo "complete chains: $COMPLETE / $COUNT"
[ "$COMPLETE" -ge $((COUNT * 99 / 100)) ] \
  || fail "only $COMPLETE/$COUNT published messages have complete 5-stage chains"

# --- /model ------------------------------------------------------------
curl -sf "http://$HTTP_ADDR/model" >/dev/null || fail "/model not served"

# --- /flow: admission-control state ------------------------------------
curl -sf "http://$HTTP_ADDR/flow" > "$WORKDIR/flow.json" || fail "/flow not served"
grep -q '"lambda_max":' "$WORKDIR/flow.json" || fail "/flow missing the budget"
grep -q '"per_class":\[' "$WORKDIR/flow.json" || fail "/flow missing per-class counters"
# The smoke workload sits far below the budget: every publish granted.
GRANTED=$(tr ',' '\n' < "$WORKDIR/flow.json" | awk -F: '/"granted"/ { n += $2 } END { print n + 0 }')
SHED=$(tr -d '}]' < "$WORKDIR/flow.json" | tr ',' '\n' | awk -F: '/"shed"/ { n += $2 } END { print n + 0 }')
[ "$GRANTED" -ge "$COUNT" ] || fail "/flow granted $GRANTED < published $COUNT"
[ "$SHED" = 0 ] || fail "/flow shed $SHED messages from an under-budget workload"
grep -q '"flow":{"granted":' "$WORKDIR/snapshot.json" \
  || fail "/snapshot.json missing the flow counters"

# --- /slo, /history, /alerts: the SLO engine ---------------------------
curl -sf "http://$HTTP_ADDR/slo" > "$WORKDIR/slo.json" || fail "/slo not served"
grep -q '"name":"w99"' "$WORKDIR/slo.json" || fail "/slo missing the derived w99 objective"
grep -q '"model_verdict":' "$WORKDIR/slo.json" || fail "/slo missing the model verdict"
grep -q '"forecast":' "$WORKDIR/slo.json" || fail "/slo missing the forecast block"

# Poll until the sampler ticks past the workload and the dispatched
# messages show up as a non-zero point in the waiting-time history.
HISTORY_OK=0
for _ in $(seq 1 30); do
  curl -sf "http://$HTTP_ADDR/history?metric=broker.waiting_ns&window=10m&reduce=count" \
    > "$WORKDIR/history.json" || fail "/history not served"
  if grep -q '"v":[1-9]' "$WORKDIR/history.json"; then HISTORY_OK=1; break; fi
  sleep 0.2
done
grep -q '"metric":"broker.waiting_ns"' "$WORKDIR/history.json" \
  || fail "/history missing the metric name"
[ "$HISTORY_OK" = 1 ] || fail "/history never showed the dispatched workload"

curl -sf "http://$HTTP_ADDR/alerts" > "$WORKDIR/alerts.json" || fail "/alerts not served"
grep -q '"events":\[' "$WORKDIR/alerts.json" || fail "/alerts missing the event log"

# --- /forecast: the saturation forecaster ------------------------------
# The smoke run is short, so the trend fit may still be warming up
# ("forecast":null); the knobs and the enabled switch must be present
# either way.
curl -sf "http://$HTTP_ADDR/forecast" > "$WORKDIR/forecast.json" || fail "/forecast not served"
grep -q '"enabled":true' "$WORKDIR/forecast.json" || fail "/forecast reports forecasting disabled"
grep -q '"horizon_ms":' "$WORKDIR/forecast.json" || fail "/forecast missing the horizon knob"
grep -q '"trend_window_ms":' "$WORKDIR/forecast.json" || fail "/forecast missing the trend window knob"
grep -q '"min_confidence":' "$WORKDIR/forecast.json" || fail "/forecast missing the confidence gate"
grep -q '"forecast":' "$WORKDIR/forecast.json" || fail "/forecast missing the forecast body"

# --- /shards: per-shard model assessments ------------------------------
curl -sf "http://$HTTP_ADDR/shards" > "$WORKDIR/shards.json" || fail "/shards not served"
grep -q '"shard":0' "$WORKDIR/shards.json" || fail "/shards missing shard 0"
grep -q '"shard":1' "$WORKDIR/shards.json" || fail "/shards missing shard 1"
grep -q '"verdict":' "$WORKDIR/shards.json" || fail "/shards missing model verdicts"
grep -q '"forecast":' "$WORKDIR/shards.json" || fail "/shards missing per-shard forecast blocks"
# The two-shard server exposes per-shard counters in the broker snapshot,
# and the one topic lands on exactly one dispatcher.
grep -q '"shards":\[' "$WORKDIR/snapshot.json" || fail "/snapshot.json missing the shards section"
SHARD_RECEIVED=$(tr '{' '\n' < "$WORKDIR/shards.json" | awk -F'[:,]' '/"samples"/ { n += $4 } END { print n + 0 }')
echo "per-shard model samples: $SHARD_RECEIVED"
# With the observatory on, /shards also carries the skew analyzer's advice.
grep -q '"rebalance":{' "$WORKDIR/shards.json" || fail "/shards missing the rebalance block"
grep -q '"max_mean_ratio":' "$WORKDIR/shards.json" || fail "/shards rebalance missing the skew ratio"
grep -q '"moves":\[' "$WORKDIR/shards.json" || fail "/shards rebalance missing the advised moves"

# --- /topics: the per-topic workload observatory -----------------------
# The accounting scratch flushes on dispatcher idle, so poll until the
# smoke topic's row shows every published message.
TOPICS_OK=0
for _ in $(seq 1 30); do
  curl -sf "http://$HTTP_ADDR/topics" > "$WORKDIR/topics.json" || fail "/topics not served"
  if grep -q "\"name\":\"smoke\"[^}]*\"messages\":$COUNT" "$WORKDIR/topics.json"; then
    TOPICS_OK=1; break
  fi
  sleep 0.2
done
[ "$TOPICS_OK" = 1 ] || fail "/topics never accounted all $COUNT smoke messages"
grep -q '"per_topic_cap":' "$WORKDIR/topics.json" || fail "/topics missing the cardinality cap"
grep -q '"topics":\[' "$WORKDIR/topics.json" || fail "/topics missing the per-topic rows"
grep -q '"global":{"fitted":' "$WORKDIR/topics.json" || fail "/topics missing the pooled fit"

echo "PASS: http exposition smoke ($COMPLETE/$COUNT complete chains)"
