//! Little's-law cross-check integration test: real broker, paced Poisson
//! workload.
//!
//! Two topics are pinned (via [`rjms::broker::shard_of`]) onto the two
//! dispatcher shards of a cost-model-calibrated broker, and each shard is
//! driven at `ρ ≈ 0.75` by an exponentially paced publisher. The backlog
//! instrument samples the publish-queue depth at every dispatch (PASTA),
//! so its window mean is an independent measurement of the queue length
//! `L` that must agree with `λ·E[W]` from the waiting histogram if the
//! telemetry is trustworthy. The forecaster's self-check must report that
//! agreement — on the aggregate instruments and on each shard's labeled
//! twins — within a tolerance generous enough for a few seconds of real
//! scheduling noise.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rjms::broker::{
    shard_of, Broker, BrokerConfig, CostModel, Filter, Message, MetricsConfig, OverflowPolicy,
};
use rjms::desim::random::sample_exponential;
use rjms::metrics::labeled;
use rjms::obs::slo::{SERVICE_METRIC, WAITING_METRIC};
use rjms::obs::{AlertPolicy, ForecastConfig, HistoryConfig, ObsConfig, ObsCore, BACKLOG_METRIC};
use std::time::{Duration, Instant};

/// Filters per topic (one of them matches every message).
const N_FILTERS: u32 = 32;

/// Table I correlation-ID constants divided by this factor, so the
/// calibrated service time is long enough to queue against but the test
/// still finishes in seconds.
const COST_SCALE: f64 = 4.0;

/// Per-shard operating point: busy enough that the time-average queue
/// length is meaningfully above zero.
const TARGET_RHO: f64 = 0.75;

const TICK: Duration = Duration::from_millis(500);
const TOTAL_TICKS: u64 = 12;

#[test]
fn paced_poisson_workload_satisfies_littles_law_per_shard() {
    let cost = CostModel::new(
        CostModel::CORRELATION_ID.t_rcv / COST_SCALE,
        CostModel::CORRELATION_ID.t_fltr / COST_SCALE,
        CostModel::CORRELATION_ID.t_tx / COST_SCALE,
    );
    let e_b = cost.processing_time(N_FILTERS as usize, 1);

    // One topic per shard, found by probing the stable topic hash.
    let topic_for = |shard: usize| {
        (0..64)
            .map(|i| format!("t{i}"))
            .find(|name| shard_of(name, 2) == shard)
            .expect("some name hashes onto the shard")
    };
    let topics = [topic_for(0), topic_for(1)];

    let broker = Broker::start(
        BrokerConfig::builder()
            .shards(2)
            .publish_queue_capacity(1 << 14)
            .subscriber_queue_capacity(1 << 18)
            .overflow_policy(OverflowPolicy::DropNew)
            .metrics(MetricsConfig::default())
            .cost_model(cost)
            .build(),
    );
    let _subscribers: Vec<_> = topics
        .iter()
        .flat_map(|topic| {
            broker.create_topic(topic).unwrap();
            (0..N_FILTERS)
                .map(|i| {
                    broker
                        .subscription(topic)
                        .filter(Filter::correlation_id(&format!("#{i}")).unwrap())
                        .open()
                        .unwrap()
                })
                .collect::<Vec<_>>()
        })
        .collect();

    let registry = broker.metrics().expect("metrics enabled above");
    let mut core = ObsCore::new(ObsConfig {
        history: HistoryConfig {
            fine_interval: TICK,
            fine_slots: 64,
            coarse_factor: 4,
            coarse_slots: 32,
        },
        slos: Vec::new(),
        policy: AlertPolicy::default(),
        forecast: ForecastConfig {
            trend_window: Duration::from_secs(4),
            ..ForecastConfig::default()
        },
    });

    let publishers: Vec<_> = topics.iter().map(|t| broker.publisher(t).unwrap()).collect();

    // The spun cost model is a floor, not the whole service time — real
    // filter evaluation, per-subscriber enqueueing, and (on a small host)
    // the two dispatcher threads contending for the same cores all ride
    // on top. Pacing against the modeled E[B] alone can push ρ past 1, so
    // calibrate the actual drain rate with both shards busy at once: a
    // burst through each topic, timed until the last message dispatches.
    // The burst lands in the first history slots, well clear of the trend
    // window measured below.
    let calibration = 1_000u64;
    let burst = Instant::now();
    for _ in 0..calibration {
        for publisher in &publishers {
            publisher.publish(Message::builder().correlation_id("#0").build()).unwrap();
        }
    }
    while broker.snapshot().messages.received < 2 * calibration {
        std::thread::sleep(Duration::from_millis(1));
    }
    // Per-shard service time with both dispatchers running: combined
    // drain throughput split across the two shards.
    let e_b_actual = burst.elapsed().as_secs_f64() / calibration as f64;
    assert!(
        e_b_actual >= e_b,
        "calibrated dispatch time {e_b_actual:.6}s below the spun cost floor {e_b:.6}s"
    );

    // One Poisson stream per shard. The pacer sleeps between batches so
    // it does not steal dispatcher CPU; each wakeup publishes whatever
    // arrivals the exponential clocks produced meanwhile. Batching
    // coarsens the micro-scale arrival process but Little's law is
    // distribution-free (H = λG), which is exactly what the self-check
    // measures.
    let rate = TARGET_RHO / e_b_actual;
    let mut rng = StdRng::seed_from_u64(2006);
    let mut next_arrival = [Duration::ZERO, Duration::ZERO];
    let mut next_tick = TICK;
    let mut ticks = 0u64;
    let t0 = Instant::now();
    while ticks < TOTAL_TICKS {
        std::thread::sleep(Duration::from_millis(2));
        let now = t0.elapsed();
        for (shard, publisher) in publishers.iter().enumerate() {
            while next_arrival[shard] <= now {
                publisher.publish(Message::builder().correlation_id("#0").build()).unwrap();
                next_arrival[shard] += Duration::from_secs_f64(sample_exponential(&mut rng, rate));
            }
        }
        if now >= next_tick {
            core.tick(next_tick, &registry.snapshot(), None);
            next_tick += TICK;
            ticks += 1;
        }
    }

    // Aggregate instruments: the self-check must be present and the two
    // L estimates must agree to within a factor that catches real
    // telemetry breakage (wrong units, dead instruments, mislabeled
    // shards) without flaking on scheduling skew: on a small CI host the
    // pacer and sampler threads preempt the dispatchers, inflating
    // measured waits relative to the batch-structured queue depths. The
    // engine's own 10% gate is exercised under controlled telemetry by
    // the staged-ramp test (tests/forecast_ramp.rs).
    let forecast = core.latest_forecast().cloned().expect("steady traffic must produce a forecast");
    let check = forecast.littles_law.expect("backlog telemetry must feed the self-check");
    assert!(
        check.measured_l > 0.0 && check.predicted_l > 0.0,
        "both L estimates must be live: measured {} predicted {}",
        check.measured_l,
        check.predicted_l
    );
    let near_empty = check.measured_l.max(check.predicted_l) < 0.5;
    assert!(
        near_empty || check.error <= 0.50,
        "aggregate Little's-law disagreement {:.1}% (measured L {:.2}, λ·E[W] {:.2})",
        check.error * 100.0,
        check.measured_l,
        check.predicted_l
    );

    // Per-shard labeled twins: every shard carries its own check.
    for label in ["0", "1"] {
        let twin = |base: &str| labeled(base, &[("shard", label)]);
        let forecast = core
            .forecast_for(&twin(WAITING_METRIC), &twin(SERVICE_METRIC), &twin(BACKLOG_METRIC))
            .unwrap_or_else(|| panic!("shard {label} produced no forecast"));
        let check =
            forecast.littles_law.unwrap_or_else(|| panic!("shard {label} backlog twin missing"));
        let near_empty = check.measured_l.max(check.predicted_l) < 0.5;
        assert!(
            near_empty || check.error <= 0.50,
            "shard {label} Little's-law disagreement {:.1}% (measured L {:.2}, λ·E[W] {:.2})",
            check.error * 100.0,
            check.measured_l,
            check.predicted_l
        );
    }
    broker.shutdown();
}
