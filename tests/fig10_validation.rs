//! Fig. 10 validation: the normalized mean-waiting-time lookup diagram
//! (`E[W]/E[B]` vs ρ per `c_var[B]`) against discrete-event simulation.

use rjms::desim::mg1sim::{simulate_lindley, Mg1SimConfig};
use rjms::desim::random::ReplicationService;
use rjms::model::sweep::mean_waiting_series;
use rjms::queueing::replication::ReplicationModel;
use rjms::queueing::service::ServiceTime;

#[test]
fn normalized_mean_waiting_matches_simulation() {
    // Build a *real* sampleable workload per target cvar: unit-ish E[B]
    // via a scaled-Bernoulli replication grade with integer support.
    let d = 0.3f64;
    let t_tx = 0.01f64;

    for &(target_cvar, rho) in &[(0.0f64, 0.5f64), (0.2, 0.8), (0.4, 0.8)] {
        // Moments for the target (E[B] = 1, cvar = target).
        let (m1, m2) =
            ServiceTime::replication_moments_for_target(d, t_tx, 1.0, target_cvar).unwrap();
        let replication = if target_cvar == 0.0 {
            ReplicationModel::deterministic(m1.round())
        } else {
            // Round the Bernoulli fit to integer support for sampling.
            match ReplicationModel::scaled_bernoulli_from_moments(m1, m2).unwrap() {
                ReplicationModel::ScaledBernoulli { n_fltr, p_match } => {
                    ReplicationModel::scaled_bernoulli(n_fltr.round(), p_match)
                }
                other => other,
            }
        };
        let service = ServiceTime::new(d, t_tx, replication);
        let e_b = service.mean();
        let cvar = service.cvar();

        // Analytic point from the sweep module (the Fig. 10 series).
        let analytic = mean_waiting_series(&[rho], &[cvar])[0].points[0].y;

        // Simulated point.
        let sampler = ReplicationService { deterministic: d, t_tx, replication };
        let sim = simulate_lindley(
            &Mg1SimConfig { arrival_rate: rho / e_b, samples: 200_000, warmup: 20_000, seed: 321 },
            &sampler,
        );
        let simulated = sim.waiting.mean() / e_b;

        let rel = (analytic - simulated).abs() / analytic.max(1e-9);
        assert!(
            rel < 0.08,
            "cvar={cvar:.3} rho={rho}: analytic {analytic:.3} vs simulated {simulated:.3}"
        );
    }
}

#[test]
fn fig10_series_monotone_in_both_axes() {
    let rhos = [0.1, 0.3, 0.5, 0.7, 0.9];
    let cvars = [0.0, 0.2, 0.4, 0.65];
    let series = mean_waiting_series(&rhos, &cvars);
    // Monotone in rho within each series.
    for s in &series {
        for w in s.points.windows(2) {
            assert!(w[1].y > w[0].y, "series {} not increasing in rho", s.label);
        }
    }
    // Monotone in cvar at fixed rho.
    for (i, rho) in rhos.iter().enumerate() {
        for j in 1..series.len() {
            assert!(
                series[j].points[i].y > series[j - 1].points[i].y,
                "not increasing in cvar at rho={rho}"
            );
        }
    }
}
