//! Sharded-dispatch integration tests: the N-shard broker against the
//! single-dispatcher baseline and against the paper's cluster model.
//!
//! Four promises, in increasing order of strength:
//!
//! 1. **Back-compat** — `shards = 1` (the default) behaves exactly like
//!    the pre-shard broker: no `shards` field in the snapshot, identical
//!    counter semantics.
//! 2. **Partitioning** — at `shards = 4` every topic lands on exactly one
//!    dispatcher (`shard_of`), per-shard counters are disjoint, and their
//!    sum equals the aggregate, under Table-I correlation-ID costs.
//! 3. **Model agreement** — each shard is one M/GI/1 server: with
//!    Poisson arrivals split across shards, the measured per-shard mean
//!    waiting time matches [`ClusterScenario::waiting_time`] (the
//!    paper's announced-future-work cluster model with topic-sharded
//!    ingress, `per_broker_rate = λ/k`) within 10%.
//! 4. **Scaling** — saturated throughput grows with the shard count.
//!
//! Tests 3 and 4 are timing tests: they need real parallelism (one core
//! per spinning dispatcher plus a publisher) and degrade to weak sanity
//! checks when `available_parallelism` is too small for the measurement
//! to mean anything — the hard CI gate lives in the
//! `ext_shard_scaling` benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rjms::broker::{
    shard_of, Broker, BrokerConfig, CostModel, Message, MetricsConfig, OverflowPolicy,
};
use rjms::desim::random::sample_exponential;
use rjms::model::params::CostParams;
use rjms::model::ClusterScenario;
use std::time::{Duration, Instant};

/// One topic name per shard, found by trial against the stable hash.
fn topic_per_shard(shards: usize) -> Vec<String> {
    let mut names = vec![None; shards];
    let mut found = 0;
    for trial in 0.. {
        let name = format!("orders-{trial}");
        let shard = shard_of(&name, shards);
        if names[shard].is_none() {
            names[shard] = Some(name);
            found += 1;
            if found == shards {
                break;
            }
        }
    }
    names.into_iter().map(Option::unwrap).collect()
}

fn cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Polls until the broker has received `expected` messages.
fn wait_received(broker: &Broker, expected: u64) {
    for _ in 0..2_000 {
        if broker.snapshot().messages.received >= expected {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("broker never received {expected} messages");
}

/// Promise 1: the default configuration is the old single-dispatcher
/// broker — one shard, no per-shard section in the snapshot.
#[test]
fn single_dispatcher_snapshot_is_backward_compatible() {
    let broker = Broker::start(BrokerConfig::default());
    assert_eq!(shard_of("any-topic", 1), 0, "one shard means shard 0");
    broker.create_topic("events").unwrap();
    let publisher = broker.publisher("events").unwrap();
    let sub = broker.subscription("events").open().unwrap();
    for _ in 0..5 {
        publisher.publish(Message::builder().build()).unwrap();
    }
    for _ in 0..5 {
        assert!(sub.receive_timeout(Duration::from_secs(5)).is_some());
    }
    let snap = broker.snapshot();
    assert!(snap.shards.is_none(), "shards=1 must not grow a shards section");
    assert_eq!(snap.messages.received, 5);
    assert_eq!(snap.messages.dispatched, 5);
    broker.shutdown();
}

/// Promise 2: four shards partition the topics, per-shard counters are
/// disjoint and sum to the aggregate, and delivery still works per topic
/// under Table-I correlation-ID costs.
#[test]
fn four_shards_partition_topics_and_preserve_totals() {
    const SHARDS: usize = 4;
    let broker = Broker::start(
        BrokerConfig::builder()
            .shards(SHARDS)
            .cost_model(CostModel::CORRELATION_ID)
            .subscriber_queue_capacity(256)
            .build(),
    );
    let topics = topic_per_shard(SHARDS);
    let mut subs = Vec::new();
    let mut total = 0u64;
    for (shard, topic) in topics.iter().enumerate() {
        broker.create_topic(topic).unwrap();
        subs.push(broker.subscription(topic).open().unwrap());
        let publisher = broker.publisher(topic).unwrap();
        // Distinct per-shard counts so a routing mistake is visible.
        let count = (shard as u64 + 1) * 10;
        for _ in 0..count {
            publisher.publish(Message::builder().build()).unwrap();
        }
        total += count;
    }
    wait_received(&broker, total);

    let snap = broker.snapshot();
    let shards = snap.shards.expect("shards=4 exposes per-shard counters");
    assert_eq!(shards.len(), SHARDS);
    for (shard, s) in shards.iter().enumerate() {
        assert_eq!(s.shard, shard);
        assert_eq!(s.topics, 1, "one trial topic per shard");
        assert_eq!(s.received, (shard as u64 + 1) * 10, "shard {shard} received");
    }
    let per_shard_sum: u64 = shards.iter().map(|s| s.received).sum();
    assert_eq!(per_shard_sum, snap.messages.received, "shard counters sum to aggregate");
    for (shard, sub) in subs.iter().enumerate() {
        let mut drained = 0;
        while sub.receive_timeout(Duration::from_millis(200)).is_some() {
            drained += 1;
        }
        assert_eq!(drained, (shard as u64 + 1) * 10, "shard {shard} delivery");
    }
    broker.shutdown();
}

/// Promise 3: per-shard waiting times follow the cluster model.
///
/// Two shards, one topic each, four always-matching subscribers per
/// topic, inflated deterministic costs (`E[B] = 3 ms` per message:
/// `0.5 + 4·0.25 + 4·0.375`), Poisson arrivals at per-shard utilization
/// `ρ ≈ 0.55`. Maps onto [`ClusterScenario`] with `k = 2` brokers,
/// `m = 8` subscribers, `E[R] = 8` (so each shard carries `m/k = 4`
/// filters and `E[R]/k = 4` transmissions per message) and topic-sharded
/// ingress `per_broker_rate = λ/k`.
///
/// The 10% agreement assert needs one core per spinning dispatcher plus
/// a dedicated arrival clock, so it only runs with 4+ cores; below that
/// the test still checks that every shard produced a model report.
#[test]
fn per_shard_waiting_time_matches_cluster_scenario() {
    const SHARDS: usize = 2;
    const SUBS_PER_TOPIC: usize = 4;
    const MSGS_PER_SHARD: u64 = 1_300;
    let cost = CostModel::new(500e-6, 250e-6, 375e-6);
    let service_mean = 3.0e-3; // 500µs + 4·250µs + 4·375µs
    let rho = 0.55;
    let per_shard_rate = rho / service_mean;

    let broker = Broker::start(
        BrokerConfig::builder()
            .shards(SHARDS)
            .cost_model(cost)
            .metrics(MetricsConfig::default())
            .publish_queue_capacity(1 << 12)
            .subscriber_queue_capacity(1 << 12)
            .overflow_policy(OverflowPolicy::DropNew)
            .build(),
    );
    let topics = topic_per_shard(SHARDS);
    let mut subscribers = Vec::new();
    let mut publishers = Vec::new();
    for topic in &topics {
        broker.create_topic(topic).unwrap();
        for _ in 0..SUBS_PER_TOPIC {
            subscribers.push(broker.subscription(topic).open().unwrap());
        }
        publishers.push(broker.publisher(topic).unwrap());
    }

    // One Poisson stream at 2λ, each arrival routed to a uniformly random
    // topic: thinning keeps the per-shard streams Poisson at λ. A spin
    // clock (not `sleep`) keeps inter-arrival jitter below the scheduler
    // quantum.
    let total = MSGS_PER_SHARD * SHARDS as u64;
    let total_rate = per_shard_rate * SHARDS as f64;
    let mut rng = StdRng::seed_from_u64(7);
    let start = Instant::now();
    let mut next_s = 0.0;
    for _ in 0..total {
        next_s += sample_exponential(&mut rng, total_rate);
        while start.elapsed().as_secs_f64() < next_s {
            std::hint::spin_loop();
        }
        let topic = rng.gen_range(0..SHARDS);
        publishers[topic].publish(Message::builder().build()).unwrap();
    }
    let offered_elapsed = start.elapsed().as_secs_f64();
    wait_received(&broker, total);

    // Per-shard model reports; histogram flushes land on dispatcher idle.
    let reports = loop {
        let reports = broker.shard_reports();
        assert_eq!(reports.len(), SHARDS);
        if reports.iter().all(|r| r.samples >= MSGS_PER_SHARD / 2) {
            break reports;
        }
        std::thread::sleep(Duration::from_millis(10));
    };

    let scenario = ClusterScenario {
        params: CostParams {
            t_rcv: cost.t_rcv,
            t_fltr: cost.t_fltr,
            t_tx: cost.t_tx,
            t_store: 0.0,
        },
        brokers: SHARDS as u32,
        subscribers: (SHARDS * SUBS_PER_TOPIC) as u32,
        filters_per_subscriber: 1,
        mean_replication: (SHARDS * SUBS_PER_TOPIC) as f64,
        rho,
    };
    assert!((scenario.per_broker_service_time() - service_mean).abs() < 1e-12);

    for report in &reports {
        let verdict = report.verdict.report().unwrap_or_else(|| {
            panic!("shard {} verdict carries no report: {:?}", report.shard, report.verdict)
        });
        // Predict at the rate this shard was actually offered.
        let shard_rate = verdict.measured.samples as f64 / offered_elapsed;
        let predicted = scenario.waiting_time(shard_rate).unwrap().queue().mean_waiting_time();
        let measured = verdict.measured.mean_waiting_time;
        let error = (measured - predicted).abs() / predicted;
        eprintln!(
            "shard {}: rate {:.0}/s measured E[W] {:.3}ms predicted {:.3}ms error {:.1}%",
            report.shard,
            shard_rate,
            measured * 1e3,
            predicted * 1e3,
            error * 1e2,
        );
        if cores() >= 4 {
            assert!(
                error < 0.10,
                "shard {}: measured E[W] {measured:.6}s vs predicted {predicted:.6}s ({:.1}% off)",
                report.shard,
                error * 1e2,
            );
        }
    }
    broker.shutdown();
}

/// Promise 4: saturated throughput grows with the shard count.
///
/// The same offered workload (four topics, 50 spinning filter
/// evaluations per message) runs against one and four dispatchers; with
/// real parallelism the four-shard broker must clear at least twice the
/// single-dispatcher rate (the full `≥ 2×` CI gate is
/// `ext_shard_scaling`). Starved of cores the ratio only gets a sanity
/// bound — sharding must never *cost* throughput beyond scheduler noise.
#[test]
fn sharded_throughput_scales_with_dispatchers() {
    const TOPICS: usize = 4;
    const MSGS_PER_TOPIC: u64 = 500;
    const FILTERS: usize = 50;

    fn saturated_rate(shards: usize) -> f64 {
        let broker = Broker::start(
            BrokerConfig::builder()
                .shards(shards)
                .cost_model(CostModel::new(0.85e-6, 7.02e-6, 17.0e-6))
                .publish_queue_capacity(64)
                .subscriber_queue_capacity(1 << 10)
                .overflow_policy(OverflowPolicy::DropNew)
                .build(),
        );
        let topics = topic_per_shard(TOPICS.max(shards));
        let mut subscribers = Vec::new();
        let mut publishers = Vec::new();
        for topic in topics.iter().take(TOPICS) {
            broker.create_topic(topic).unwrap();
            for _ in 0..FILTERS {
                subscribers.push(broker.subscription(topic).open().unwrap());
            }
            publishers.push(broker.publisher(topic).unwrap());
        }
        let total = MSGS_PER_TOPIC * TOPICS as u64;
        let start = Instant::now();
        // Round-robin keeps every shard's queue non-empty; `publish`
        // blocks on a full queue, so the offered load is saturating.
        for i in 0..total {
            publishers[i as usize % TOPICS].publish(Message::builder().build()).unwrap();
        }
        wait_received(&broker, total);
        let rate = total as f64 / start.elapsed().as_secs_f64();
        broker.shutdown();
        rate
    }

    let single = saturated_rate(1);
    let sharded = saturated_rate(4);
    let ratio = sharded / single;
    eprintln!("throughput: 1 shard {single:.0}/s, 4 shards {sharded:.0}/s, ratio {ratio:.2}");
    if cores() >= 6 {
        assert!(
            ratio >= 2.0,
            "4 shards on {} cores must double throughput, got {ratio:.2}",
            cores()
        );
    } else if cores() >= 4 {
        assert!(ratio >= 1.3, "4 shards on {} cores must scale, got {ratio:.2}", cores());
    } else {
        assert!(ratio > 0.3, "sharding must not collapse throughput, got {ratio:.2}");
    }
}
