//! Staged-ramp integration test for the saturation forecaster.
//!
//! Arrival rate climbs linearly from `0.5×λ_breach` to `1.1×λ_breach`
//! while every tick records model-consistent telemetry: waiting samples
//! at the analytic `W99(ρ)` for the current utilization, deterministic
//! 1 ms service samples, and backlog samples equal to `λ·E[W]` so
//! Little's law holds by construction. The engine must:
//!
//! 1. raise the proactive `Pending` state strictly before the reactive
//!    `Firing` transition,
//! 2. attach forecast evidence whose ETA lands within two fast windows
//!    of the *actual* breach instant (the tick where `λ` crosses the
//!    analytic breach rate),
//! 3. keep the Little's-law self-check consistent (≤ 10% error) on the
//!    constructed telemetry.
//!
//! The waiting samples come from the same Eq. 1 + M/GI/1 family the
//! forecaster inverts, so the test isolates what the forecaster adds:
//! the trend fit and the time-axis projection.

use rjms::metrics::MetricsRegistry;
use rjms::obs::{
    AlertEvent, AlertPolicy, AlertState, ForecastConfig, HistoryConfig, ObsConfig, ObsCore,
    SloSpec, BACKLOG_METRIC,
};
use rjms::queueing::replication::ReplicationModel;
use rjms::queueing::service::ServiceTime;
use std::time::Duration;

const FAST: Duration = Duration::from_secs(5);
const SLOW: Duration = Duration::from_secs(15);
const E_B: f64 = 0.001; // deterministic 1 ms service

/// Analytic W99 (seconds) for the deterministic-service M/G/1 at `rho`.
fn w99_at(rho: f64) -> f64 {
    let service = ServiceTime::new(E_B, 0.0, ReplicationModel::deterministic(1.0));
    rjms::model::WaitingTimeAnalysis::for_service_time(service, rho)
        .expect("rho < 1")
        .distribution()
        .quantile(0.99)
}

#[test]
fn staged_ramp_pends_with_accurate_eta_before_firing() {
    // The W99 limit is the analytic quantile at rho = 0.8, so the breach
    // rate is exactly 800 msg/s and the actual breach instant is the
    // tick where the ramp crosses it.
    let rho_breach = 0.8;
    let limit_s = w99_at(rho_breach);
    let lambda_breach = rho_breach / E_B;

    let spec = SloSpec::latency("w99", "broker.waiting_ns", 0.99, (limit_s * 1e9) as u64)
        .windows(FAST, SLOW);
    let config = ObsConfig {
        history: HistoryConfig {
            fine_interval: Duration::from_secs(1),
            fine_slots: 128,
            coarse_factor: 4,
            coarse_slots: 32,
        },
        slos: vec![spec],
        policy: AlertPolicy {
            resolve_ratio: 0.9,
            resolve_after: Duration::from_secs(2),
            cooldown: Duration::from_secs(4),
        },
        forecast: ForecastConfig {
            enabled: true,
            horizon: Duration::from_secs(300),
            trend_window: Duration::from_secs(30),
            ..ForecastConfig::default()
        },
    };
    let mut core = ObsCore::new(config);

    let registry = MetricsRegistry::new();
    let waiting = registry.histogram("broker.waiting_ns");
    let service = registry.histogram("broker.service_ns");
    let backlog = registry.histogram(BACKLOG_METRIC);

    // λ(t) = 400 + 8t: 0.5×λ_breach at t = 0 up to 1.1×λ_breach at
    // t = 70; the breach rate is crossed at t = 50.
    let lambda_at = |t: u64| 400.0 + 8.0 * t as f64;
    let breach_tick = (0..=70).find(|&t| lambda_at(t) > lambda_breach).expect("ramp crosses");

    let mut events: Vec<AlertEvent> = Vec::new();
    let mut littles_errors: Vec<f64> = Vec::new();
    let mut pending_eta: Option<(Duration, Duration)> = None; // (raised at, eta)
    for t in 1..=70u64 {
        let lambda = lambda_at(t);
        let rho = (lambda * E_B).min(0.995);
        let w_s = w99_at(rho);
        let depth = (lambda * w_s).round() as u64;
        for _ in 0..lambda.round() as u64 {
            waiting.record((w_s * 1e9) as u64);
            service.record((E_B * 1e9) as u64);
            backlog.record(depth);
        }
        let now = Duration::from_secs(t);
        for event in core.tick(now, &registry.snapshot(), None) {
            if event.to == AlertState::Pending && pending_eta.is_none() {
                let forecast = event
                    .evidence
                    .as_ref()
                    .and_then(|e| e.forecast.as_ref())
                    .expect("pending transition must carry forecast evidence");
                assert_eq!(forecast.target, "w99-breach", "soonest breach is the W99 budget");
                pending_eta = Some((event.at, forecast.eta));
            }
            events.push(event);
        }
        if let Some(f) = core.latest_forecast() {
            if let Some(check) = &f.littles_law {
                littles_errors.push(check.error);
                assert!(
                    check.consistent,
                    "Little's-law check inconsistent at t={t}: error {:.3}",
                    check.error
                );
            }
        }
    }

    // 1. Pending strictly precedes Firing.
    let pending_idx = events
        .iter()
        .position(|e| e.to == AlertState::Pending)
        .expect("forecaster never raised Pending on a linear ramp");
    let firing_idx = events
        .iter()
        .position(|e| e.to == AlertState::Firing)
        .expect("objective never fired after the ramp crossed the breach rate");
    assert!(
        pending_idx < firing_idx,
        "Pending (index {pending_idx}) must precede Firing (index {firing_idx}): {events:?}"
    );

    // 2. The Pending ETA lands within two fast windows of the actual
    // breach instant.
    let (raised_at, eta) = pending_eta.expect("pending transition recorded");
    let projected = raised_at + eta;
    let actual = Duration::from_secs(breach_tick);
    let error = projected.abs_diff(actual);
    assert!(
        error <= 2 * FAST,
        "projected breach at {projected:?} (raised {raised_at:?} + eta {eta:?}) vs actual \
         {actual:?}: off by {error:?}, budget {:?}",
        2 * FAST
    );

    // 3. Little's law held throughout on the constructed telemetry.
    assert!(!littles_errors.is_empty(), "backlog instrument never produced a self-check");
    let worst = littles_errors.iter().cloned().fold(0.0, f64::max);
    assert!(worst <= 0.10, "worst Little's-law error {worst:.3} exceeds 10%");
}
