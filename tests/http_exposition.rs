//! End-to-end exposition test: a traced broker server, a TCP client
//! workload, and the HTTP endpoint serving Prometheus metrics, the JSON
//! snapshot, and complete span chains.

use rjms::broker::{BrokerConfig, Message, TraceConfig};
use rjms::http::{HttpServer, HttpState};
use rjms::net::client::RemoteBroker;
use rjms::net::server::BrokerServer;
use rjms::net::wire::WireFilter;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Minimal HTTP GET: returns `(status_line, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let status = head.lines().next().unwrap_or("").to_owned();
    (status, body.to_owned())
}

struct Fixture {
    server: BrokerServer,
    http: HttpServer,
}

fn start_traced_stack() -> Fixture {
    let server = BrokerServer::start(
        BrokerConfig::builder().trace(TraceConfig::default()).build(),
        "127.0.0.1:0",
    )
    .expect("bind broker");
    let state = HttpState::new()
        .observer(server.broker().observer())
        .registry(server.broker().metrics().expect("trace implies metrics"))
        .registry(server.metrics())
        .recorder(server.broker().tracer().expect("tracing enabled"));
    let http = HttpServer::start(state, "127.0.0.1:0").expect("bind http");
    Fixture { server, http }
}

/// Publishes `count` messages through TCP and waits for their delivery.
/// Returns the published trace ids.
fn drive_workload(fixture: &Fixture, count: usize) -> Vec<u64> {
    let client = RemoteBroker::connect(fixture.server.local_addr()).unwrap();
    client.create_topic("t").unwrap();
    let sub = client.subscribe("t", WireFilter::None).unwrap();
    let mut ids = Vec::with_capacity(count);
    for i in 0..count {
        let message = Message::builder().property("seq", i as i64).build();
        ids.push(message.trace_id());
        client.publish("t", &message).unwrap();
    }
    for _ in 0..count {
        sub.receive_timeout(Duration::from_secs(5)).expect("delivery");
    }
    // Allow the final dispatcher commit and wire-flush span to land.
    std::thread::sleep(Duration::from_millis(100));
    ids
}

#[test]
fn traces_endpoint_serves_complete_chains_for_kept_messages() {
    let fixture = start_traced_stack();
    // Default refresh_every is 1024, so the tail threshold stays at its
    // initial 0 for this whole run: every message is over-threshold and
    // must be kept with a full chain.
    let ids = drive_workload(&fixture, 200);

    let (status, body) = http_get(fixture.http.local_addr(), "/traces");
    assert_eq!(status, "HTTP/1.1 200 OK");
    // The acceptance bar: ≥99% of over-threshold messages expose complete
    // five-stage monotone chains under their published trace id.
    let complete = ids
        .iter()
        .filter(|id| {
            // A complete chain renders with its five stage names; find the
            // chain object for this trace id and check its flags.
            body.split("{\"trace_id\":")
                .skip(1)
                .find(|chunk| chunk.starts_with(&id.to_string()))
                .is_some_and(|chunk| {
                    let chain = chunk.split("]}").next().unwrap_or("");
                    chain.contains("\"complete\":true")
                        && chain.contains("\"monotone\":true")
                        && chain.contains("\"stage\":\"wire_flush\"")
                })
        })
        .count();
    assert!(
        complete * 100 >= ids.len() * 99,
        "only {complete}/{} messages have complete monotone 5-stage chains",
        ids.len()
    );

    fixture.http.shutdown();
    fixture.server.shutdown();
}

#[test]
fn metrics_endpoint_renders_prometheus_text() {
    let fixture = start_traced_stack();
    drive_workload(&fixture, 50);

    let (status, body) = http_get(fixture.http.local_addr(), "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");

    // Per-topic labeled counters carry the full workload.
    assert!(body.contains("broker_topic_received{topic=\"t\"} 50"));
    assert!(body.contains("broker_topic_dispatched{topic=\"t\"} 50"));
    // All 50 chains were kept (threshold still 0), split between the tail
    // and uniform counters.
    let kept: u64 = body
        .lines()
        .filter(|l| l.starts_with("trace_chains_"))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<u64>().ok())
        .sum();
    assert_eq!(kept, 50);
    // The connection gauge from the wire registry rides along.
    assert!(body.contains("# TYPE net_connections_active gauge"));
    // Every histogram family is typed, ends with +Inf, and its cumulative
    // bucket counts never decrease.
    let mut bucket_counts: Vec<u64> = Vec::new();
    let mut last_family = String::new();
    for line in body.lines() {
        if line.starts_with("# TYPE") {
            bucket_counts.clear();
            last_family = line.split_whitespace().nth(2).unwrap_or("").to_owned();
            continue;
        }
        if let Some(rest) = line.strip_prefix(&format!("{last_family}_bucket{{le=\"")) {
            let count: u64 =
                rest.rsplit(' ').next().and_then(|v| v.parse().ok()).expect("bucket count");
            if let Some(prev) = bucket_counts.last() {
                assert!(count >= *prev, "non-monotone buckets in {last_family}: {line}");
            }
            bucket_counts.push(count);
        }
    }
    assert!(body.contains("_bucket{le=\"+Inf\"}"), "histograms end with the +Inf bucket");
    assert!(body.contains("# TYPE broker_sojourn_seconds histogram"));

    fixture.http.shutdown();
    fixture.server.shutdown();
}

#[test]
fn snapshot_model_and_unknown_paths() {
    let fixture = start_traced_stack();
    drive_workload(&fixture, 10);

    let (status, body) = http_get(fixture.http.local_addr(), "/snapshot.json");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"received\":10"));
    assert!(body.contains("\"per_topic\":{\"t\""));
    assert_eq!(
        body.matches(['{', '[']).count(),
        body.matches(['}', ']']).count(),
        "unbalanced JSON: {body}"
    );

    let (status, body) = http_get(fixture.http.local_addr(), "/model");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "no model assessment yet\n");

    let (status, _) = http_get(fixture.http.local_addr(), "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    let (status, body) = http_get(fixture.http.local_addr(), "/");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("/metrics"));

    fixture.http.shutdown();
    fixture.server.shutdown();
}

#[test]
fn traces_endpoint_is_404_without_tracing() {
    let server = BrokerServer::start(BrokerConfig::default(), "127.0.0.1:0").expect("bind broker");
    let state = HttpState::new().observer(server.broker().observer()).registry(server.metrics());
    let http = HttpServer::start(state, "127.0.0.1:0").expect("bind http");
    let (status, _) = http_get(http.local_addr(), "/traces");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    http.shutdown();
    server.shutdown();
}
