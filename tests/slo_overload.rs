//! Overload lifecycle integration test for the SLO engine.
//!
//! A Table-I-calibrated M/D/1 workload (correlation-ID cost constants,
//! 100 filters) runs at the plan point `ρ = 0.5`, is forced to `ρ = 0.98`,
//! then dropped back. The `W99` objective — its limit derived from the
//! paper's own analysis via [`rjms::model::slo::AnalyticSlo`] — must:
//!
//! 1. stay `ok` through the healthy phase,
//! 2. fire within two fast windows of saturation,
//! 3. resolve after the load drops and the slow window drains,
//!
//! and the `/alerts` HTTP endpoint must return the firing record carrying
//! its evidence: the offending window's histogram and the analytic model's
//! prediction at the measured (overloaded) operating point.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rjms::desim::random::sample_exponential;
use rjms::http::{HttpServer, HttpState};
use rjms::metrics::{Histogram, MetricsRegistry};
use rjms::model::model::ServerModel;
use rjms::model::monitor::ModelMonitor;
use rjms::model::params::CostParams;
use rjms::model::slo::AnalyticSlo;
use rjms::obs::minijson::{self, Value};
use rjms::obs::{
    AlertEvent, AlertPolicy, AlertState, ForecastConfig, HistoryConfig, ObsConfig, ObsCore, SloSpec,
};
use rjms::queueing::replication::ReplicationModel;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const FAST: Duration = Duration::from_secs(5);
const SLOW: Duration = Duration::from_secs(15);

/// One second of M/D/1 traffic via the Lindley recursion: exponential
/// arrivals at `rate`, deterministic service `e_b` seconds. Waiting and
/// service samples land in the instruments; `w` carries the queue state
/// across calls.
fn drive_second(
    rng: &mut StdRng,
    rate: f64,
    e_b: f64,
    w: &mut f64,
    waiting: &Histogram,
    service: &Histogram,
) {
    let service_ns = (e_b * 1e9) as u64;
    for _ in 0..rate.round() as u64 {
        waiting.record((*w * 1e9) as u64);
        service.record(service_ns);
        let interarrival = sample_exponential(rng, rate);
        *w = (*w + e_b - interarrival).max(0.0);
    }
}

/// Minimal HTTP GET: returns `(status_line, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect http");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n")
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    (head.lines().next().unwrap_or("").to_owned(), body.to_owned())
}

#[test]
fn overload_drives_w99_through_the_alert_lifecycle() {
    let params = CostParams::CORRELATION_ID;
    let n_fltr = 100u32;
    let replication = ReplicationModel::deterministic(1.0);
    let model = ServerModel::new(params, n_fltr);
    let e_b = params.mean_service_time(n_fltr, 1.0);

    // The W99 limit comes from the paper's machinery: plan at rho = 0.5
    // with 2x headroom, then shrink the windows to keep the test fast.
    let slo = AnalyticSlo::derive(&model, replication, 0.5, 2.0).expect("stable plan");
    let w99_spec = SloSpec::from_analytic(&slo)
        .into_iter()
        .find(|s| s.name == "w99")
        .expect("derived spec set includes w99")
        .windows(FAST, SLOW);
    let config = ObsConfig {
        history: HistoryConfig::default(),
        slos: vec![w99_spec],
        policy: AlertPolicy {
            resolve_ratio: 0.9,
            resolve_after: Duration::from_secs(2),
            cooldown: Duration::from_secs(4),
        },
        forecast: ForecastConfig::default(),
    };
    let monitor = ModelMonitor::new(ServerModel::new(params, n_fltr), replication);
    let core = Arc::new(Mutex::new(ObsCore::new(config).with_monitor(monitor)));

    let registry = MetricsRegistry::new();
    let waiting = registry.histogram("broker.waiting_ns");
    let service = registry.histogram("broker.service_ns");
    let mut rng = StdRng::seed_from_u64(2006);
    let mut w = 0.0f64;
    let mut now = Duration::ZERO;
    let mut events: Vec<AlertEvent> = Vec::new();

    let healthy_rate = 0.5 / e_b;
    let overload_rate = 0.98 / e_b;
    assert!(healthy_rate >= 100.0, "workload too slow for 1 s ticks: {healthy_rate}/s");

    // Phase 1 — plan-point traffic: no transitions, objective ok.
    for _ in 0..10 {
        drive_second(&mut rng, healthy_rate, e_b, &mut w, &waiting, &service);
        now += Duration::from_secs(1);
        events.extend(core.lock().unwrap().tick(now, &registry.snapshot(), None));
    }
    assert!(events.is_empty(), "healthy phase must not alert: {events:?}");
    assert_eq!(core.lock().unwrap().status()[0].state, AlertState::Ok);

    // Phase 2 — saturation at rho = 0.98: the queue explodes past the
    // 2x-headroom limit and the objective must fire within two fast
    // windows of the onset.
    let saturation_start = now;
    for _ in 0..10 {
        drive_second(&mut rng, overload_rate, e_b, &mut w, &waiting, &service);
        now += Duration::from_secs(1);
        events.extend(core.lock().unwrap().tick(now, &registry.snapshot(), None));
    }
    let fired_at = events
        .iter()
        .find(|e| e.to == AlertState::Firing)
        .map(|e| e.at)
        .expect("W99 objective never fired under rho=0.98");
    assert!(
        fired_at <= saturation_start + 2 * FAST,
        "fired at {fired_at:?}, later than two fast windows after {saturation_start:?}"
    );

    // Phase 3 — load drops to the plan point (queue drains): once the slow
    // window flushes the incident and the quiet period passes, resolved.
    w = 0.0;
    let mut resolved = false;
    for _ in 0..25 {
        drive_second(&mut rng, healthy_rate, e_b, &mut w, &waiting, &service);
        now += Duration::from_secs(1);
        for event in core.lock().unwrap().tick(now, &registry.snapshot(), None) {
            resolved |= event.to == AlertState::Resolved;
            events.push(event);
        }
        if resolved {
            break;
        }
    }
    assert!(resolved, "alert never resolved after the load dropped: {events:?}");

    // The exposition layer returns the firing record with its evidence.
    let http =
        HttpServer::start(HttpState::new().obs(Arc::clone(&core)), "127.0.0.1:0").expect("bind");
    let (status, body) = http_get(http.local_addr(), "/alerts");
    assert!(status.contains(" 200 "), "unexpected /alerts status: {status}");
    let doc = minijson::parse(&body).expect("/alerts body parses");
    let events_json = doc.get("events").map(Value::items).unwrap_or_default();
    let firing = events_json
        .iter()
        .find(|e| e.get("to").and_then(Value::as_str) == Some("firing"))
        .expect("no firing record in /alerts");
    let evidence = firing.get("evidence").expect("firing record carries evidence");
    let count = evidence
        .get("window")
        .and_then(|w| w.get("count"))
        .and_then(Value::as_u64)
        .expect("evidence window histogram present");
    assert!(count > 0, "evidence histogram is empty");
    let q99 = evidence
        .get("window")
        .and_then(|w| w.get("q99_ns"))
        .and_then(Value::as_u64)
        .expect("evidence q99 present");
    assert!(
        q99 as f64 / 1e9 > slo.w99_limit,
        "offending window's q99 ({q99} ns) should exceed the limit ({:.6} s)",
        slo.w99_limit
    );
    let rho = evidence
        .get("prediction")
        .and_then(|p| p.get("utilization"))
        .and_then(Value::as_f64)
        .expect("model prediction attached to the firing record");
    // The alert fires within a tick or two of the onset, so the evidence
    // window still mixes plan-point seconds with overload seconds: the
    // measured utilization sits between 0.5 and 0.98, strictly above plan.
    assert!(rho > 0.55, "prediction should sit above the rho=0.5 plan point, got {rho}");
    http.shutdown();
}
