//! Per-topic workload observatory integration tests: the online Eq. 1
//! regressor and the shard-skew rebalance advisor against a real broker.
//!
//! Three promises:
//!
//! 1. **Regressor convergence** — on a two-population workload (two topics
//!    with different filter counts and varying realized replication) under
//!    burned Table-I-style costs, each topic's fitted `(t_fltr, t_tx)`
//!    lands within 10% of the configured constants, and the pooled global
//!    fit (where `n_fltr` varies across topics) does too.
//! 2. **Rebalance advisor** — with topics pinned so one shard carries
//!    most of the offered load, the observatory flags skew and the
//!    advised moves, when applied, bring the max/mean shard-load ratio
//!    under the 1.25 flag threshold.
//! 3. **Cardinality cap** — topics beyond `per_topic_cap` collapse into
//!    the `__other__` row and are counted in `overflowed_topics` (and in
//!    the snapshot's `topics_overflowed`).

use rjms::broker::{
    shard_of, Broker, BrokerConfig, CostModel, Filter, Message, TopicObsConfig,
    TopicObservatorySnapshot, OTHER_TOPIC,
};
use rjms::obs::topics::{analyze_skew, SkewConfig, TopicLoad};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Serializes the tests in this file: each spins a broker that burns
/// real CPU, and on small hosts two concurrent brokers add enough
/// timing noise to blur the regression the first test asserts on.
static SERIAL: Mutex<()> = Mutex::new(());

/// Polls the observatory until `done(snapshot)` holds (the scratch
/// buffers flush on dispatcher idle, so the table trails the counters by
/// a few milliseconds).
fn wait_observatory(
    broker: &Broker,
    done: impl Fn(&TopicObservatorySnapshot) -> bool,
) -> TopicObservatorySnapshot {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = broker.topic_observatory().expect("observatory enabled");
        if done(&snap) {
            return snap;
        }
        assert!(Instant::now() < deadline, "observatory never converged: {snap:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Promise 1: the per-topic regressor recovers the configured cost
/// constants from the live dispatch stream.
///
/// Topic `wide` carries 16 selector subscriptions, topic `narrow` 8, so
/// `n_fltr` is 16 and 8 respectively. Each subscription `i` selects
/// `lvl >= i` and messages cycle `lvl` through `1..=n`, so the realized
/// replication `R = lvl` *varies within each topic* — with constant
/// `n_fltr` that variation is exactly what makes `(t_fltr, t_tx)`
/// identifiable (the fixed-receive mode), and across the two topics
/// `n_fltr` varies too, making the pooled 3-parameter fit identifiable.
#[test]
fn regressor_converges_on_two_population_workload() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Costs are large enough that unburned dispatch machinery (worst in
    // debug builds: interpreted selector evaluation, scheduler jitter)
    // stays small against the burned signal the regressor must recover.
    const T_RCV: f64 = 200e-6;
    const T_FLTR: f64 = 200e-6;
    const T_TX: f64 = 300e-6;
    const MSGS: u64 = 400;

    let broker = Broker::start(
        BrokerConfig::builder()
            .cost_model(CostModel::new(T_RCV, T_FLTR, T_TX))
            .topic_obs(TopicObsConfig::default())
            .subscriber_queue_capacity(1 << 10)
            .build(),
    );
    // The fixed-receive fit recovers `t_fltr` as intercept / n_fltr, so
    // per-message timing jitter lands on it divided by n — larger filter
    // counts keep the estimate stable on slow single-core hosts.
    let populations: [(&str, u32); 2] = [("wide", 16), ("narrow", 8)];
    let mut subscribers = Vec::new();
    for (topic, filters) in populations {
        broker.create_topic(topic).unwrap();
        for i in 1..=filters {
            subscribers.push(
                broker
                    .subscription(topic)
                    .filter(Filter::selector(&format!("lvl >= {i}")).unwrap())
                    .open()
                    .unwrap(),
            );
        }
        let publisher = broker.publisher(topic).unwrap();
        for m in 0..MSGS {
            let lvl = (m % u64::from(filters)) as i64 + 1;
            publisher.publish(Message::builder().property("lvl", lvl).build()).unwrap();
        }
    }

    let snap = wait_observatory(&broker, |s| {
        s.topics.len() == 2 && s.topics.iter().all(|t| t.messages >= MSGS)
    });

    let anchor = snap.anchor.expect("cost model anchors the verdicts");
    assert!((anchor.t_fltr - T_FLTR).abs() < 1e-12);

    for (topic, filters) in populations {
        let row = snap.topics.iter().find(|t| t.name == topic).unwrap();
        assert_eq!(row.shard, shard_of(topic, 1));
        assert!(
            (row.mean_filters - f64::from(filters)).abs() < 1e-9,
            "{topic}: n_fltr {} != {filters}",
            row.mean_filters
        );
        // Mean replication over lvl cycling 1..=n is (n + 1) / 2.
        let expected_r = (f64::from(filters) + 1.0) / 2.0;
        assert!(
            (row.mean_replication - expected_r).abs() < 1e-9,
            "{topic}: E[R] {} != {expected_r}",
            row.mean_replication
        );
        let fitted = row.fitted.as_ref().unwrap_or_else(|| panic!("{topic}: no fit"));
        let err_fltr = (fitted.params.t_fltr - T_FLTR).abs() / T_FLTR;
        let err_tx = (fitted.params.t_tx - T_TX).abs() / T_TX;
        eprintln!(
            "{topic}: mode {} t_fltr {:.2}us ({:+.1}%) t_tx {:.2}us ({:+.1}%) r2 {:.4}",
            fitted.mode,
            fitted.params.t_fltr * 1e6,
            err_fltr * 1e2,
            fitted.params.t_tx * 1e6,
            err_tx * 1e2,
            fitted.r_squared,
        );
        assert!(err_fltr < 0.10, "{topic}: t_fltr off by {:.1}%", err_fltr * 1e2);
        assert!(err_tx < 0.10, "{topic}: t_tx off by {:.1}%", err_tx * 1e2);
        let verdict = row.verdict.as_ref().expect("anchor present");
        assert_eq!(verdict.kind(), "stable", "{topic}: {verdict:?}");
    }

    // The pooled fit sees n_fltr ∈ {8, 16}: the full design is identifiable.
    let global = snap.global_fitted.as_ref().expect("pooled fit");
    assert!((global.params.t_fltr - T_FLTR).abs() / T_FLTR < 0.10, "global t_fltr");
    assert!((global.params.t_tx - T_TX).abs() / T_TX < 0.10, "global t_tx");
    broker.shutdown();
}

/// Finds `count` distinct topic names hashing onto `shard` (FNV-1a
/// placement, same hash the dispatcher uses).
fn topics_on_shard(shard: usize, shards: usize, count: usize) -> Vec<String> {
    let mut names = Vec::new();
    for trial in 0.. {
        let name = format!("load-{trial}");
        if shard_of(&name, shards) == shard {
            names.push(name);
            if names.len() == count {
                return names;
            }
        }
    }
    unreachable!()
}

/// Promise 2: skew is flagged and the advised moves fix it.
///
/// Four shards; shard 0 carries eight equally hot topics (150 messages
/// each) while shards 1–3 carry one light 40-message topic each. Every
/// message burns the same configured service time, so offered load is
/// proportional to message count and shard 0 starts at ≈ 3.6× the mean —
/// far over the 1.25 flag. Equal-sized hot topics give the greedy
/// advisor clean packing: applying its moves to the observed table must
/// bring the realized ratio under 1.25, agreeing with the report's own
/// `post_ratio`.
#[test]
fn advisor_moves_rebalance_a_skewed_placement() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    const SHARDS: usize = 4;
    const HOT_TOPICS: usize = 8;
    const HOT_COUNT: u64 = 150;
    const COLD_COUNT: u64 = 40;

    let broker = Broker::start(
        BrokerConfig::builder()
            .shards(SHARDS)
            .cost_model(CostModel::new(100e-6, 50e-6, 100e-6))
            .topic_obs(TopicObsConfig::default())
            .subscriber_queue_capacity(1 << 10)
            .build(),
    );
    let mut plan: Vec<(String, u64)> =
        topics_on_shard(0, SHARDS, HOT_TOPICS).into_iter().map(|t| (t, HOT_COUNT)).collect();
    for shard in 1..SHARDS {
        plan.push((topics_on_shard(shard, SHARDS, 1).remove(0), COLD_COUNT));
    }
    let mut subscribers = Vec::new();
    for (topic, count) in &plan {
        broker.create_topic(topic).unwrap();
        subscribers.push(broker.subscription(topic).open().unwrap());
        let publisher = broker.publisher(topic).unwrap();
        for _ in 0..*count {
            publisher.publish(Message::builder().build()).unwrap();
        }
    }

    let total: u64 = plan.iter().map(|(_, c)| c).sum();
    let snap =
        wait_observatory(&broker, |s| s.topics.iter().map(|t| t.messages).sum::<u64>() >= total);
    assert_eq!(snap.shards, SHARDS);

    let loads: Vec<TopicLoad> = snap
        .topics
        .iter()
        .map(|t| TopicLoad {
            name: t.name.clone(),
            shard: t.shard,
            arrival_rate: t.arrival_rate,
            mean_service_time: t.mean_service_time,
        })
        .collect();
    let config = SkewConfig {
        shards: SHARDS,
        flag_ratio: snap.config.flag_ratio,
        target_ratio: snap.config.target_ratio,
    };
    let report = analyze_skew(&loads, &config);
    eprintln!(
        "skew: ratio {:.2} -> post {:.2} via {} moves",
        report.max_mean_ratio,
        report.post_ratio,
        report.moves.len()
    );
    assert!(
        report.skewed,
        "shard 0 at ~3.6x mean must be flagged, got {:.2}",
        report.max_mean_ratio
    );
    assert!(!report.moves.is_empty(), "a fixable skew must produce moves");

    // Apply the advice and re-analyze: the realized ratio must drop under
    // the flag threshold and match the report's prediction.
    let mut applied = loads.clone();
    for m in &report.moves {
        let t = applied.iter_mut().find(|t| t.name == m.topic).unwrap();
        assert_eq!(t.shard, m.from, "move lists the current shard");
        t.shard = m.to;
    }
    let after = analyze_skew(&applied, &config);
    assert!(
        after.max_mean_ratio < 1.25,
        "applied moves must clear the flag threshold, got {:.3}",
        after.max_mean_ratio
    );
    assert!(after.max_mean_ratio < report.max_mean_ratio);
    assert!((after.max_mean_ratio - report.post_ratio).abs() < 1e-9);
    broker.shutdown();
}

/// Promise 3: the cardinality cap bounds the table; spill lands in
/// `__other__` and is counted in both the observatory snapshot and the
/// broker snapshot's `topics_overflowed`.
#[test]
fn per_topic_cap_overflows_into_other() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let broker = Broker::start(
        BrokerConfig::builder().topic_obs(TopicObsConfig::default().per_topic_cap(2)).build(),
    );
    let mut subscribers = Vec::new();
    for i in 0..4 {
        let topic = format!("t{i}");
        broker.create_topic(&topic).unwrap();
        subscribers.push(broker.subscription(&topic).open().unwrap());
        let publisher = broker.publisher(&topic).unwrap();
        for _ in 0..8 {
            publisher.publish(Message::builder().build()).unwrap();
        }
    }

    let snap =
        wait_observatory(&broker, |s| s.topics.iter().map(|t| t.messages).sum::<u64>() >= 32);
    assert!(snap.overflowed_topics >= 2, "two of four topics must spill, got {snap:?}");
    let other = snap.topics.iter().find(|t| t.name == OTHER_TOPIC).expect("spill bucket");
    assert_eq!(other.messages, 16, "the two spilled topics' messages pool in __other__");
    let named = snap.topics.iter().filter(|t| t.name != OTHER_TOPIC).count();
    assert_eq!(named, 2, "cap bounds the named rows");
    assert_eq!(broker.snapshot().topics_overflowed, snap.overflowed_topics);
    broker.shutdown();
}
