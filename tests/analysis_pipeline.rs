//! Integration of the analytic pipeline across crates: scenario →
//! calibration → waiting time → distributed architectures, with the
//! simulator as referee.

use rjms::desim::mg1sim::{simulate_lindley, Mg1SimConfig};
use rjms::desim::random::ReplicationService;
use rjms::desim::testbed::{run_measurement, TestbedConfig};
use rjms::model::architecture::DistributedScenario;
use rjms::model::params::{CostParams, FilterType};
use rjms::model::scenario::ApplicationScenario;
use rjms::queueing::replication::ReplicationModel;

/// A scenario's waiting-time report is consistent with a direct M/G/1
/// simulation of the same workload.
#[test]
fn scenario_report_matches_simulation() {
    let scenario = ApplicationScenario::builder(FilterType::CorrelationId)
        .subscribers(100)
        .filters_per_subscriber(2)
        .match_probability(0.05)
        .offered_load(500.0)
        .build();
    assert!(scenario.is_feasible());
    let report = scenario.waiting_time_at_offered_load().unwrap();

    let service = ReplicationService {
        deterministic: scenario.params().deterministic_part(scenario.total_filters()),
        t_tx: scenario.params().t_tx,
        replication: scenario.replication_model(),
    };
    let sim = simulate_lindley(
        &Mg1SimConfig { arrival_rate: 500.0, samples: 200_000, warmup: 20_000, seed: 5 },
        &service,
    );
    let rel =
        (sim.waiting.mean() - report.mean_waiting_time).abs() / report.mean_waiting_time.max(1e-12);
    assert!(
        rel < 0.1,
        "scenario E[W] {} vs simulated {}",
        report.mean_waiting_time,
        sim.waiting.mean()
    );
}

/// The testbed simulator, the scenario capacity formula and the raw model
/// agree on where saturation sits.
#[test]
fn capacity_formula_matches_saturated_testbed() {
    let params = CostParams::APPLICATION_PROPERTY;
    let scenario = ApplicationScenario::builder(FilterType::ApplicationProperty)
        .subscribers(50)
        .filters_per_subscriber(1)
        .match_probability(0.1)
        .build();
    // The saturated testbed throughput is the rho = 1 capacity.
    let cfg = TestbedConfig::quick(params.t_rcv, params.t_fltr, params.t_tx);
    let m = run_measurement(&cfg, scenario.total_filters(), &scenario.replication_model());
    let cap_full = scenario.capacity(1.0);
    let rel = (m.received_per_sec - cap_full).abs() / cap_full;
    assert!(rel < 0.03, "testbed {} vs capacity {}", m.received_per_sec, cap_full);
    // And the 90% budget is exactly 0.9 of it.
    assert!((scenario.capacity(0.9) - 0.9 * cap_full).abs() / cap_full < 1e-12);
}

/// PSR/SSR capacities are consistent with single-server scenario capacity:
/// an SSR broker *is* a single-server scenario with one subscriber's
/// filters.
#[test]
fn ssr_capacity_equals_single_server_scenario() {
    let d = DistributedScenario {
        params: CostParams::CORRELATION_ID,
        publishers: 7,
        subscribers: 300,
        filters_per_subscriber: 10,
        mean_replication: 1.0,
        rho: 0.9,
    };
    // Single-server with 10 filters and E[R] = 1:
    let e_b = CostParams::CORRELATION_ID.mean_service_time(10, 1.0);
    assert!((d.ssr_capacity() - 0.9 / e_b).abs() < 1e-9);

    // PSR with one publisher and one subscriber's worth of filters per
    // subscriber reduces to the same service time scaled by m filters.
    let e_b_psr = CostParams::CORRELATION_ID.mean_service_time(3000, 1.0);
    assert!((d.psr_per_server_capacity() - 0.9 / e_b_psr).abs() < 1e-9);
}

/// The deterministic, Bernoulli and binomial replication models with equal
/// means produce ordered waiting times (more variance → longer waits), and
/// the scenario glue preserves that ordering.
#[test]
fn replication_variability_orders_waiting_times() {
    let params = CostParams::CORRELATION_ID;
    let n_fltr = 50u32;
    let e_r = 5.0;
    let rho = 0.9;

    let models = [
        ReplicationModel::deterministic(e_r),
        ReplicationModel::binomial(n_fltr as f64, e_r / n_fltr as f64),
        ReplicationModel::scaled_bernoulli(n_fltr as f64, e_r / n_fltr as f64),
    ];
    let mut waits = Vec::new();
    for m in models {
        let service = rjms::queueing::service::ServiceTime::new(
            params.deterministic_part(n_fltr),
            params.t_tx,
            m,
        );
        let q = rjms::queueing::mg1::Mg1::with_utilization(rho, service.moments()).unwrap();
        waits.push(q.mean_waiting_time());
    }
    assert!(waits[0] < waits[1], "binomial must wait longer than deterministic");
    assert!(waits[1] < waits[2], "Bernoulli must wait longer than binomial");
    // All three share the same mean service time, hence the same capacity.
    for m in [
        ReplicationModel::deterministic(e_r),
        ReplicationModel::binomial(n_fltr as f64, e_r / n_fltr as f64),
    ] {
        assert!(
            (rjms::queueing::service::ServiceTime::new(
                params.deterministic_part(n_fltr),
                params.t_tx,
                m
            )
            .mean()
                - params.mean_service_time(n_fltr, e_r))
            .abs()
                < 1e-15
        );
    }
}
