//! Fig. 15 validation: the closed-form PSR/SSR capacities (Eqs. 21–22)
//! against multi-broker discrete-event simulation.

use rjms::desim::distributed::DistributedSimScenario;
use rjms::model::architecture::DistributedScenario;
use rjms::model::params::CostParams;

fn pair(n: u32, m: u32) -> (DistributedScenario, DistributedSimScenario) {
    let params = CostParams::CORRELATION_ID;
    (
        DistributedScenario {
            params,
            publishers: n,
            subscribers: m,
            filters_per_subscriber: 10,
            mean_replication: 1.0,
            rho: 0.9,
        },
        DistributedSimScenario {
            t_rcv: params.t_rcv,
            t_fltr: params.t_fltr,
            t_tx: params.t_tx,
            publishers: n,
            subscribers: m,
            filters_per_subscriber: 10,
            mean_replication: 1.0,
        },
    )
}

/// Driving a PSR deployment at its Eq. 21 capacity loads each broker to
/// exactly the utilization budget; 10% beyond would be unstable.
#[test]
fn psr_capacity_formula_validated_by_simulation() {
    for (n, m) in [(10u32, 100u32), (100, 1_000)] {
        let (model, sim) = pair(n, m);
        let capacity = model.psr_capacity();
        let result = sim.simulate_psr_broker(capacity, 120_000, 42);
        assert!(
            (result.measured_utilization() - 0.9).abs() < 0.03,
            "n={n} m={m}: measured rho {}",
            result.measured_utilization()
        );
        // The per-broker service time in the simulator equals the model's
        // Eq. 21 denominator.
        let expected_e_b = 0.9 * n as f64 / capacity;
        assert!((result.mean_service_time - expected_e_b).abs() / expected_e_b < 1e-9);
    }
}

/// Same for SSR (Eq. 22): the bottleneck subscriber-side broker sits at the
/// budgeted utilization when the system runs at the formula capacity.
#[test]
fn ssr_capacity_formula_validated_by_simulation() {
    for (n, m) in [(10u32, 100u32), (1_000, 50)] {
        let (model, sim) = pair(n, m);
        let capacity = model.ssr_capacity();
        let result = sim.simulate_ssr_broker(capacity, 120_000, 43);
        assert!(
            (result.measured_utilization() - 0.9).abs() < 0.03,
            "n={n} m={m}: measured rho {}",
            result.measured_utilization()
        );
    }
}

/// The crossover predicted by the corrected Eq. 23 shows up in simulation:
/// below it the SSR bottleneck broker is less loaded than PSR's at equal
/// system rate; above it the orders flip.
#[test]
fn crossover_visible_in_simulated_utilizations() {
    let m = 100u32;
    let (model_at_1, _) = pair(1, m);
    let crossover = model_at_1.crossover_publishers(); // ≈ 79.9 for m = 100

    for (n, psr_should_win) in [((crossover * 0.5) as u32, false), ((crossover * 2.0) as u32, true)]
    {
        let (model, sim) = pair(n.max(1), m);
        // Drive both architectures at the *same* system rate: 80% of the
        // weaker one's capacity, so both are stable.
        let rate = 0.8 * model.psr_capacity().min(model.ssr_capacity());
        let psr = sim.simulate_psr_broker(rate, 60_000, 7);
        let ssr = sim.simulate_ssr_broker(rate, 60_000, 8);
        let psr_less_loaded = psr.measured_utilization() < ssr.measured_utilization();
        assert_eq!(
            psr_less_loaded,
            psr_should_win,
            "n={n}, m={m}: psr rho {} vs ssr rho {}",
            psr.measured_utilization(),
            ssr.measured_utilization()
        );
    }
}
