//! Cross-crate integration tests: the real broker, the selector language,
//! the cost model and the analytic model working together.

use rjms::broker::{Broker, BrokerConfig, CostModel, Filter, Message, ThroughputProbe};
use rjms::model::calibrate::{fit_cost_params_fixed_rcv, Observation};
use rjms::model::model::ServerModel;
use rjms::model::params::CostParams;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The full pub/sub path with every filter type at once.
#[test]
fn mixed_filter_types_route_correctly() {
    let broker = Broker::start(BrokerConfig::default());
    broker.create_topic("events").unwrap();

    let by_selector = broker
        .subscription("events")
        .filter(Filter::selector("kind = 'alert' AND level >= 3").unwrap())
        .open()
        .unwrap();
    let by_corr = broker
        .subscription("events")
        .filter(Filter::correlation_id("[100;199]").unwrap())
        .open()
        .unwrap();
    let all = broker.subscription("events").open().unwrap();

    let publisher = broker.publisher("events").unwrap();
    // Matches selector only.
    publisher
        .publish(
            Message::builder()
                .correlation_id("#999")
                .property("kind", "alert")
                .property("level", 5i64)
                .build(),
        )
        .unwrap();
    // Matches correlation range only.
    publisher
        .publish(Message::builder().correlation_id("#150").property("kind", "info").build())
        .unwrap();
    // Matches neither.
    publisher.publish(Message::builder().build()).unwrap();

    let m = by_selector.receive_timeout(Duration::from_secs(2)).unwrap();
    assert_eq!(m.correlation_id(), Some("#999"));
    assert!(by_selector.receive_timeout(Duration::from_millis(50)).is_none());

    let m = by_corr.receive_timeout(Duration::from_secs(2)).unwrap();
    assert_eq!(m.correlation_id(), Some("#150"));
    assert!(by_corr.receive_timeout(Duration::from_millis(50)).is_none());

    for _ in 0..3 {
        assert!(all.receive_timeout(Duration::from_secs(2)).is_some());
    }

    broker.shutdown();
}

/// No message is lost or duplicated on the broker under concurrent load
/// (the persistent non-durable guarantee within a session).
#[test]
fn no_loss_no_duplication_under_load() {
    let broker = Broker::start(BrokerConfig::builder().subscriber_queue_capacity(1 << 15).build());
    broker.create_topic("t").unwrap();
    let sub = broker.subscription("t").open().unwrap();

    let publishers: Vec<_> = (0..4)
        .map(|p| {
            let publisher = broker.publisher("t").unwrap();
            std::thread::spawn(move || {
                for i in 0..500i64 {
                    publisher
                        .publish(
                            Message::builder()
                                .property("publisher", p as i64)
                                .property("seq", i)
                                .build(),
                        )
                        .unwrap();
                }
            })
        })
        .collect();
    for h in publishers {
        h.join().unwrap();
    }

    let mut seen = std::collections::HashSet::new();
    for _ in 0..2000 {
        let m = sub.receive_timeout(Duration::from_secs(5)).expect("all delivered");
        let p = match m.property("publisher") {
            Some(rjms::selector::Value::Int(v)) => *v,
            other => panic!("bad publisher property {other:?}"),
        };
        let s = match m.property("seq") {
            Some(rjms::selector::Value::Int(v)) => *v,
            other => panic!("bad seq property {other:?}"),
        };
        assert!(seen.insert((p, s)), "duplicate delivery of ({p}, {s})");
    }
    assert!(sub.receive_timeout(Duration::from_millis(100)).is_none(), "extra message");
    let messages = broker.snapshot().messages;
    assert_eq!(messages.received, 2000);
    assert_eq!(messages.dispatched, 2000);
    broker.shutdown();
}

/// Saturated wall-clock throughput of the cost-model broker follows Eq. 1
/// after fitting the broker's own constants (the paper's methodology).
#[test]
fn saturated_broker_follows_linear_cost_model() {
    fn measure(n_fltr: u32, replication: u32) -> f64 {
        // Inflated costs so native overhead is negligible and windows stay
        // short.
        let cost = CostModel::new(5e-6, 2e-5, 5e-5);
        let broker = Broker::start(
            BrokerConfig::builder()
                .publish_queue_capacity(32)
                .subscriber_queue_capacity(1 << 14)
                .cost_model(cost)
                .build(),
        );
        broker.create_topic("bench").unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::new();
        for i in 0..n_fltr {
            let pattern = if i < replication { "#0".to_owned() } else { format!("#{}", i + 1) };
            let sub = broker
                .subscription("bench")
                .filter(Filter::correlation_id(&pattern).unwrap())
                .open()
                .unwrap();
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = sub.receive_timeout(Duration::from_millis(10));
                }
            }));
        }
        for _ in 0..3 {
            let publisher = broker.publisher("bench").unwrap();
            let stop = Arc::clone(&stop);
            workers.push(std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if publisher.publish(Message::builder().correlation_id("#0").build()).is_err() {
                        break;
                    }
                }
            }));
        }
        std::thread::sleep(Duration::from_millis(200));
        let probe = ThroughputProbe::begin(&broker);
        std::thread::sleep(Duration::from_millis(800));
        let throughput = probe.end(&broker);
        stop.store(true, Ordering::Relaxed);
        for w in workers {
            let _ = w.join();
        }
        broker.shutdown();
        throughput.received_per_sec
    }

    let grid = [(4u32, 1u32), (16, 1), (48, 1), (8, 4), (48, 8), (48, 16)];
    let observations: Vec<Observation> = grid
        .iter()
        .map(|&(n, r)| Observation {
            n_fltr: n,
            mean_replication: r as f64,
            received_per_sec: measure(n, r),
        })
        .collect();

    let cal = fit_cost_params_fixed_rcv(&observations, 5e-6).expect("fit succeeds");
    // Fitted slopes include native dispatch work; they must sit at or above
    // the configured spin costs. Upper bounds and fit-quality thresholds are
    // deliberately loose: this is a wall-clock measurement and the workspace
    // test suite runs it under heavy CPU contention (the release-mode
    // `broker_saturation` example demonstrates the tight fit: R² ≈ 0.998,
    // per-point error ≤ ~10%).
    assert!(cal.params.t_fltr >= 2e-5 * 0.9, "t_fltr = {}", cal.params.t_fltr);
    assert!(cal.params.t_fltr < 2e-5 * 6.0, "t_fltr = {}", cal.params.t_fltr);
    assert!(cal.params.t_tx >= 5e-5 * 0.9, "t_tx = {}", cal.params.t_tx);
    assert!(cal.params.t_tx < 5e-5 * 6.0, "t_tx = {}", cal.params.t_tx);
    assert!(cal.r_squared > 0.85, "R² = {}", cal.r_squared);

    for (obs, &(n, r)) in observations.iter().zip(&grid) {
        let predicted = ServerModel::new(cal.params, n).predict_throughput(r as f64);
        let rel = (predicted.received_per_sec - obs.received_per_sec).abs() / obs.received_per_sec;
        assert!(rel < 0.5, "n={n} r={r}: rel err {rel}");
    }

    // Sanity: spin cost constants differ from Table I only by native work.
    let _ = CostParams::CORRELATION_ID;
}
