//! Overload lifecycle integration test for the flow-control subsystem.
//!
//! A Table-I-calibrated M/D/1 workload (correlation-ID cost constants,
//! 100 filters) is offered to a [`rjms::flow::FlowGate`] in three phases —
//! half the gate's own budget, 1.5x the budget, then half again — on a
//! deterministic clock. The gate's promise:
//!
//! 1. the `W99` of the traffic it *admits* stays inside the configured
//!    objective through the whole wave,
//! 2. shed counters grow during the overload phase and only then,
//! 3. and a control run with the gate removed blows straight past the
//!    objective, so the protection is the gate and not the workload.
//!
//! A second test checks wire compatibility: a pre-flow client (no Hello,
//! original opcodes only) round-trips unchanged against a flow-enabled
//! server — same response opcodes, no credit frames.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rjms::desim::random::sample_exponential;
use rjms::flow::{FlowConfig, FlowGate};
use rjms::model::params::CostParams;

/// Offered-load phases, seconds of simulated time each.
const PHASE_SECS: f64 = 5.0;

/// Simulation state threaded through the phases: the arrival clock, the
/// Lindley waiting-time recursion over *admitted* arrivals, and the
/// collected waiting samples.
struct Sim {
    rng: StdRng,
    now_s: f64,
    prev_admit: Option<(f64, f64)>,
    waits: Vec<f64>,
    arrivals: u64,
}

impl Sim {
    fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            now_s: 0.0,
            prev_admit: None,
            waits: Vec::new(),
            arrivals: 0,
        }
    }

    /// Offers Poisson traffic at `rate` for `seconds`; every admitted
    /// arrival passes through an M/D/1 Lindley recursion with service
    /// `e_b` and contributes a waiting sample. Returns (offered, granted).
    fn offer(&mut self, gate: Option<&FlowGate>, rate: f64, seconds: f64, e_b: f64) -> (u64, u64) {
        let end = self.now_s + seconds;
        let (mut offered, mut granted) = (0u64, 0u64);
        loop {
            self.now_s += sample_exponential(&mut self.rng, rate);
            if self.now_s >= end {
                self.now_s = end;
                return (offered, granted);
            }
            offered += 1;
            self.arrivals += 1;
            let producer = self.arrivals % 4;
            let priority = (self.arrivals % 10) as u8;
            let admitted = match gate {
                None => true,
                Some(g) => {
                    g.admit_at(producer, priority, false, (self.now_s * 1e9) as u64).is_granted()
                }
            };
            if admitted {
                granted += 1;
                let w = match self.prev_admit {
                    Some((prev_t, prev_w)) => (prev_w + e_b - (self.now_s - prev_t)).max(0.0),
                    None => 0.0,
                };
                self.waits.push(w);
                self.prev_admit = Some((self.now_s, w));
            }
        }
    }

    /// The empirical 99th-percentile waiting time, seconds.
    fn w99(&self) -> f64 {
        assert!(!self.waits.is_empty(), "no admitted traffic");
        let mut sorted = self.waits.clone();
        sorted.sort_by(f64::total_cmp);
        let index = ((sorted.len() as f64) * 0.99).ceil() as usize - 1;
        sorted[index.min(sorted.len() - 1)]
    }
}

/// Total messages shed across all classes.
fn shed_total(gate: &FlowGate) -> u64 {
    gate.snapshot().per_class.iter().map(|c| c.shed).sum()
}

#[test]
fn gate_keeps_admitted_w99_inside_objective_through_an_overload_wave() {
    // Table I workload: correlation-ID constants, 100 filters, E[R] = 1 —
    // the FlowConfig defaults. Extra headroom keeps the admitted-traffic
    // target comfortably inside the asserted objective.
    let config = FlowConfig::default().w99_objective(0.010).headroom(1.5).producer_share(1.0);
    let objective = config.w99_objective;
    let gate = FlowGate::new(config);
    let lambda_max = gate.lambda_max();
    assert!(lambda_max > 100.0, "budget too small for a meaningful wave: {lambda_max}/s");
    let e_b = CostParams::CORRELATION_ID.mean_service_time(100, 1.0);

    let mut sim = Sim::new(2006);

    // Phase 1 — half the budget: everything is admitted, nothing is shed.
    let (offered, granted) = sim.offer(Some(&gate), 0.5 * lambda_max, PHASE_SECS, e_b);
    assert_eq!(granted, offered, "under-budget traffic must be admitted in full");
    assert_eq!(shed_total(&gate), 0, "under-budget traffic must not be shed");

    // Phase 2 — 1.5x the budget: the bucket drains, low classes are shed,
    // and the admitted stream is clipped to roughly lambda_max.
    let (offered, granted) = sim.offer(Some(&gate), 1.5 * lambda_max, PHASE_SECS, e_b);
    let shed_after_overload = shed_total(&gate);
    assert!(shed_after_overload > 0, "overload must shed");
    assert!(granted > 0, "overload must not starve admitted traffic");
    assert!(
        (granted as f64) < 1.2 * lambda_max * PHASE_SECS,
        "admitted {granted} of {offered} exceeds the budget {:.0}",
        lambda_max * PHASE_SECS
    );

    // Quiet gap — the bucket refills at lambda_max, so a short idle
    // stretch restores every class's reserve band.
    sim.now_s += 0.5;

    // Phase 3 — back to half the budget: shedding stops.
    let (offered, granted) = sim.offer(Some(&gate), 0.5 * lambda_max, PHASE_SECS, e_b);
    assert_eq!(granted, offered, "recovered traffic must be admitted in full");
    assert_eq!(
        shed_total(&gate),
        shed_after_overload,
        "shed counters must not grow after the load drops"
    );

    // The headline promise: the traffic the gate admitted — across all
    // three phases, overload included — met the waiting-time objective.
    let w99 = sim.w99();
    assert!(
        w99 <= objective,
        "admitted-traffic W99 {:.3} ms exceeds the {:.1} ms objective",
        w99 * 1e3,
        objective * 1e3
    );

    // Control run: the same wave with the gate removed. The overload phase
    // pushes the queue far past the objective — the protection above came
    // from admission control, not from a gentle workload.
    let mut control = Sim::new(2006);
    control.offer(None, 0.5 * lambda_max, PHASE_SECS, e_b);
    control.offer(None, 1.5 * lambda_max, PHASE_SECS, e_b);
    control.offer(None, 0.5 * lambda_max, PHASE_SECS, e_b);
    let control_w99 = control.w99();
    assert!(
        control_w99 > 10.0 * objective,
        "ungated control should blow past the objective, got W99 {:.3} ms",
        control_w99 * 1e3
    );
}

mod wire_compat {
    //! A flow-enabled server must leave pre-flow clients byte-compatible:
    //! original opcodes in, original opcodes out, no credit frames.

    use rjms::broker::{FlowConfig, Message};
    use rjms::net::server::BrokerServer;
    use rjms::net::wire::{
        decode_response, encode_request, read_frame, Request, Response, WireFilter, WireMessage,
    };
    use std::io::Write;
    use std::net::TcpStream;

    #[test]
    fn pre_flow_client_round_trips_unchanged_against_a_flow_enabled_server() {
        let config = rjms::broker::BrokerConfig::builder().flow(FlowConfig::default()).build();
        let server = BrokerServer::start(config, "127.0.0.1:0").expect("bind");
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
        stream.set_nodelay(true).ok();

        // Pre-flow frames only: no Hello, message without trace context.
        stream
            .write_all(&encode_request(&Request::CreateTopic { request_id: 1, topic: "t".into() }))
            .expect("send create");
        stream
            .write_all(&encode_request(&Request::Subscribe {
                request_id: 2,
                subscription_id: 1,
                topic: "t".into(),
                filter: WireFilter::None,
            }))
            .expect("send subscribe");
        let message = Message::builder().property("k", 7i64).build();
        let wire = WireMessage::from_message(&message).without_trace();
        stream
            .write_all(&encode_request(&Request::Publish {
                request_id: 3,
                topic: "t".into(),
                message: wire,
            }))
            .expect("send publish");

        // Every frame that comes back is from the original opcode set:
        // three Oks and one untraced delivery. In particular no
        // CreditGrant (0x86) or PublishDenied (0x87) frame may appear on
        // a connection that never negotiated FEATURE_FLOW.
        let mut oks = 0;
        let delivery = loop {
            let body = read_frame(&mut stream).expect("read frame").expect("connection open");
            match body[0] {
                0x81 => oks += 1,
                0x83 => break body,
                other => panic!("unexpected response opcode {other:#x} for a pre-flow client"),
            }
        };
        assert_eq!(oks, 3, "all three pre-flow requests answered with plain Ok");
        match decode_response(delivery).expect("delivery decodes") {
            Response::Delivery { subscription_id, message } => {
                assert_eq!(subscription_id, 1);
                assert_eq!(message.into_message().property("k"), Some(&7i64.into()));
            }
            other => panic!("expected a pre-flow delivery, got {other:?}"),
        }
        server.shutdown();
    }
}
