//! Monte-Carlo validation of the analytic moments and distributions.
//!
//! These tests sample the replication-grade models and check the exact
//! moment formulas (which fix several typos in the printed paper — see
//! DESIGN.md §6) against empirical estimates, and validate the Gamma CDF
//! against empirical Gamma samples.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rjms_queueing::moments::Moments3;
use rjms_queueing::replication::ReplicationModel;
use rjms_queueing::service::ServiceTime;
use rjms_queueing::Gamma;

/// Draws a sample from an integer-parameter replication model via its PMF.
fn sample_replication(model: &ReplicationModel, rng: &mut impl Rng) -> u32 {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for k in 0..=model.max_grade() {
        acc += model.pmf(k);
        if u <= acc {
            return k;
        }
    }
    model.max_grade()
}

fn empirical_moments(model: &ReplicationModel, n: usize, seed: u64) -> Moments3 {
    let mut rng = StdRng::seed_from_u64(seed);
    Moments3::from_samples((0..n).map(|_| sample_replication(model, &mut rng) as f64))
}

#[track_caller]
fn assert_rel_close(got: f64, expect: f64, tol: f64) {
    let denom = expect.abs().max(1e-12);
    assert!(((got - expect) / denom).abs() < tol, "got {got}, expected {expect} (rel tol {tol})");
}

#[test]
fn scaled_bernoulli_moments_match_montecarlo() {
    let model = ReplicationModel::scaled_bernoulli(20.0, 0.3);
    let emp = empirical_moments(&model, 400_000, 7);
    let ana = model.moments();
    assert_rel_close(emp.m1, ana.m1, 0.01);
    assert_rel_close(emp.m2, ana.m2, 0.01);
    assert_rel_close(emp.m3, ana.m3, 0.02);
}

#[test]
fn binomial_moments_match_montecarlo() {
    let model = ReplicationModel::binomial(40.0, 0.13);
    let emp = empirical_moments(&model, 400_000, 11);
    let ana = model.moments();
    assert_rel_close(emp.m1, ana.m1, 0.005);
    assert_rel_close(emp.m2, ana.m2, 0.01);
    assert_rel_close(emp.m3, ana.m3, 0.02);
}

#[test]
fn deterministic_moments_match_montecarlo() {
    let model = ReplicationModel::deterministic(5.0);
    let emp = empirical_moments(&model, 1_000, 13);
    let ana = model.moments();
    assert_rel_close(emp.m1, ana.m1, 1e-12);
    assert_rel_close(emp.m3, ana.m3, 1e-12);
}

#[test]
fn service_time_moments_match_montecarlo() {
    // Sample B = D + R·t_tx and compare all three raw moments (Eqs. 7-9).
    let model = ReplicationModel::binomial(25.0, 0.4);
    let b = ServiceTime::new(1e-4, 1.7e-5, model);
    let mut rng = StdRng::seed_from_u64(17);
    let emp = Moments3::from_samples(
        (0..300_000).map(|_| b.for_grade(sample_replication(&model, &mut rng))),
    );
    let ana = b.moments();
    assert_rel_close(emp.m1, ana.m1, 0.005);
    assert_rel_close(emp.m2, ana.m2, 0.01);
    assert_rel_close(emp.m3, ana.m3, 0.02);
}

/// Marsaglia–Tsang Gamma sampler (shape >= 1) for CDF validation.
fn sample_gamma(shape: f64, scale: f64, rng: &mut impl Rng) -> f64 {
    assert!(shape >= 1.0);
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Box-Muller normal.
        let (u1, u2): (f64, f64) = (rng.gen::<f64>().max(1e-300), rng.gen());
        let x = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v * scale;
        }
    }
}

#[test]
fn gamma_cdf_matches_empirical_distribution() {
    let g = Gamma::new(2.5, 1.3);
    let mut rng = StdRng::seed_from_u64(23);
    let n = 200_000;
    let samples: Vec<f64> = (0..n).map(|_| sample_gamma(2.5, 1.3, &mut rng)).collect();
    for &t in &[0.5, 1.0, 2.0, 4.0, 8.0] {
        let emp = samples.iter().filter(|&&x| x <= t).count() as f64 / n as f64;
        assert!((emp - g.cdf(t)).abs() < 0.005, "t={t}: empirical {emp} vs analytic {}", g.cdf(t));
    }
}

#[test]
fn exponential_arrivals_sanity() {
    // Cross-check rand's Exp-free sampling used elsewhere: inverse CDF.
    let rate = 3.0;
    let mut rng = StdRng::seed_from_u64(29);
    let n = 200_000;
    let mean = (0..n).map(|_| -(1.0 - rng.gen::<f64>()).ln() / rate).sum::<f64>() / n as f64;
    assert_rel_close(mean, 1.0 / rate, 0.01);
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any valid (n, p) binomial model has internally consistent moments:
        /// nonnegative variance, E[R³] >= E[R²] >= E[R] ordering scaled by
        /// support, and moments bounded by the maximum grade.
        #[test]
        fn binomial_moments_consistent(n in 1u32..200, p in 0.0f64..=1.0) {
            let m = ReplicationModel::binomial(n as f64, p).moments();
            prop_assert!(m.variance() >= -1e-9);
            prop_assert!(m.m1 <= n as f64 + 1e-9);
            prop_assert!(m.m2 <= (n as f64).powi(2) + 1e-6);
            prop_assert!(m.m3 <= (n as f64).powi(3) * (1.0 + 1e-9));
        }

        /// PMF of the binomial sums to 1 and matches the analytic mean.
        #[test]
        fn binomial_pmf_normalized(n in 1u32..120, p in 0.0f64..=1.0) {
            let model = ReplicationModel::binomial(n as f64, p);
            let total: f64 = (0..=n).map(|k| model.pmf(k)).sum();
            prop_assert!((total - 1.0).abs() < 1e-9);
            let mean: f64 = (0..=n).map(|k| k as f64 * model.pmf(k)).sum();
            prop_assert!((mean - model.moments().m1).abs() < 1e-7);
        }

        /// Moment matching the scaled Bernoulli family round-trips.
        #[test]
        fn bernoulli_moment_match_roundtrip(n in 1.0f64..500.0, p in 0.01f64..1.0) {
            let m = ReplicationModel::scaled_bernoulli(n, p).moments();
            let rec = ReplicationModel::scaled_bernoulli_from_moments(m.m1, m.m2).unwrap();
            let mr = rec.moments();
            prop_assert!((mr.m1 - m.m1).abs() < 1e-6 * m.m1.max(1.0));
            prop_assert!((mr.m2 - m.m2).abs() < 1e-6 * m.m2.max(1.0));
            prop_assert!((mr.m3 - m.m3).abs() < 1e-5 * m.m3.max(1.0));
        }

        /// The service-time cvar is scale-free in t_tx·R and bounded by the
        /// replication cvar (adding a constant only reduces variability).
        #[test]
        fn service_cvar_bounded_by_replication_cvar(
            d in 0.0f64..1e-3,
            t_tx in 1e-7f64..1e-4,
            n in 1u32..100,
            p in 0.01f64..1.0,
        ) {
            let model = ReplicationModel::binomial(n as f64, p);
            let b = ServiceTime::new(d, t_tx, model);
            prop_assert!(b.cvar() <= model.moments().cvar() + 1e-9);
        }

        /// Gamma quantile inverts the CDF across the parameter space.
        #[test]
        fn gamma_quantile_inverts_cdf(
            mean in 0.01f64..100.0,
            cv in 0.05f64..3.0,
            p in 0.01f64..0.999,
        ) {
            let g = Gamma::from_mean_cvar(mean, cv);
            let x = g.quantile(p);
            prop_assert!((g.cdf(x) - p).abs() < 1e-6);
        }
    }
}
