//! Raw-moment containers and derived statistics.
//!
//! The whole waiting-time analysis of the paper is a *moment calculus*: the
//! first three raw moments of the replication grade `R` propagate into the
//! first three raw moments of the service time `B` (Eqs. 7–9), which feed the
//! Pollaczek–Khinchine formulas (Eqs. 4–5). [`Moments3`] is the common
//! currency passed between these stages.

use serde::{Deserialize, Serialize};

/// The first three raw moments `E[X]`, `E[X²]`, `E[X³]` of a nonnegative
/// random variable.
///
/// # Examples
///
/// ```
/// use rjms_queueing::moments::Moments3;
/// // A constant c has moments (c, c², c³) and zero variance.
/// let m = Moments3::constant(2.0);
/// assert_eq!(m.m2, 4.0);
/// assert_eq!(m.variance(), 0.0);
/// assert_eq!(m.cvar(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Moments3 {
    /// First raw moment `E[X]` (the mean).
    pub m1: f64,
    /// Second raw moment `E[X²]`.
    pub m2: f64,
    /// Third raw moment `E[X³]`.
    pub m3: f64,
}

impl Moments3 {
    /// Creates a moment triple from explicit raw moments.
    ///
    /// # Panics
    ///
    /// Panics if any moment is negative or non-finite, or if the implied
    /// variance `E[X²] − E[X]²` is materially negative (beyond floating-point
    /// slack), since then the triple cannot belong to any real distribution.
    pub fn new(m1: f64, m2: f64, m3: f64) -> Self {
        assert!(
            m1.is_finite() && m2.is_finite() && m3.is_finite(),
            "moments must be finite: ({m1}, {m2}, {m3})"
        );
        assert!(
            m1 >= 0.0 && m2 >= 0.0 && m3 >= 0.0,
            "moments of a nonnegative variable must be nonnegative: ({m1}, {m2}, {m3})"
        );
        let var = m2 - m1 * m1;
        assert!(var >= -1e-9 * m2.max(1.0), "inconsistent moments: implied variance {var} < 0");
        Self { m1, m2, m3 }
    }

    /// Moments of the degenerate distribution concentrated at `c >= 0`.
    pub fn constant(c: f64) -> Self {
        assert!(c >= 0.0 && c.is_finite(), "constant must be finite and >= 0");
        Self { m1: c, m2: c * c, m3: c * c * c }
    }

    /// Variance `E[X²] − E[X]²`, clamped at zero against rounding noise.
    pub fn variance(&self) -> f64 {
        (self.m2 - self.m1 * self.m1).max(0.0)
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation `c_var[X] = std(X)/E[X]` (Eq. 10).
    ///
    /// Returns 0 when the mean is 0 (degenerate-at-zero distribution).
    pub fn cvar(&self) -> f64 {
        if self.m1 == 0.0 {
            0.0
        } else {
            self.std_dev() / self.m1
        }
    }

    /// Moments of `a·X` for a scale factor `a >= 0`.
    ///
    /// Used to turn replication-grade moments into transmit-time moments
    /// (`V = R · t_tx`).
    pub fn scaled(&self, a: f64) -> Self {
        assert!(a >= 0.0 && a.is_finite(), "scale must be finite and >= 0");
        Self { m1: a * self.m1, m2: a * a * self.m2, m3: a * a * a * self.m3 }
    }

    /// Moments of `d + X` for a constant shift `d >= 0`.
    ///
    /// This is exactly the paper's Eqs. 7–9 with `D = d`:
    /// `E[(D+V)^k]` expanded by the binomial theorem.
    pub fn shifted(&self, d: f64) -> Self {
        assert!(d >= 0.0 && d.is_finite(), "shift must be finite and >= 0");
        Self {
            m1: d + self.m1,
            m2: d * d + 2.0 * d * self.m1 + self.m2,
            m3: d * d * d + 3.0 * d * d * self.m1 + 3.0 * d * self.m2 + self.m3,
        }
    }

    /// Estimates the raw moments of a sample.
    ///
    /// Useful in tests to check analytic moments against Monte-Carlo samples.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    pub fn from_samples<I>(samples: I) -> Self
    where
        I: IntoIterator<Item = f64>,
    {
        let (mut n, mut s1, mut s2, mut s3) = (0u64, 0.0f64, 0.0f64, 0.0f64);
        for x in samples {
            n += 1;
            s1 += x;
            s2 += x * x;
            s3 += x * x * x;
        }
        assert!(n > 0, "cannot compute moments of an empty sample");
        let n = n as f64;
        Self { m1: s1 / n, m2: s2 / n, m3: s3 / n }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_has_zero_variance_and_cvar() {
        let m = Moments3::constant(3.5);
        assert_eq!(m.m1, 3.5);
        assert_eq!(m.m2, 12.25);
        assert_eq!(m.m3, 42.875);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.cvar(), 0.0);
    }

    #[test]
    fn scaling_scales_moments_by_powers() {
        let m = Moments3::new(1.0, 2.0, 6.0); // Exp(1) moments
        let s = m.scaled(3.0);
        assert_eq!(s.m1, 3.0);
        assert_eq!(s.m2, 18.0);
        assert_eq!(s.m3, 162.0);
        // cvar is scale-invariant.
        assert!((s.cvar() - m.cvar()).abs() < 1e-15);
    }

    #[test]
    fn shifting_matches_binomial_expansion() {
        let m = Moments3::new(1.0, 2.0, 6.0);
        let d = 2.0;
        let s = m.shifted(d);
        assert!((s.m1 - 3.0).abs() < 1e-15);
        // E[(2+X)^2] = 4 + 4·1 + 2 = 10
        assert!((s.m2 - 10.0).abs() < 1e-15);
        // E[(2+X)^3] = 8 + 12·1 + 6·2 + 6 = 38
        assert!((s.m3 - 38.0).abs() < 1e-15);
    }

    #[test]
    fn exponential_moments_cvar_is_one() {
        // Exp(rate) has raw moments 1/r, 2/r², 6/r³ → cvar = 1.
        let r = 4.0f64;
        let m = Moments3::new(1.0 / r, 2.0 / (r * r), 6.0 / (r * r * r));
        assert!((m.cvar() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_samples_matches_hand_computation() {
        let m = Moments3::from_samples([1.0, 2.0, 3.0]);
        assert!((m.m1 - 2.0).abs() < 1e-15);
        assert!((m.m2 - 14.0 / 3.0).abs() < 1e-15);
        assert!((m.m3 - 12.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn from_samples_rejects_empty() {
        Moments3::from_samples(std::iter::empty::<f64>());
    }

    #[test]
    #[should_panic(expected = "inconsistent moments")]
    fn new_rejects_negative_variance() {
        Moments3::new(2.0, 1.0, 1.0);
    }

    #[test]
    fn zero_mean_cvar_is_zero() {
        let m = Moments3::new(0.0, 0.0, 0.0);
        assert_eq!(m.cvar(), 0.0);
    }
}
