//! Special mathematical functions.
//!
//! The waiting-time analysis approximates the conditional waiting time by a
//! Gamma distribution, whose CDF is the regularized lower incomplete gamma
//! function. No math crate is available in this environment, so the required
//! functions are implemented here: [`ln_gamma`], [`gamma_p`], [`gamma_q`] and
//! [`erf`]. The implementations follow the classic Lanczos / series /
//! continued-fraction approach and are accurate to roughly 1e-12 over the
//! ranges exercised by the library (shape parameters up to a few hundred).

/// Maximum number of iterations for the series / continued fraction loops.
const MAX_ITER: usize = 500;

/// Convergence threshold for the series / continued fraction loops.
const EPS: f64 = 1e-15;

/// Smallest representable scaling to avoid division by zero in the Lentz
/// continued-fraction algorithm.
const FPMIN: f64 = f64::MIN_POSITIVE / EPS;

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, 9 coefficients), which yields about
/// 15 significant digits over the positive real axis.
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection formula is intentionally not exposed:
/// the library only evaluates `ln Γ` at positive arguments).
///
/// # Examples
///
/// ```
/// use rjms_queueing::special::ln_gamma;
/// // Γ(5) = 24
/// assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");

    // Lanczos coefficients for g = 7, quoted at published precision.
    const G: f64 = 7.0;
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];

    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }

    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, x)` is the CDF of the Gamma distribution with shape `a` and unit
/// scale, evaluated at `x`. Returns 0 for `x <= 0`.
///
/// # Panics
///
/// Panics if `a <= 0` or if `x` is negative and non-finite inputs are passed.
///
/// # Examples
///
/// ```
/// use rjms_queueing::special::gamma_p;
/// // For a = 1 the Gamma distribution is Exp(1): P(1, x) = 1 - e^-x.
/// let x = 2.0f64;
/// assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-12);
/// ```
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_p requires a > 0, got {a}");
    assert!(x.is_finite() || x > 0.0, "gamma_p requires finite x, got {x}");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_series(a, x)
    } else {
        1.0 - upper_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// Computed directly from the continued fraction when `x >= a + 1`, which
/// retains precision for tail probabilities far smaller than machine epsilon
/// relative to 1 (important for the 99.99% waiting-time quantile).
///
/// # Examples
///
/// ```
/// use rjms_queueing::special::gamma_q;
/// // Q(1, x) = e^-x
/// assert!((gamma_q(1.0, 30.0) - (-30.0f64).exp()).abs() < 1e-25);
/// ```
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "gamma_q requires a > 0, got {a}");
    if x <= 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_series(a, x)
    } else {
        upper_continued_fraction(a, x)
    }
}

/// Series expansion of `P(a, x)`; converges quickly for `x < a + 1`.
fn lower_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Modified Lentz continued fraction for `Q(a, x)`; converges for `x >= a + 1`.
fn upper_continued_fraction(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / FPMIN;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = b + an / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// Error function `erf(x)`.
///
/// Implemented via the incomplete gamma function:
/// `erf(x) = sign(x) · P(1/2, x²)`.
///
/// # Examples
///
/// ```
/// use rjms_queueing::special::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-12);
/// ```
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        0.0
    } else if x > 0.0 {
        gamma_p(0.5, x * x)
    } else {
        -gamma_p(0.5, x * x)
    }
}

/// Natural logarithm of the binomial coefficient `C(n, k)`.
///
/// Evaluated through `ln Γ` so it stays finite for large `n` (the sensitivity
/// analysis sweeps filter counts up to 10⁴).
///
/// # Panics
///
/// Panics if `k > n`.
///
/// # Examples
///
/// ```
/// use rjms_queueing::special::ln_binomial;
/// assert!((ln_binomial(5, 2) - 10.0f64.ln()).abs() < 1e-12);
/// ```
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    assert!(k <= n, "ln_binomial requires k <= n, got k={k}, n={n}");
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "expected {b}, got {a} (tol {tol})");
    }

    #[test]
    fn ln_gamma_integer_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..=20u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert_close(ln_gamma(n as f64), fact.ln(), 1e-13);
        }
    }

    #[test]
    fn ln_gamma_half_integers() {
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert_close(ln_gamma(0.5), sqrt_pi.ln(), 1e-13);
        assert_close(ln_gamma(1.5), (0.5 * sqrt_pi).ln(), 1e-13);
        assert_close(ln_gamma(2.5), (0.75 * sqrt_pi).ln(), 1e-13);
    }

    #[test]
    fn ln_gamma_large_argument_stirling() {
        // Stirling with correction terms at x = 500.
        let x: f64 = 500.0;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x)
                - 1.0 / (360.0 * x * x * x);
        assert_close(ln_gamma(x), stirling, 1e-12);
    }

    #[test]
    #[should_panic(expected = "ln_gamma requires x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        ln_gamma(0.0);
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        for &x in &[0.01, 0.1, 0.5, 1.0, 2.0, 5.0, 20.0] {
            assert_close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-13);
        }
    }

    #[test]
    fn gamma_p_erlang_2_special_case() {
        // P(2, x) = 1 - e^-x (1 + x)
        for &x in &[0.1f64, 1.0, 3.0, 10.0] {
            let expect = 1.0 - (-x).exp() * (1.0 + x);
            assert_close(gamma_p(2.0, x), expect, 1e-13);
        }
    }

    #[test]
    fn gamma_p_plus_q_is_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 100.0] {
            for &x in &[0.1, 1.0, 5.0, 50.0, 200.0] {
                let s = gamma_p(a, x) + gamma_q(a, x);
                assert_close(s, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let a = 3.7;
        let mut prev = 0.0;
        for i in 1..200 {
            let x = i as f64 * 0.1;
            let p = gamma_p(a, x);
            assert!(p >= prev, "P(a,x) must be nondecreasing in x");
            prev = p;
        }
    }

    #[test]
    fn gamma_p_at_zero_and_large_x() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!(gamma_p(2.0, 1e4) > 1.0 - 1e-12);
        assert_eq!(gamma_q(2.0, 0.0), 1.0);
    }

    #[test]
    fn gamma_q_deep_tail_precision() {
        // Q(1, x) = e^-x exactly; check relative accuracy deep in the tail.
        for &x in &[20.0f64, 50.0, 100.0] {
            let expect = (-x).exp();
            let got = gamma_q(1.0, x);
            assert!(
                ((got - expect) / expect).abs() < 1e-10,
                "relative tail error too large at x={x}: {got} vs {expect}"
            );
        }
    }

    #[test]
    fn gamma_p_median_of_shape_k_near_k() {
        // The median of Gamma(k, 1) is approximately k - 1/3 for large k.
        let k = 50.0;
        let p = gamma_p(k, k - 1.0 / 3.0);
        assert!((p - 0.5).abs() < 0.01, "median check failed: {p}");
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.5), 0.5204998778130465, 1e-12);
        assert_close(erf(2.0), 0.9953222650189527, 1e-12);
        assert_eq!(erf(0.0), 0.0);
        assert!((erf(5.0) - 1.0).abs() < 1e-11);
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.1, 0.7, 1.3, 2.9] {
            assert_close(erf(-x), -erf(x), 1e-15);
        }
    }

    #[test]
    fn ln_binomial_small_cases() {
        assert_close(ln_binomial(10, 3), 120.0f64.ln(), 1e-12);
        assert_close(ln_binomial(10, 0), 0.0, 1e-12);
        assert_close(ln_binomial(10, 10), 0.0, 1e-12);
    }

    #[test]
    fn ln_binomial_symmetry() {
        for n in [5u64, 17, 100, 1000] {
            for k in [0u64, 1, 2, n / 3, n / 2] {
                assert_close(ln_binomial(n, k), ln_binomial(n, n - k), 1e-10);
            }
        }
    }

    #[test]
    #[should_panic(expected = "k <= n")]
    fn ln_binomial_rejects_k_gt_n() {
        ln_binomial(3, 4);
    }
}
