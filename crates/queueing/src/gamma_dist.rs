//! Two-parameter Gamma distribution.
//!
//! The paper approximates the conditional waiting time `W₁` (the waiting time
//! of delayed messages) by a Gamma distribution fitted to its first two
//! moments: shape `α = 1/c_var[W₁]²`, scale `β = E[W₁]/α`. This module
//! provides the distribution with CDF, complementary CDF and quantile
//! function; the CDF is the regularized incomplete gamma function from
//! [`crate::special`].

use crate::special::{gamma_p, gamma_q};
use serde::{Deserialize, Serialize};

/// Gamma distribution with shape `α` and scale `β` (mean `αβ`).
///
/// # Examples
///
/// ```
/// use rjms_queueing::gamma_dist::Gamma;
/// // Shape 1 is the exponential distribution.
/// let g = Gamma::new(1.0, 2.0);
/// assert!((g.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
/// assert!((g.mean() - 2.0).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates a Gamma distribution with the given shape `α` and scale `β`.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is not strictly positive and finite.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(shape > 0.0 && shape.is_finite(), "shape must be finite and > 0, got {shape}");
        assert!(scale > 0.0 && scale.is_finite(), "scale must be finite and > 0, got {scale}");
        Self { shape, scale }
    }

    /// Moment-matching constructor: the Gamma distribution with the given
    /// mean and coefficient of variation (`α = 1/c_var²`, `β = mean/α`).
    ///
    /// This is exactly the fit the paper applies to `W₁`.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `cvar <= 0` (a zero coefficient of variation
    /// is a point mass, which is not in the Gamma family — callers handle the
    /// degenerate case separately).
    pub fn from_mean_cvar(mean: f64, cvar: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be finite and > 0, got {mean}");
        assert!(cvar > 0.0 && cvar.is_finite(), "cvar must be finite and > 0, got {cvar}");
        let shape = 1.0 / (cvar * cvar);
        let scale = mean / shape;
        Self { shape, scale }
    }

    /// Shape parameter `α`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `β`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Mean `αβ`.
    pub fn mean(&self) -> f64 {
        self.shape * self.scale
    }

    /// Variance `αβ²`.
    pub fn variance(&self) -> f64 {
        self.shape * self.scale * self.scale
    }

    /// Coefficient of variation `1/√α`.
    pub fn cvar(&self) -> f64 {
        1.0 / self.shape.sqrt()
    }

    /// Cumulative distribution function `P(X <= x)`.
    ///
    /// Returns 0 for `x <= 0`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, x / self.scale)
        }
    }

    /// Complementary CDF (survival function) `P(X > x)`.
    ///
    /// Computed directly via `Q(α, x/β)` so deep-tail probabilities keep full
    /// relative precision — required for the 99.99% quantile study (Fig. 12).
    pub fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            gamma_q(self.shape, x / self.scale)
        }
    }

    /// The `p`-quantile: the smallest `x` with `P(X <= x) >= p`.
    ///
    /// Solved by bracketed bisection on the CDF (60 iterations give ~1e-18
    /// relative bracketing error, far below the CDF's own accuracy).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`; `p = 1` has no finite quantile.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile requires p in [0, 1), got {p}");
        if p == 0.0 {
            return 0.0;
        }
        // Bracket the root: start at the mean and grow the upper bound.
        let mut lo = 0.0;
        let mut hi = self.mean().max(self.scale);
        while self.cdf(hi) < p {
            lo = hi;
            hi *= 2.0;
            assert!(hi.is_finite(), "quantile bracket diverged (p = {p})");
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-14 * hi {
                break;
            }
        }
        0.5 * (lo + hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_one_is_exponential() {
        let g = Gamma::new(1.0, 3.0);
        for &x in &[0.1, 1.0, 5.0, 20.0] {
            let expect = 1.0 - (-x / 3.0f64).exp();
            assert!((g.cdf(x) - expect).abs() < 1e-13);
            assert!((g.sf(x) - (1.0 - expect)).abs() < 1e-13);
        }
    }

    #[test]
    fn erlang_two_cdf() {
        // Gamma(2, θ): F(x) = 1 - e^{-x/θ}(1 + x/θ).
        let g = Gamma::new(2.0, 0.5);
        for &x in &[0.2, 1.0, 4.0] {
            let z: f64 = x / 0.5;
            let expect = 1.0 - (-z).exp() * (1.0 + z);
            assert!((g.cdf(x) - expect).abs() < 1e-13);
        }
    }

    #[test]
    fn mean_and_variance() {
        let g = Gamma::new(4.0, 2.5);
        assert!((g.mean() - 10.0).abs() < 1e-15);
        assert!((g.variance() - 25.0).abs() < 1e-15);
        assert!((g.cvar() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn from_mean_cvar_matches_moments() {
        let g = Gamma::from_mean_cvar(3.0, 0.4);
        assert!((g.mean() - 3.0).abs() < 1e-12);
        assert!((g.cvar() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = Gamma::from_mean_cvar(1.0, 0.7);
        for &p in &[0.01, 0.25, 0.5, 0.9, 0.99, 0.9999] {
            let x = g.quantile(p);
            assert!((g.cdf(x) - p).abs() < 1e-9, "cdf(quantile({p})) = {}", g.cdf(x));
        }
    }

    #[test]
    fn quantile_zero_is_zero() {
        assert_eq!(Gamma::new(2.0, 1.0).quantile(0.0), 0.0);
    }

    #[test]
    fn quantile_monotone_in_p() {
        let g = Gamma::new(0.5, 1.0);
        let mut prev = 0.0;
        for i in 1..100 {
            let q = g.quantile(i as f64 / 100.0);
            assert!(q >= prev);
            prev = q;
        }
    }

    #[test]
    fn median_between_zero_and_mean_for_right_skew() {
        // Gamma is right-skewed: median < mean.
        let g = Gamma::new(2.0, 1.0);
        let med = g.quantile(0.5);
        assert!(med > 0.0 && med < g.mean());
    }

    #[test]
    fn large_shape_approaches_normal_median() {
        // For large α the median ≈ mean (skew vanishes).
        let g = Gamma::new(1e4, 1.0);
        let med = g.quantile(0.5);
        assert!((med - g.mean()).abs() / g.mean() < 1e-3);
    }

    #[test]
    fn cdf_at_nonpositive_is_zero() {
        let g = Gamma::new(2.0, 1.0);
        assert_eq!(g.cdf(0.0), 0.0);
        assert_eq!(g.cdf(-1.0), 0.0);
        assert_eq!(g.sf(0.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "shape must be finite and > 0")]
    fn rejects_zero_shape() {
        Gamma::new(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "quantile requires p in [0, 1)")]
    fn quantile_rejects_one() {
        Gamma::new(1.0, 1.0).quantile(1.0);
    }
}
