//! # rjms-queueing
//!
//! Analytic queueing theory for JMS-style publish/subscribe servers.
//!
//! This crate implements the mathematical machinery of Menth & Henjes,
//! *Analysis of the Message Waiting Time for the FioranoMQ JMS Server*
//! (ICDCS 2006), section IV:
//!
//! * [`replication`] — stochastic models for the message replication grade
//!   `R` (deterministic, scaled Bernoulli, binomial) with exact first three
//!   raw moments and moment-matching constructors,
//! * [`service`] — the service-time decomposition `B = D + R·t_tx` and its
//!   moments (Eqs. 7–9),
//! * [`mg1`] — the `M/GI/1-∞` queue: Pollaczek–Khinchine waiting-time
//!   moments (Eqs. 4–5), delayed-customer moments (Eq. 19) and the
//!   Gamma-approximated waiting-time distribution (Eq. 20),
//! * [`gamma_dist`] — the two-parameter Gamma distribution used by the
//!   approximation,
//! * [`inversion`] — the exact waiting-time distribution by Abate–Whitt
//!   numerical inversion of the Pollaczek–Khinchine transform, used to
//!   bound the Gamma approximation's tail error,
//! * [`special`] — the special functions (`ln Γ`, regularized incomplete
//!   gamma) everything rests on,
//! * [`moments`] — the raw-moment calculus shared by all stages.
//!
//! ## Example: the paper's headline observation
//!
//! At 90% utilization the 99.99% waiting-time quantile stays below ~50 mean
//! service times, so waiting time is a non-issue whenever throughput is:
//!
//! ```
//! use rjms_queueing::moments::Moments3;
//! use rjms_queueing::mg1::Mg1;
//!
//! # fn main() -> Result<(), rjms_queueing::mg1::Mg1Error> {
//! let service = Moments3::constant(1.0); // normalized E[B] = 1, c_var = 0
//! let queue = Mg1::with_utilization(0.9, service)?;
//! let w = queue.waiting_time_distribution();
//! let q9999 = w.quantile(0.9999);
//! assert!(q9999 < 50.0, "Q_99.99%[W] = {q9999} · E[B]");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod gamma_dist;
pub mod inversion;
pub mod mg1;
pub mod moments;
pub mod replication;
pub mod service;
pub mod special;

pub use gamma_dist::Gamma;
pub use inversion::ExactWaiting;
pub use mg1::{Mg1, Mg1Error, WaitingTimeDistribution};
pub use moments::Moments3;
pub use replication::{MomentMatchError, ReplicationModel};
pub use service::ServiceTime;
