//! The message service (processing) time `B = D + R · t_tx`.
//!
//! Section IV-B.2 of the paper decomposes the service time of a message into
//! a constant part `D = t_rcv + n_fltr · t_fltr` (receive overhead plus filter
//! evaluation) and a variable part `V = R · t_tx` (one transmit overhead per
//! message copy). [`ServiceTime`] carries this decomposition and computes the
//! first three raw moments of `B` (Eqs. 7–9) and its coefficient of variation
//! (Eq. 10) from a [`ReplicationModel`].

use crate::moments::Moments3;
use crate::replication::{MomentMatchError, ReplicationModel};
use serde::{Deserialize, Serialize};

/// Service-time model `B = D + R · t_tx` with stochastic replication grade.
///
/// # Examples
///
/// ```
/// use rjms_queueing::replication::ReplicationModel;
/// use rjms_queueing::service::ServiceTime;
///
/// // Constant overhead 10 µs, 17 µs per copy, R ~ Bin(10, 0.5).
/// let b = ServiceTime::new(10e-6, 17e-6, ReplicationModel::binomial(10.0, 0.5));
/// assert!((b.mean() - (10e-6 + 5.0 * 17e-6)).abs() < 1e-18);
/// assert!(b.cvar() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceTime {
    /// Constant part `D = t_rcv + n_fltr · t_fltr`, in seconds.
    deterministic: f64,
    /// Transmit overhead per message copy, in seconds.
    t_tx: f64,
    /// Distribution of the replication grade `R`.
    replication: ReplicationModel,
}

impl ServiceTime {
    /// Creates a service-time model from its three components.
    ///
    /// # Panics
    ///
    /// Panics if `deterministic` or `t_tx` is negative or non-finite.
    pub fn new(deterministic: f64, t_tx: f64, replication: ReplicationModel) -> Self {
        assert!(
            deterministic >= 0.0 && deterministic.is_finite(),
            "deterministic part must be finite and >= 0"
        );
        assert!(t_tx >= 0.0 && t_tx.is_finite(), "t_tx must be finite and >= 0");
        Self { deterministic, t_tx, replication }
    }

    /// The constant part `D` of the service time, in seconds.
    pub fn deterministic_part(&self) -> f64 {
        self.deterministic
    }

    /// The per-copy transmit overhead `t_tx`, in seconds.
    pub fn t_tx(&self) -> f64 {
        self.t_tx
    }

    /// The replication-grade model.
    pub fn replication(&self) -> &ReplicationModel {
        &self.replication
    }

    /// First three raw moments of `B` (Eqs. 7–9).
    pub fn moments(&self) -> Moments3 {
        self.replication.moments().scaled(self.t_tx).shifted(self.deterministic)
    }

    /// Mean service time `E[B]` (Eq. 7 / Eq. 1).
    pub fn mean(&self) -> f64 {
        self.moments().m1
    }

    /// Coefficient of variation `c_var[B]` (Eq. 10).
    pub fn cvar(&self) -> f64 {
        self.moments().cvar()
    }

    /// Service time realized by a concrete replication grade `r`.
    ///
    /// Used by simulators: draw `r` from the replication model, then the
    /// message occupies the server for `for_grade(r)` seconds.
    pub fn for_grade(&self, r: u32) -> f64 {
        self.deterministic + r as f64 * self.t_tx
    }

    /// Inverse parameter study (paper §IV-B.2): the replication-grade moments
    /// `(E[R], E[R²])` required so that `B = D + R·t_tx` attains a target mean
    /// `E[B]` and coefficient of variation `c_var[B]`.
    ///
    /// The paper "calculates the required `E[R]` from Equation (7), and uses
    /// `E[R]` and Equation (8) to calculate `E[R²]`"; this is that
    /// computation.
    ///
    /// # Errors
    ///
    /// Returns an error if the target mean is not attainable (`E[B] < D`) or
    /// `t_tx = 0` while variability is requested.
    pub fn replication_moments_for_target(
        deterministic: f64,
        t_tx: f64,
        target_mean: f64,
        target_cvar: f64,
    ) -> Result<(f64, f64), MomentMatchError> {
        if target_mean < deterministic {
            return Err(MomentMatchError::new(format!(
                "target E[B]={target_mean} is below the deterministic part D={deterministic}"
            )));
        }
        if target_cvar < 0.0 {
            return Err(MomentMatchError::new(format!(
                "target c_var[B]={target_cvar} must be >= 0"
            )));
        }
        if t_tx == 0.0 {
            return if target_cvar == 0.0 && (target_mean - deterministic).abs() < 1e-15 {
                Ok((0.0, 0.0))
            } else {
                Err(MomentMatchError::new("t_tx = 0 admits only the degenerate service time B = D"))
            };
        }
        // Eq. 7 inverted: E[R] = (E[B] - D) / t_tx.
        let m1 = (target_mean - deterministic) / t_tx;
        // Var[B] = t_tx² Var[R]  →  E[R²] = Var[R] + E[R]².
        let var_b = (target_cvar * target_mean).powi(2);
        let m2 = var_b / (t_tx * t_tx) + m1 * m1;
        Ok((m1, m2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_matches_eq1() {
        // E[B] = D + E[R]·t_tx
        let b = ServiceTime::new(2e-5, 1.7e-5, ReplicationModel::deterministic(10.0));
        assert!((b.mean() - (2e-5 + 10.0 * 1.7e-5)).abs() < 1e-18);
        assert_eq!(b.cvar(), 0.0);
    }

    #[test]
    fn moments_match_manual_expansion() {
        let d = 1e-4;
        let t = 2e-5;
        let r = ReplicationModel::binomial(8.0, 0.25);
        let b = ServiceTime::new(d, t, r);
        let rm = r.moments();
        let m = b.moments();
        let exp2 = d * d + 2.0 * d * t * rm.m1 + t * t * rm.m2; // Eq. 8
        let exp3 =
            d.powi(3) + 3.0 * d * d * t * rm.m1 + 3.0 * d * t * t * rm.m2 + t.powi(3) * rm.m3; // Eq. 9
        assert!((m.m2 - exp2).abs() < 1e-24);
        assert!((m.m3 - exp3).abs() < 1e-30);
    }

    #[test]
    fn for_grade_is_affine() {
        let b = ServiceTime::new(1e-6, 2e-6, ReplicationModel::deterministic(1.0));
        assert_eq!(b.for_grade(0), 1e-6);
        assert!((b.for_grade(5) - 11e-6).abs() < 1e-18);
    }

    #[test]
    fn inverse_problem_roundtrip() {
        let d = 9.26e-5; // corr-ID, 13 filters: t_rcv + 13·t_fltr
        let t_tx = 1.7e-5;
        let (m1, m2) = ServiceTime::replication_moments_for_target(d, t_tx, 5e-4, 0.3).unwrap();
        // Build a scaled-Bernoulli model from those moments; check target met.
        let model = ReplicationModel::scaled_bernoulli_from_moments(m1, m2).unwrap();
        let b = ServiceTime::new(d, t_tx, model);
        assert!((b.mean() - 5e-4).abs() < 1e-12);
        assert!((b.cvar() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn inverse_problem_rejects_unreachable_mean() {
        let err = ServiceTime::replication_moments_for_target(1e-3, 1e-5, 5e-4, 0.2).unwrap_err();
        assert!(err.to_string().contains("below the deterministic part"));
    }

    #[test]
    fn inverse_problem_zero_t_tx_degenerate_only() {
        assert!(ServiceTime::replication_moments_for_target(1e-3, 0.0, 1e-3, 0.0).is_ok());
        assert!(ServiceTime::replication_moments_for_target(1e-3, 0.0, 2e-3, 0.0).is_err());
        assert!(ServiceTime::replication_moments_for_target(1e-3, 0.0, 1e-3, 0.1).is_err());
    }

    #[test]
    fn cvar_zero_iff_deterministic_replication() {
        let det = ServiceTime::new(1e-5, 1e-5, ReplicationModel::deterministic(7.0));
        assert_eq!(det.cvar(), 0.0);
        let sto = ServiceTime::new(1e-5, 1e-5, ReplicationModel::binomial(7.0, 0.5));
        assert!(sto.cvar() > 0.0);
    }
}
