//! Stochastic models for the message replication grade `R`.
//!
//! The replication grade is the number of subscribers a published message is
//! forwarded to. Section IV-B.2 of the paper considers three models:
//!
//! * [`ReplicationModel::Deterministic`] — every message is replicated a
//!   constant number of times (Eqs. 11–12),
//! * [`ReplicationModel::ScaledBernoulli`] — either *all* `n_fltr` filters
//!   match (probability `p_match`) or none do (Eqs. 13–15),
//! * [`ReplicationModel::Binomial`] — each of the `n_fltr` filters matches
//!   independently with probability `p_match` (Eqs. 16–18).
//!
//! The printed Eqs. 14, 17 and 18 in the ICDCS proceedings contain typos (see
//! `DESIGN.md` §6); this module implements the mathematically exact raw
//! moments, which are verified against Monte-Carlo samples by the property
//! tests in `tests/replication_montecarlo.rs`.
//!
//! The parameters are real-valued so that the *moment-matching* constructors
//! ([`ReplicationModel::scaled_bernoulli_from_moments`],
//! [`ReplicationModel::binomial_from_moments`]) used by the sensitivity
//! analysis (Fig. 11) are total; the probability mass function
//! ([`ReplicationModel::pmf`]) additionally requires integer-valued support
//! parameters.

use crate::moments::Moments3;
use crate::special::ln_binomial;
use serde::{Deserialize, Serialize};

/// Error produced when a moment-matching constructor is asked for moments no
/// distribution of the requested family can attain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MomentMatchError {
    /// Human-readable description of the violated constraint.
    reason: String,
}

impl MomentMatchError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        Self { reason: reason.into() }
    }
}

impl std::fmt::Display for MomentMatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot match moments: {}", self.reason)
    }
}

impl std::error::Error for MomentMatchError {}

/// A distribution model for the message replication grade `R`.
///
/// # Examples
///
/// ```
/// use rjms_queueing::replication::ReplicationModel;
/// let m = ReplicationModel::binomial(10.0, 0.3).moments();
/// assert!((m.m1 - 3.0).abs() < 1e-12);           // E[R] = n·p
/// assert!((m.variance() - 2.1).abs() < 1e-12);   // Var[R] = n·p·(1-p)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReplicationModel {
    /// `R = grade` with probability 1.
    Deterministic {
        /// The constant replication grade.
        grade: f64,
    },
    /// `R = n_fltr` with probability `p_match`, otherwise `R = 0`.
    ScaledBernoulli {
        /// Number of installed filters (all match together or none does).
        n_fltr: f64,
        /// Probability that the message matches.
        p_match: f64,
    },
    /// `R ~ Bin(n_fltr, p_match)` — filters match independently.
    Binomial {
        /// Number of installed filters.
        n_fltr: f64,
        /// Per-filter match probability.
        p_match: f64,
    },
    /// `R ~ Geom(θ)` on {0, 1, 2, …} with `P(R = k) = (1−θ)·θᵏ` — an
    /// *over-dispersed* model (`Var[R] > E[R]`) extending the paper's three
    /// families (its §V names validating further distributions as future
    /// work). Models bursty interest: most messages match few subscribers,
    /// a geometric tail matches many.
    Geometric {
        /// Success parameter `θ ∈ [0, 1)`; the mean is `θ/(1−θ)`.
        theta: f64,
    },
}

impl ReplicationModel {
    /// Deterministic replication grade (Eqs. 11–12).
    ///
    /// # Panics
    ///
    /// Panics if `grade` is negative or non-finite.
    pub fn deterministic(grade: f64) -> Self {
        assert!(grade >= 0.0 && grade.is_finite(), "grade must be finite and >= 0");
        Self::Deterministic { grade }
    }

    /// Scaled Bernoulli replication grade (Eqs. 13–15).
    ///
    /// # Panics
    ///
    /// Panics if `n_fltr < 0` or `p_match ∉ [0, 1]`.
    pub fn scaled_bernoulli(n_fltr: f64, p_match: f64) -> Self {
        assert!(n_fltr >= 0.0 && n_fltr.is_finite(), "n_fltr must be finite and >= 0");
        assert!((0.0..=1.0).contains(&p_match), "p_match must lie in [0, 1]");
        Self::ScaledBernoulli { n_fltr, p_match }
    }

    /// Binomial replication grade (Eqs. 16–18).
    ///
    /// # Panics
    ///
    /// Panics if `n_fltr < 0` or `p_match ∉ [0, 1]`.
    pub fn binomial(n_fltr: f64, p_match: f64) -> Self {
        assert!(n_fltr >= 0.0 && n_fltr.is_finite(), "n_fltr must be finite and >= 0");
        assert!((0.0..=1.0).contains(&p_match), "p_match must lie in [0, 1]");
        Self::Binomial { n_fltr, p_match }
    }

    /// Geometric replication grade with the given mean (`θ = mean/(1+mean)`).
    ///
    /// # Panics
    ///
    /// Panics if `mean` is negative or non-finite.
    pub fn geometric(mean: f64) -> Self {
        assert!(mean >= 0.0 && mean.is_finite(), "mean must be finite and >= 0");
        Self::Geometric { theta: mean / (1.0 + mean) }
    }

    /// Scaled Bernoulli model matching the given first two raw moments.
    ///
    /// Inverts Eqs. 13–14: `n_fltr = E[R²]/E[R]`, `p_match = E[R]²/E[R²]`.
    ///
    /// # Errors
    ///
    /// Returns an error if `m2 < m1²` (impossible variance) or the moments are
    /// not both positive.
    pub fn scaled_bernoulli_from_moments(m1: f64, m2: f64) -> Result<Self, MomentMatchError> {
        if !(m1 > 0.0 && m2 > 0.0) {
            return Err(MomentMatchError::new(format!(
                "scaled Bernoulli needs positive moments, got E[R]={m1}, E[R^2]={m2}"
            )));
        }
        if m2 < m1 * m1 * (1.0 - 1e-12) {
            return Err(MomentMatchError::new(format!(
                "E[R^2]={m2} < E[R]^2={} implies negative variance",
                m1 * m1
            )));
        }
        let n_fltr = m2 / m1;
        let p_match = (m1 * m1 / m2).min(1.0);
        Ok(Self::ScaledBernoulli { n_fltr, p_match })
    }

    /// Binomial model matching the given first two raw moments.
    ///
    /// Solves `n·p = E[R]` and `n·p·(1−p) = Var[R]`, i.e.
    /// `p = 1 − Var[R]/E[R]` and `n = E[R]/p`.
    ///
    /// # Errors
    ///
    /// Returns an error when no binomial distribution has these moments:
    /// the binomial family requires `Var[R] < E[R]` (under-dispersion).
    pub fn binomial_from_moments(m1: f64, m2: f64) -> Result<Self, MomentMatchError> {
        if !(m1 > 0.0 && m2 > 0.0) {
            return Err(MomentMatchError::new(format!(
                "binomial needs positive moments, got E[R]={m1}, E[R^2]={m2}"
            )));
        }
        let var = m2 - m1 * m1;
        if var < -1e-12 * m2 {
            return Err(MomentMatchError::new(format!(
                "E[R^2]={m2} < E[R]^2 implies negative variance"
            )));
        }
        let var = var.max(0.0);
        let p_match = 1.0 - var / m1;
        if p_match <= 0.0 {
            return Err(MomentMatchError::new(format!(
                "over-dispersed moments (Var={var} >= mean={m1}) cannot be binomial"
            )));
        }
        let p_match = p_match.min(1.0);
        let n_fltr = m1 / p_match;
        Ok(Self::Binomial { n_fltr, p_match })
    }

    /// Mean replication grade `E[R]`.
    pub fn mean(&self) -> f64 {
        self.moments().m1
    }

    /// The first three raw moments of `R`.
    ///
    /// * Deterministic: `(r, r², r³)`.
    /// * Scaled Bernoulli: `E[R^k] = p · n^k`.
    /// * Binomial: raw moments via the central moments
    ///   `Var = np(1−p)`, `μ₃ = np(1−p)(1−2p)`.
    pub fn moments(&self) -> Moments3 {
        match *self {
            Self::Deterministic { grade } => Moments3::constant(grade),
            Self::ScaledBernoulli { n_fltr, p_match } => Moments3::new(
                p_match * n_fltr,
                p_match * n_fltr * n_fltr,
                p_match * n_fltr * n_fltr * n_fltr,
            ),
            Self::Binomial { n_fltr, p_match } => {
                let mean = n_fltr * p_match;
                let var = n_fltr * p_match * (1.0 - p_match);
                let mu3 = var * (1.0 - 2.0 * p_match);
                let m2 = var + mean * mean;
                let m3 = mu3 + 3.0 * mean * m2 - 2.0 * mean * mean * mean;
                Moments3::new(mean, m2, m3)
            }
            Self::Geometric { theta } => {
                // Raw moments of Geom(θ) on {0,1,2,…}:
                // E[R] = θ/(1−θ), E[R²] = θ(1+θ)/(1−θ)²,
                // E[R³] = θ(1+4θ+θ²)/(1−θ)³.
                let q = 1.0 - theta;
                Moments3::new(
                    theta / q,
                    theta * (1.0 + theta) / (q * q),
                    theta * (1.0 + 4.0 * theta + theta * theta) / (q * q * q),
                )
            }
        }
    }

    /// The largest replication grade with positive probability, rounded up.
    pub fn max_grade(&self) -> u32 {
        match *self {
            Self::Deterministic { grade } => grade.ceil() as u32,
            Self::ScaledBernoulli { n_fltr, .. } | Self::Binomial { n_fltr, .. } => {
                n_fltr.ceil() as u32
            }
            Self::Geometric { theta } => {
                // Effective support bound: the 1−1e-12 quantile,
                // P(R > k) = θ^{k+1} ≤ 1e-12.
                if theta == 0.0 {
                    0
                } else {
                    ((-12.0 * std::f64::consts::LN_10 / theta.ln()).ceil() as u32).max(1)
                }
            }
        }
    }

    /// Probability mass function `P(R = k)`.
    ///
    /// # Panics
    ///
    /// Panics if the model's support parameter (`grade` / `n_fltr`) is not an
    /// integer — the real-parameter generalizations used for moment matching
    /// do not define a PMF.
    pub fn pmf(&self, k: u32) -> f64 {
        match *self {
            Self::Deterministic { grade } => {
                let r = integer_param(grade, "grade");
                if k == r {
                    1.0
                } else {
                    0.0
                }
            }
            Self::ScaledBernoulli { n_fltr, p_match } => {
                let n = integer_param(n_fltr, "n_fltr");
                if k == n && k == 0 {
                    1.0
                } else if k == 0 {
                    1.0 - p_match
                } else if k == n {
                    p_match
                } else {
                    0.0
                }
            }
            Self::Binomial { n_fltr, p_match } => {
                let n = integer_param(n_fltr, "n_fltr");
                if k > n {
                    return 0.0;
                }
                if p_match == 0.0 {
                    return if k == 0 { 1.0 } else { 0.0 };
                }
                if p_match == 1.0 {
                    return if k == n { 1.0 } else { 0.0 };
                }
                let ln_p = ln_binomial(n as u64, k as u64)
                    + k as f64 * p_match.ln()
                    + (n - k) as f64 * (1.0 - p_match).ln();
                ln_p.exp()
            }
            Self::Geometric { theta } => (1.0 - theta) * theta.powi(k as i32),
        }
    }

    /// Cumulative distribution function `P(R <= k)`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::pmf`].
    pub fn cdf(&self, k: u32) -> f64 {
        (0..=k).map(|j| self.pmf(j)).sum::<f64>().min(1.0)
    }
}

/// Validates that a real-valued model parameter is (numerically) an integer.
fn integer_param(x: f64, name: &str) -> u32 {
    let r = x.round();
    assert!(
        (x - r).abs() < 1e-9 && (0.0..=u32::MAX as f64).contains(&r),
        "pmf requires integer {name}, got {x}"
    );
    r as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_moments_and_pmf() {
        let m = ReplicationModel::deterministic(4.0);
        let mom = m.moments();
        assert_eq!(mom.m1, 4.0);
        assert_eq!(mom.m2, 16.0);
        assert_eq!(mom.m3, 64.0);
        assert_eq!(mom.cvar(), 0.0);
        assert_eq!(m.pmf(4), 1.0);
        assert_eq!(m.pmf(3), 0.0);
        assert_eq!(m.max_grade(), 4);
    }

    #[test]
    fn scaled_bernoulli_moments_match_definition() {
        let (n, p) = (10.0, 0.3);
        let m = ReplicationModel::scaled_bernoulli(n, p).moments();
        assert!((m.m1 - p * n).abs() < 1e-12);
        assert!((m.m2 - p * n * n).abs() < 1e-12);
        assert!((m.m3 - p * n * n * n).abs() < 1e-12);
        // Paper Eq. 15: E[R³] = E[R²]²/E[R].
        assert!((m.m3 - m.m2 * m.m2 / m.m1).abs() < 1e-9);
    }

    #[test]
    fn scaled_bernoulli_pmf_sums_to_one() {
        let m = ReplicationModel::scaled_bernoulli(7.0, 0.25);
        let total: f64 = (0..=7).map(|k| m.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(m.pmf(3), 0.0);
        assert!((m.pmf(0) - 0.75).abs() < 1e-12);
        assert!((m.pmf(7) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn binomial_moments_small_case_exhaustive() {
        // n = 3, p = 0.4: compare against direct enumeration.
        let (n, p) = (3u32, 0.4f64);
        let model = ReplicationModel::binomial(n as f64, p);
        let (mut m1, mut m2, mut m3) = (0.0, 0.0, 0.0);
        for k in 0..=n {
            let pk = model.pmf(k);
            let kf = k as f64;
            m1 += kf * pk;
            m2 += kf * kf * pk;
            m3 += kf * kf * kf * pk;
        }
        let mom = model.moments();
        assert!((mom.m1 - m1).abs() < 1e-12);
        assert!((mom.m2 - m2).abs() < 1e-12);
        assert!((mom.m3 - m3).abs() < 1e-12);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let m = ReplicationModel::binomial(40.0, 0.13);
        let total: f64 = (0..=40).map(|k| m.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn binomial_degenerate_p_values() {
        let m0 = ReplicationModel::binomial(5.0, 0.0);
        assert_eq!(m0.pmf(0), 1.0);
        assert_eq!(m0.moments().m1, 0.0);
        let m1 = ReplicationModel::binomial(5.0, 1.0);
        assert_eq!(m1.pmf(5), 1.0);
        assert_eq!(m1.moments().cvar(), 0.0);
    }

    #[test]
    fn bernoulli_n_equals_one_matches_binomial() {
        // With n_fltr = 1 both models are plain Bernoulli(p).
        let p = 0.37;
        let a = ReplicationModel::scaled_bernoulli(1.0, p).moments();
        let b = ReplicationModel::binomial(1.0, p).moments();
        assert!((a.m1 - b.m1).abs() < 1e-12);
        assert!((a.m2 - b.m2).abs() < 1e-12);
        assert!((a.m3 - b.m3).abs() < 1e-12);
    }

    #[test]
    fn scaled_bernoulli_moment_matching_roundtrip() {
        let orig = ReplicationModel::scaled_bernoulli(20.0, 0.15);
        let m = orig.moments();
        let rec = ReplicationModel::scaled_bernoulli_from_moments(m.m1, m.m2).unwrap();
        match rec {
            ReplicationModel::ScaledBernoulli { n_fltr, p_match } => {
                assert!((n_fltr - 20.0).abs() < 1e-9);
                assert!((p_match - 0.15).abs() < 1e-12);
            }
            other => panic!("expected scaled Bernoulli, got {other:?}"),
        }
        // Third moment implied by the family matches the original.
        assert!((rec.moments().m3 - m.m3).abs() < 1e-6);
    }

    #[test]
    fn binomial_moment_matching_roundtrip() {
        let orig = ReplicationModel::binomial(50.0, 0.08);
        let m = orig.moments();
        let rec = ReplicationModel::binomial_from_moments(m.m1, m.m2).unwrap();
        match rec {
            ReplicationModel::Binomial { n_fltr, p_match } => {
                assert!((n_fltr - 50.0).abs() < 1e-6);
                assert!((p_match - 0.08).abs() < 1e-9);
            }
            other => panic!("expected binomial, got {other:?}"),
        }
    }

    #[test]
    fn binomial_moment_matching_rejects_overdispersion() {
        // Var >= mean cannot be binomial (e.g. Poisson moments: var == mean).
        let err = ReplicationModel::binomial_from_moments(2.0, 2.0 + 4.0).unwrap_err();
        assert!(err.to_string().contains("over-dispersed"));
    }

    #[test]
    fn scaled_bernoulli_moment_matching_rejects_negative_variance() {
        assert!(ReplicationModel::scaled_bernoulli_from_moments(2.0, 1.0).is_err());
    }

    #[test]
    fn cdf_reaches_one() {
        let m = ReplicationModel::binomial(12.0, 0.5);
        assert!((m.cdf(12) - 1.0).abs() < 1e-12);
        assert!(m.cdf(6) < 1.0);
    }

    #[test]
    fn geometric_moments_match_series() {
        let mean = 3.0;
        let m = ReplicationModel::geometric(mean);
        let mom = m.moments();
        assert!((mom.m1 - mean).abs() < 1e-12);
        // Var = θ/(1−θ)² = mean·(1+mean) — over-dispersed: Var > mean.
        assert!((mom.variance() - mean * (1.0 + mean)).abs() < 1e-9);
        assert!(mom.variance() > mom.m1);
        // Cross-check all three moments against the PMF series.
        let (mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0);
        for k in 0..=m.max_grade() {
            let p = m.pmf(k);
            let kf = k as f64;
            s1 += kf * p;
            s2 += kf * kf * p;
            s3 += kf * kf * kf * p;
        }
        assert!((s1 - mom.m1).abs() < 1e-6);
        assert!((s2 - mom.m2).abs() < 1e-5);
        assert!((s3 - mom.m3).abs() < 1e-3);
    }

    #[test]
    fn geometric_pmf_normalized_and_cdf_monotone() {
        let m = ReplicationModel::geometric(2.0);
        let total: f64 = (0..=m.max_grade()).map(|k| m.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-10);
        assert!(m.cdf(0) < m.cdf(1));
        assert!((m.cdf(m.max_grade()) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn geometric_zero_mean_degenerate() {
        let m = ReplicationModel::geometric(0.0);
        assert_eq!(m.pmf(0), 1.0);
        assert_eq!(m.moments().m1, 0.0);
        assert_eq!(m.max_grade(), 0);
    }

    #[test]
    fn geometric_is_overdispersed_where_binomial_cannot_go() {
        // Geometric moments are rejected by the binomial moment matcher.
        let m = ReplicationModel::geometric(5.0).moments();
        assert!(ReplicationModel::binomial_from_moments(m.m1, m.m2).is_err());
        // But accepted by the Bernoulli one.
        assert!(ReplicationModel::scaled_bernoulli_from_moments(m.m1, m.m2).is_ok());
    }

    #[test]
    #[should_panic(expected = "pmf requires integer")]
    fn pmf_rejects_real_parameters() {
        ReplicationModel::binomial(10.5, 0.5).pmf(3);
    }

    #[test]
    #[should_panic(expected = "p_match must lie in [0, 1]")]
    fn constructor_rejects_bad_probability() {
        ReplicationModel::binomial(10.0, 1.5);
    }
}
