//! Exact waiting-time distribution by numerical transform inversion.
//!
//! The Gamma approximation (Eq. 20) fits two moments of the conditional
//! waiting time; everywhere else the paper's `M/GI/1-∞` analysis is
//! exact. This module closes that last gap: the Pollaczek–Khinchine
//! transform of the waiting time,
//!
//! ```text
//! W*(s) = (1 − ρ)·s / (s − λ·(1 − B*(s))),
//! ```
//!
//! is inverted numerically with the Abate–Whitt Euler algorithm, giving
//! the *exact* CDF/CCDF/quantiles for any service time whose
//! Laplace–Stieltjes transform `B*(s)` is computable. The broker's
//! service times are finite mixtures of atoms (`B = d + R·t_tx` with `R`
//! drawn from a [`ReplicationModel`]), so `B*(s) = Σ_k p_k·e^{−s·b_k}`
//! is available in closed form.
//!
//! The `ablation_gamma_accuracy` experiment uses this inversion as its
//! noise-free reference: comparing the Gamma quantile solve against the
//! exact inversion isolates the approximation error from simulation
//! noise, and the residual it measures is folded into the saturation
//! forecaster's confidence (`rjms-obs`).

use crate::mg1::Mg1Error;
use crate::service::ServiceTime;

/// Minimal complex arithmetic for the inversion contour (no external
/// dependency; only the operations the Euler algorithm needs).
#[derive(Debug, Clone, Copy)]
struct Cx {
    re: f64,
    im: f64,
}

impl Cx {
    fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    fn sub(self, other: Cx) -> Cx {
        Cx::new(self.re - other.re, self.im - other.im)
    }

    fn scale(self, k: f64) -> Cx {
        Cx::new(self.re * k, self.im * k)
    }

    /// `e^{-self}`.
    fn exp_neg(self) -> Cx {
        let r = (-self.re).exp();
        Cx::new(r * self.im.cos(), -r * self.im.sin())
    }

    /// `1 / self`.
    fn recip(self) -> Cx {
        let d = self.re * self.re + self.im * self.im;
        Cx::new(self.re / d, -self.im / d)
    }
}

/// The exact stationary waiting-time distribution of an `M/GI/1-∞` queue
/// with an atomic (finite-mixture) service time, evaluated by numerical
/// inversion of the Pollaczek–Khinchine transform.
///
/// # Examples
///
/// ```
/// use rjms_queueing::inversion::ExactWaiting;
/// use rjms_queueing::replication::ReplicationModel;
/// use rjms_queueing::service::ServiceTime;
///
/// // M/D/1 at rho = 0.5: the exact W99 differs from the Gamma fit by
/// // a small, now-measurable amount.
/// let service = ServiceTime::new(1e-3, 0.0, ReplicationModel::deterministic(0.0));
/// let exact = ExactWaiting::for_service(&service, 0.5).unwrap();
/// let q99 = exact.quantile(0.99);
/// assert!(q99 > 0.0 && q99 < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct ExactWaiting {
    lambda: f64,
    rho: f64,
    /// Service-time atoms `(value_seconds, probability)`, normalized.
    atoms: Vec<(f64, f64)>,
}

/// Abate–Whitt discretization parameter: `e^{−A}` bounds the aliasing
/// error, so `A = 18.4` targets roughly eight digits.
const EULER_A: f64 = 18.4;
/// Terms summed directly before Euler acceleration starts.
const EULER_N: usize = 24;
/// Partial sums averaged by the Euler binomial weights.
const EULER_M: usize = 12;

impl ExactWaiting {
    /// Builds the exact distribution for `service` at utilization `rho`
    /// (`λ = ρ / E[B]`).
    ///
    /// Unbounded replication models (geometric) are truncated at
    /// [`ReplicationModel::max_grade`] and renormalized; the truncated
    /// mass is far below the inversion's own error floor.
    ///
    /// # Errors
    ///
    /// Returns [`Mg1Error::Unstable`] if `rho >= 1` and
    /// [`Mg1Error::InvalidArrivalRate`] if `rho < 0`, is non-finite, or
    /// the service mean is zero while `rho > 0`.
    pub fn for_service(service: &ServiceTime, rho: f64) -> Result<Self, Mg1Error> {
        if rho.is_nan() || rho < 0.0 {
            return Err(Mg1Error::InvalidArrivalRate { lambda: rho });
        }
        if rho >= 1.0 {
            return Err(Mg1Error::Unstable { rho });
        }
        let mean = service.mean();
        if mean <= 0.0 {
            return Err(Mg1Error::InvalidArrivalRate { lambda: f64::INFINITY });
        }
        let atoms = service_atoms(service);
        Ok(Self { lambda: rho / mean, rho, atoms })
    }

    /// The utilization `ρ` the distribution was built at.
    pub fn utilization(&self) -> f64 {
        self.rho
    }

    /// The service-time Laplace–Stieltjes transform `B*(s)` at a contour
    /// point.
    fn lst_service(&self, s: Cx) -> Cx {
        let mut out = Cx::new(0.0, 0.0);
        for &(value, prob) in &self.atoms {
            let term = s.scale(value).exp_neg().scale(prob);
            out = Cx::new(out.re + term.re, out.im + term.im);
        }
        out
    }

    /// The transform of the waiting-time CDF, `F̂(s) = W*(s)/s =
    /// (1 − ρ) / (s − λ·(1 − B*(s)))`.
    fn cdf_transform(&self, s: Cx) -> Cx {
        let b = self.lst_service(s);
        let denom = s.sub(Cx::new(1.0, 0.0).sub(b).scale(self.lambda));
        denom.recip().scale(1.0 - self.rho)
    }

    /// `P(W ≤ t)`, exact up to the inversion's numerical floor (~1e-7).
    pub fn cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            // The atom at zero: an arriving message waits iff the server
            // is busy (PASTA).
            return 1.0 - self.rho;
        }
        if self.rho == 0.0 {
            return 1.0;
        }
        // Abate–Whitt Euler: alternating series on the Bromwich contour
        // Re(s) = A/(2t), accelerated by binomial averaging of the last
        // EULER_M partial sums.
        let re = EULER_A / (2.0 * t);
        let mut sum = 0.5 * self.cdf_transform(Cx::new(re, 0.0)).re;
        let mut partial = [0.0f64; EULER_M + 1];
        for k in 1..=(EULER_N + EULER_M) {
            let s = Cx::new(re, k as f64 * std::f64::consts::PI / t);
            let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
            sum += sign * self.cdf_transform(s).re;
            if k >= EULER_N {
                partial[k - EULER_N] = sum;
            }
        }
        let mut avg = 0.0;
        let mut binom = 1.0f64;
        for (j, p) in partial.iter().enumerate() {
            avg += binom * p;
            // C(M, j+1) = C(M, j) · (M − j) / (j + 1).
            binom *= (EULER_M - j) as f64 / (j + 1) as f64;
        }
        avg /= 2f64.powi(EULER_M as i32);
        let value = ((EULER_A / 2.0).exp() / t) * avg;
        value.clamp(0.0, 1.0)
    }

    /// `P(W > t)`.
    pub fn ccdf(&self, t: f64) -> f64 {
        1.0 - self.cdf(t)
    }

    /// The `p`-quantile of `W` by bisection over the inverted CDF.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile requires p in [0, 1), got {p}");
        if p <= 1.0 - self.rho {
            return 0.0;
        }
        // Bracket: double from one mean service time until the CDF clears p.
        let mean = self.atoms.iter().map(|(v, q)| v * q).sum::<f64>();
        let mut hi = mean.max(1e-12);
        for _ in 0..200 {
            if self.cdf(hi) >= p {
                break;
            }
            hi *= 2.0;
        }
        let mut lo = 0.0f64;
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) >= p {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }
}

/// Expands a service time into `(value, probability)` atoms over the
/// replication grades, renormalizing truncated (geometric) models.
fn service_atoms(service: &ServiceTime) -> Vec<(f64, f64)> {
    let replication = service.replication();
    let max = replication.max_grade();
    let mut atoms: Vec<(f64, f64)> = (0..=max)
        .filter_map(|k| {
            let p = replication.pmf(k);
            (p > 0.0).then(|| (service.for_grade(k), p))
        })
        .collect();
    let total: f64 = atoms.iter().map(|(_, p)| p).sum();
    if total > 0.0 && (total - 1.0).abs() > f64::EPSILON {
        for (_, p) in &mut atoms {
            *p /= total;
        }
    }
    atoms
}

/// Non-deterministic fractional grades fall back to the nearest pair of
/// integer atoms inside [`ReplicationModel::pmf`], so the atoms above are
/// exact for every in-tree model.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::mg1::Mg1;
    use crate::replication::ReplicationModel;

    fn md1(rho: f64) -> (ExactWaiting, Mg1) {
        // Deterministic 1 ms service: the classic M/D/1 queue.
        let service = ServiceTime::new(1e-3, 0.0, ReplicationModel::deterministic(0.0));
        let exact = ExactWaiting::for_service(&service, rho).unwrap();
        let gamma = Mg1::with_utilization(rho, service.moments()).unwrap();
        (exact, gamma)
    }

    #[test]
    fn atom_at_zero_matches_pasta() {
        let (exact, _) = md1(0.7);
        assert!((exact.cdf(0.0) - 0.3).abs() < 1e-12);
        assert_eq!(exact.quantile(0.25), 0.0);
    }

    #[test]
    fn md1_mean_matches_pollaczek_khinchine() {
        // E[W] from the inverted distribution (by numerical integration of
        // the CCDF) must match the exact PK mean.
        let (exact, gamma) = md1(0.8);
        let mean_pk = gamma.mean_waiting_time();
        let steps = 4000;
        let dt = 20.0 * mean_pk / steps as f64;
        let mean_inv: f64 = (0..steps).map(|i| exact.ccdf((i as f64 + 0.5) * dt) * dt).sum();
        assert!(
            (mean_inv - mean_pk).abs() / mean_pk < 5e-3,
            "inverted mean {mean_inv} vs PK {mean_pk}"
        );
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let (exact, _) = md1(0.9);
        let mut prev = 0.0;
        for i in 0..200 {
            let t = i as f64 * 5e-4;
            let f = exact.cdf(t);
            assert!((0.0..=1.0).contains(&f), "cdf({t}) = {f}");
            assert!(f >= prev - 1e-7, "cdf not monotone at t = {t}: {f} < {prev}");
            prev = f;
        }
    }

    #[test]
    fn quantile_inverts_cdf() {
        let (exact, _) = md1(0.85);
        for &p in &[0.5, 0.9, 0.99, 0.9999] {
            let q = exact.quantile(p);
            assert!((exact.cdf(q) - p).abs() < 1e-5, "cdf(quantile({p})) = {}", exact.cdf(q));
        }
    }

    #[test]
    fn gamma_fit_tracks_the_exact_quantiles_for_md1() {
        // The paper's claim (via [23]): the two-moment Gamma fit is "very
        // good". Against the exact inversion the W99 error at moderate
        // load stays within a few percent for M/D/1.
        for &rho in &[0.5, 0.7, 0.9] {
            let (exact, gamma) = md1(rho);
            let dist = gamma.waiting_time_distribution();
            let (e, a) = (exact.quantile(0.99), dist.quantile(0.99));
            let err = (a - e).abs() / e;
            assert!(err < 0.08, "rho {rho}: gamma {a} vs exact {e} ({:.1}% off)", err * 100.0);
        }
    }

    #[test]
    fn mixture_service_inverts_cleanly() {
        // Scaled-Bernoulli replication: a two-atom service mixture with
        // high variability; the inversion must stay a valid distribution
        // and sit above the M/D/1 tail at equal utilization.
        let mixed = ServiceTime::new(1e-4, 2e-5, ReplicationModel::scaled_bernoulli(100.0, 0.2));
        let exact = ExactWaiting::for_service(&mixed, 0.9).unwrap();
        let q99 = exact.quantile(0.99);
        assert!(q99 > 0.0);
        assert!((exact.cdf(q99) - 0.99).abs() < 1e-5);

        let det = ServiceTime::new(mixed.mean(), 0.0, ReplicationModel::deterministic(0.0));
        let det_exact = ExactWaiting::for_service(&det, 0.9).unwrap();
        assert!(q99 > det_exact.quantile(0.99), "variable service must have the heavier tail");
    }

    #[test]
    fn unstable_and_invalid_loads_are_rejected() {
        let service = ServiceTime::new(1e-3, 0.0, ReplicationModel::deterministic(0.0));
        assert!(matches!(ExactWaiting::for_service(&service, 1.0), Err(Mg1Error::Unstable { .. })));
        assert!(ExactWaiting::for_service(&service, -0.1).is_err());
        let zero = ServiceTime::new(0.0, 0.0, ReplicationModel::deterministic(0.0));
        assert!(ExactWaiting::for_service(&zero, 0.5).is_err());
    }
}
