//! The `M/GI/1-∞` queueing model of the JMS server (paper §IV-B).
//!
//! Messages arrive in a Poisson stream of rate `λ` (the aggregate rate of all
//! publishers) and are served sequentially with a generally distributed
//! service time `B`. [`Mg1`] computes:
//!
//! * the server utilization `ρ = λ·E[B]` (Eq. 6),
//! * the first two moments of the waiting time `W` by the Pollaczek–Khinchine
//!   formulas (Eqs. 4–5),
//! * the moments of the *conditional* waiting time `W₁` of delayed messages
//!   (Eq. 19),
//! * a Gamma approximation of the full waiting-time distribution (Eq. 20)
//!   with CDF, complementary CDF, and quantiles (used for Figs. 10–12).

use crate::gamma_dist::Gamma;
use crate::moments::Moments3;
use serde::{Deserialize, Serialize};

/// Error constructing an [`Mg1`] model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Mg1Error {
    /// The offered load `ρ = λ·E[B]` is ≥ 1, so no stationary regime exists.
    Unstable {
        /// The offered load that was requested.
        rho: f64,
    },
    /// The arrival rate was negative or non-finite.
    InvalidArrivalRate {
        /// The offending rate.
        lambda: f64,
    },
}

impl std::fmt::Display for Mg1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Unstable { rho } => {
                write!(f, "queue is unstable: utilization {rho} >= 1")
            }
            Self::InvalidArrivalRate { lambda } => {
                write!(f, "invalid arrival rate {lambda}")
            }
        }
    }
}

impl std::error::Error for Mg1Error {}

/// A stationary `M/GI/1-∞` queue.
///
/// # Examples
///
/// ```
/// use rjms_queueing::moments::Moments3;
/// use rjms_queueing::mg1::Mg1;
///
/// // M/M/1 with rate-1 service at ρ = 0.5: E[W] = ρ/(μ(1-ρ)) = 1.
/// let exp_service = Moments3::new(1.0, 2.0, 6.0);
/// let q = Mg1::new(0.5, exp_service)?;
/// assert!((q.mean_waiting_time() - 1.0).abs() < 1e-12);
/// # Ok::<(), rjms_queueing::mg1::Mg1Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mg1 {
    lambda: f64,
    service: Moments3,
}

impl Mg1 {
    /// Creates the queue from the arrival rate `λ` and the first three raw
    /// moments of the service time.
    ///
    /// # Errors
    ///
    /// Returns [`Mg1Error::Unstable`] if `ρ = λ·E[B] >= 1` and
    /// [`Mg1Error::InvalidArrivalRate`] if `λ` is negative or non-finite.
    pub fn new(lambda: f64, service: Moments3) -> Result<Self, Mg1Error> {
        if !(lambda >= 0.0 && lambda.is_finite()) {
            return Err(Mg1Error::InvalidArrivalRate { lambda });
        }
        let rho = lambda * service.m1;
        if rho >= 1.0 {
            return Err(Mg1Error::Unstable { rho });
        }
        Ok(Self { lambda, service })
    }

    /// Creates the queue that runs at a target utilization `ρ` for the given
    /// service-time moments (`λ = ρ/E[B]`).
    ///
    /// The paper's normalized studies (Figs. 10–12) sweep `ρ` directly; this
    /// constructor avoids computing `λ` by hand.
    ///
    /// # Errors
    ///
    /// Returns [`Mg1Error::Unstable`] if `rho >= 1`, and
    /// [`Mg1Error::InvalidArrivalRate`] if `rho < 0` or the service mean is 0
    /// while `rho > 0`.
    pub fn with_utilization(rho: f64, service: Moments3) -> Result<Self, Mg1Error> {
        if rho >= 1.0 {
            return Err(Mg1Error::Unstable { rho });
        }
        if rho.is_nan() || rho < 0.0 {
            return Err(Mg1Error::InvalidArrivalRate { lambda: rho });
        }
        if service.m1 == 0.0 {
            return if rho == 0.0 {
                Ok(Self { lambda: 0.0, service })
            } else {
                Err(Mg1Error::InvalidArrivalRate { lambda: f64::INFINITY })
            };
        }
        Self::new(rho / service.m1, service)
    }

    /// Arrival rate `λ` in messages per second.
    pub fn arrival_rate(&self) -> f64 {
        self.lambda
    }

    /// Raw moments of the service time `B`.
    pub fn service_moments(&self) -> Moments3 {
        self.service
    }

    /// Server utilization `ρ = λ·E[B]` (Eq. 6).
    ///
    /// In an `M/GI/1` queue this also equals the probability that an arriving
    /// message must wait (`p_w = ρ`, PASTA).
    pub fn utilization(&self) -> f64 {
        self.lambda * self.service.m1
    }

    /// Mean waiting time `E[W]` (Pollaczek–Khinchine, Eq. 4).
    pub fn mean_waiting_time(&self) -> f64 {
        let rho = self.utilization();
        self.lambda * self.service.m2 / (2.0 * (1.0 - rho))
    }

    /// Second raw moment of the waiting time `E[W²]` (Eq. 5).
    pub fn waiting_time_m2(&self) -> f64 {
        let rho = self.utilization();
        let ew = self.mean_waiting_time();
        2.0 * ew * ew + self.lambda * self.service.m3 / (3.0 * (1.0 - rho))
    }

    /// Mean sojourn (response) time `E[T] = E[W] + E[B]`.
    pub fn mean_sojourn_time(&self) -> f64 {
        self.mean_waiting_time() + self.service.m1
    }

    /// Mean number of messages in the queue (excluding the one in service),
    /// by Little's law: `E[L_q] = λ·E[W]`.
    ///
    /// The paper uses the waiting-time quantiles as an estimate of the buffer
    /// space required at the JMS server; this is the corresponding mean.
    pub fn mean_queue_length(&self) -> f64 {
        self.lambda * self.mean_waiting_time()
    }

    /// First and second moment of the conditional waiting time `W₁` of
    /// messages that are actually delayed (Eq. 19):
    /// `E[W₁] = E[W]/ρ`, `E[W₁²] = E[W²]/ρ`.
    ///
    /// Returns `None` when `ρ = 0` (no message ever waits).
    pub fn delayed_waiting_moments(&self) -> Option<(f64, f64)> {
        let rho = self.utilization();
        if rho == 0.0 {
            return None;
        }
        Some((self.mean_waiting_time() / rho, self.waiting_time_m2() / rho))
    }

    /// Mean number of messages in the *system* (queue + server), by
    /// Little's law: `E[L] = λ·E[T]`.
    pub fn mean_number_in_system(&self) -> f64 {
        self.lambda * self.mean_sojourn_time()
    }

    /// Mean busy period of the server, `E[BP] = E[B]/(1−ρ)`.
    ///
    /// The busy period bounds how long the push-back mechanism keeps
    /// publishers blocked in a row.
    pub fn mean_busy_period(&self) -> f64 {
        let rho = self.utilization();
        if self.service.m1 == 0.0 {
            return 0.0;
        }
        self.service.m1 / (1.0 - rho)
    }

    /// Second raw moment of the busy period, `E[BP²] = E[B²]/(1−ρ)³`.
    pub fn busy_period_m2(&self) -> f64 {
        let rho = self.utilization();
        self.service.m2 / (1.0 - rho).powi(3)
    }

    /// Buffer-space estimate (paper §V): the number of message slots the
    /// server must provision so that a message's queueing backlog exceeds it
    /// only with probability `1 − p`. Computed as `⌈λ · Q_p[W]⌉` — the
    /// arrivals accumulating over a `p`-quantile waiting period.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn required_buffer(&self, p: f64) -> u64 {
        let q = self.waiting_time_distribution().quantile(p);
        (self.lambda * q).ceil() as u64
    }

    /// The Gamma-approximated waiting-time distribution (Eq. 20).
    ///
    /// The conditional waiting time `W₁` is fitted by a Gamma distribution on
    /// its first two moments; the unconditional distribution then has an atom
    /// of mass `1-ρ` at zero:
    /// `P(W <= t) = (1-ρ) + ρ·P(W₁ <= t)`.
    ///
    /// The paper notes this approximation is exact for exponential service
    /// times and very accurate otherwise (validated in
    /// `tests/mg1_simulation.rs` against discrete-event simulation).
    pub fn waiting_time_distribution(&self) -> WaitingTimeDistribution {
        let rho = self.utilization();
        let delayed = self.delayed_waiting_moments().and_then(|(m1, m2)| {
            let var = (m2 - m1 * m1).max(0.0);
            if m1 <= 0.0 {
                return None;
            }
            let cvar = var.sqrt() / m1;
            if cvar <= 0.0 {
                // Degenerate conditional waiting time — approximate by a very
                // peaked Gamma to keep the distribution object total.
                Some(Gamma::from_mean_cvar(m1, 1e-9))
            } else {
                Some(Gamma::from_mean_cvar(m1, cvar))
            }
        });
        WaitingTimeDistribution { rho, delayed }
    }
}

/// The (approximate) distribution of the message waiting time `W`:
/// an atom `1-ρ` at zero plus `ρ` times a Gamma-distributed delay (Eq. 20).
///
/// Produced by [`Mg1::waiting_time_distribution`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaitingTimeDistribution {
    rho: f64,
    /// Gamma fit of the conditional delay `W₁`; `None` when `ρ = 0`.
    delayed: Option<Gamma>,
}

impl WaitingTimeDistribution {
    /// The probability that a message waits at all (`p_w = ρ`).
    pub fn waiting_probability(&self) -> f64 {
        self.rho
    }

    /// The fitted Gamma distribution of the conditional delay `W₁`, if any.
    pub fn delayed_distribution(&self) -> Option<&Gamma> {
        self.delayed.as_ref()
    }

    /// `P(W <= t)` (Eq. 20).
    pub fn cdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        match &self.delayed {
            None => 1.0,
            Some(g) => (1.0 - self.rho) + self.rho * g.cdf(t),
        }
    }

    /// Complementary CDF `P(W > t)`, computed with full tail precision
    /// (`ρ·Q(α, t/β)` rather than `1 - cdf`), as plotted in Fig. 11.
    pub fn ccdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 1.0;
        }
        match &self.delayed {
            None => 0.0,
            Some(g) => self.rho * g.sf(t),
        }
    }

    /// The `p`-quantile `Q_p[W]`: the smallest `t` with `P(W <= t) >= p`.
    ///
    /// For `p <= 1-ρ` the quantile is 0 (the message does not wait at all);
    /// otherwise it is the `(p-(1-ρ))/ρ` quantile of the Gamma delay. Used
    /// for the 99% / 99.99% quantile study (Fig. 12).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1)`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "quantile requires p in [0, 1), got {p}");
        let atom = 1.0 - self.rho;
        if p <= atom {
            return 0.0;
        }
        match &self.delayed {
            None => 0.0,
            Some(g) => g.quantile((p - atom) / self.rho),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Raw moments of Exp(rate).
    fn exp_moments(rate: f64) -> Moments3 {
        Moments3::new(1.0 / rate, 2.0 / (rate * rate), 6.0 / (rate * rate * rate))
    }

    #[test]
    fn mm1_mean_waiting_matches_closed_form() {
        // M/M/1: E[W] = ρ/(μ-λ).
        let mu = 2.0;
        for &lambda in &[0.2, 1.0, 1.8] {
            let q = Mg1::new(lambda, exp_moments(mu)).unwrap();
            let rho = lambda / mu;
            let expect = rho / (mu - lambda);
            assert!((q.mean_waiting_time() - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn mm1_waiting_distribution_is_exact() {
        // M/M/1: P(W > t) = ρ·e^{-(μ-λ)t}; the Gamma fit is exact here.
        let (lambda, mu) = (0.9, 1.0);
        let q = Mg1::new(lambda, exp_moments(mu)).unwrap();
        let w = q.waiting_time_distribution();
        for &t in &[0.5, 2.0, 10.0, 50.0] {
            let expect = 0.9 * (-(mu - lambda) * t).exp();
            let got = w.ccdf(t);
            assert!(((got - expect) / expect).abs() < 1e-6, "t={t}: got {got}, expected {expect}");
        }
    }

    #[test]
    fn md1_mean_waiting_matches_closed_form() {
        // M/D/1: E[W] = ρ·b/(2(1-ρ)).
        let b = 0.5;
        let lambda = 1.2; // ρ = 0.6
        let q = Mg1::new(lambda, Moments3::constant(b)).unwrap();
        let rho = lambda * b;
        let expect = rho * b / (2.0 * (1.0 - rho));
        assert!((q.mean_waiting_time() - expect).abs() < 1e-12);
    }

    #[test]
    fn utilization_equals_waiting_probability() {
        let q = Mg1::with_utilization(0.7, exp_moments(1.0)).unwrap();
        assert!((q.utilization() - 0.7).abs() < 1e-12);
        assert!((q.waiting_time_distribution().waiting_probability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn with_utilization_sets_lambda() {
        let m = Moments3::constant(0.01);
        let q = Mg1::with_utilization(0.9, m).unwrap();
        assert!((q.arrival_rate() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn unstable_queue_rejected() {
        let err = Mg1::new(2.0, exp_moments(1.0)).unwrap_err();
        assert!(matches!(err, Mg1Error::Unstable { .. }));
        assert!(Mg1::with_utilization(1.0, exp_moments(1.0)).is_err());
    }

    #[test]
    fn invalid_lambda_rejected() {
        assert!(matches!(
            Mg1::new(f64::NAN, exp_moments(1.0)),
            Err(Mg1Error::InvalidArrivalRate { .. })
        ));
        assert!(matches!(
            Mg1::new(-1.0, exp_moments(1.0)),
            Err(Mg1Error::InvalidArrivalRate { .. })
        ));
    }

    #[test]
    fn zero_load_queue_never_waits() {
        let q = Mg1::new(0.0, exp_moments(1.0)).unwrap();
        assert_eq!(q.mean_waiting_time(), 0.0);
        assert_eq!(q.delayed_waiting_moments(), None);
        let w = q.waiting_time_distribution();
        assert_eq!(w.cdf(0.0), 1.0);
        assert_eq!(w.ccdf(5.0), 0.0);
        assert_eq!(w.quantile(0.9999), 0.0);
    }

    #[test]
    fn delayed_moments_relation() {
        let q = Mg1::with_utilization(0.5, exp_moments(1.0)).unwrap();
        let (m1, m2) = q.delayed_waiting_moments().unwrap();
        assert!((m1 - q.mean_waiting_time() / 0.5).abs() < 1e-12);
        assert!((m2 - q.waiting_time_m2() / 0.5).abs() < 1e-12);
    }

    #[test]
    fn quantile_has_atom_at_zero() {
        let q = Mg1::with_utilization(0.3, exp_moments(1.0)).unwrap();
        let w = q.waiting_time_distribution();
        // 70% of messages do not wait: quantiles up to 0.7 are zero.
        assert_eq!(w.quantile(0.5), 0.0);
        assert_eq!(w.quantile(0.7), 0.0);
        assert!(w.quantile(0.71) > 0.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let q = Mg1::with_utilization(0.9, exp_moments(1.0)).unwrap();
        let w = q.waiting_time_distribution();
        for &p in &[0.2, 0.9, 0.99, 0.9999] {
            let t = w.quantile(p);
            if t > 0.0 {
                assert!((w.cdf(t) - p).abs() < 1e-8, "p={p}: cdf(q)={}", w.cdf(t));
            } else {
                assert!(w.cdf(0.0) >= p);
            }
        }
    }

    #[test]
    fn busy_period_mm1_closed_form() {
        // M/M/1: E[BP] = 1/(μ−λ).
        let (lambda, mu) = (0.5, 2.0);
        let q = Mg1::new(lambda, exp_moments(mu)).unwrap();
        assert!((q.mean_busy_period() - 1.0 / (mu - lambda)).abs() < 1e-12);
        // E[BP²] = E[B²]/(1−ρ)³.
        let rho = lambda / mu;
        assert!((q.busy_period_m2() - (2.0 / (mu * mu)) / (1.0 - rho).powi(3)).abs() < 1e-12);
    }

    #[test]
    fn busy_period_grows_with_utilization() {
        let low = Mg1::with_utilization(0.5, exp_moments(1.0)).unwrap();
        let high = Mg1::with_utilization(0.95, exp_moments(1.0)).unwrap();
        assert!(high.mean_busy_period() > low.mean_busy_period());
    }

    #[test]
    fn mean_number_in_system_littles_law() {
        let q = Mg1::with_utilization(0.8, exp_moments(2.0)).unwrap();
        assert!(
            (q.mean_number_in_system() - q.arrival_rate() * q.mean_sojourn_time()).abs() < 1e-12
        );
        // L = L_q + ρ.
        assert!((q.mean_number_in_system() - q.mean_queue_length() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn required_buffer_scales_with_load_and_percentile() {
        let low = Mg1::with_utilization(0.5, exp_moments(1.0)).unwrap();
        let high = Mg1::with_utilization(0.95, exp_moments(1.0)).unwrap();
        assert!(high.required_buffer(0.9999) > low.required_buffer(0.9999));
        assert!(high.required_buffer(0.9999) >= high.required_buffer(0.99));
        // Zero load needs no buffer.
        let idle = Mg1::new(0.0, exp_moments(1.0)).unwrap();
        assert_eq!(idle.required_buffer(0.9999), 0);
    }

    #[test]
    fn mean_queue_length_littles_law() {
        let q = Mg1::with_utilization(0.8, exp_moments(2.0)).unwrap();
        assert!((q.mean_queue_length() - q.arrival_rate() * q.mean_waiting_time()).abs() < 1e-12);
    }

    #[test]
    fn sojourn_is_wait_plus_service() {
        let q = Mg1::with_utilization(0.6, exp_moments(4.0)).unwrap();
        assert!((q.mean_sojourn_time() - q.mean_waiting_time() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn deterministic_service_distribution_total() {
        // cvar[B] = 0 still yields a positive-variance W₁; the distribution
        // object must be usable.
        let q = Mg1::with_utilization(0.9, Moments3::constant(0.02)).unwrap();
        let w = q.waiting_time_distribution();
        assert!(w.cdf(1.0) > 0.9);
        assert!(w.quantile(0.9999) > 0.0);
    }

    #[test]
    fn higher_cvar_shifts_tail_right() {
        // Paper Fig. 11: larger service variability → heavier waiting tail.
        let det = Mg1::with_utilization(0.9, Moments3::constant(1.0)).unwrap();
        let exp = Mg1::with_utilization(0.9, exp_moments(1.0)).unwrap();
        let t = 10.0;
        assert!(exp.waiting_time_distribution().ccdf(t) > det.waiting_time_distribution().ccdf(t));
    }
}
