//! Loom models for the flow-control accounting (DESIGN.md §3.14).
//!
//! Built only under `RUSTFLAGS="--cfg loom"`; the CI `loom` job runs
//! `cargo test --release -p rjms-flow --test loom` with that flag. The
//! gate's shared state lives behind the `rjms-conc` facade (a loom
//! `Mutex` plus relaxed outcome counters), so these models explore the
//! exact production lock/counter protocol, not a test double.
#![cfg(loom)]

use loom::sync::{Arc, Mutex};
use loom::thread;
use rjms_flow::{AdmissionOutcome, CreditWindow, FlowConfig, FlowGate, TokenBucket};

/// Two producers race for the last token in a shared bucket: exactly one
/// grant is issued, never zero, never two. (The bucket itself is `&mut`
/// state — the property under test is the gate's locking discipline
/// around it, here reduced to its smallest form.)
#[test]
fn bucket_grants_are_conserved_under_contention() {
    loom::model(|| {
        // Rate must be positive; 1e-9 tokens/s at t=0 means no refill can
        // mint a second token under this model.
        let bucket = Arc::new(Mutex::new(TokenBucket::new(1e-9, 1.0)));
        let racer = {
            let bucket = Arc::clone(&bucket);
            thread::spawn(move || bucket.lock().unwrap().try_take(0))
        };
        let mine = bucket.lock().unwrap().try_take(0);
        let theirs = racer.join().unwrap();
        assert!(
            mine ^ theirs,
            "one token must yield exactly one grant (mine={mine}, theirs={theirs})"
        );
        let level = bucket.lock().unwrap().level();
        assert!(level < 1.0, "the taken token resurfaced (level {level})");
    });
}

/// Credit conservation across racing consumers: with a window of 2 the
/// half-window threshold is 1, so every consume replenishes immediately
/// and the outstanding balance (initial grant + replenishments − consumed)
/// stays pinned inside `(0, window]` in every interleaving.
#[test]
fn credit_replenishment_conserves_in_flight_credit() {
    loom::model(|| {
        let window = Arc::new(Mutex::new(CreditWindow::new(2)));
        let racer = {
            let window = Arc::clone(&window);
            thread::spawn(move || window.lock().unwrap().consume())
        };
        let mine = window.lock().unwrap().consume();
        let theirs = racer.join().unwrap();

        let granted = 2 + u64::from(mine.unwrap_or(0)) + u64::from(theirs.unwrap_or(0));
        let consumed = 2u64;
        let balance = granted - consumed;
        assert!(balance > 0 && balance <= 2, "in-flight credit {balance} escaped (0, window]");
        assert_eq!(window.lock().unwrap().consumed(), 0, "threshold crossings must reset");
    });
}

/// Two producers race through the full admission gate: durable publishes
/// ride the top class (never shed), and the per-class outcome counters
/// account for every decision — admissions are neither lost nor
/// double-counted in any interleaving.
#[test]
fn gate_accounts_for_every_racing_admission() {
    loom::model(|| {
        let gate = Arc::new(FlowGate::new(FlowConfig::default()));
        let racer = {
            let gate = Arc::clone(&gate);
            thread::spawn(move || gate.admit_at(1, 9, true, 0))
        };
        let mine = gate.admit_at(2, 9, true, 0);
        let theirs = racer.join().unwrap();
        for outcome in [&mine, &theirs] {
            assert!(
                !matches!(outcome, AdmissionOutcome::Shed { .. }),
                "durable publishes must never be shed"
            );
        }

        let snap = gate.snapshot();
        let accounted: u64 = snap.per_class.iter().map(|c| c.granted + c.deferred + c.shed).sum();
        assert_eq!(accounted, 2, "an admission outcome went missing from the counters");
        let top = snap.per_class.last().expect("at least one class");
        assert_eq!(top.granted + top.deferred, 2, "durable admissions must land in the top class");
    });
}
