//! Property tests for the flow-control accounting invariants:
//!
//! * a token bucket's level always stays in `[0, burst]` and refill is
//!   monotone in time (a backwards clock never credits or debits),
//! * the admission gate partitions offered load exactly — grants +
//!   deferrals + sheds == offered — and never sheds the top class,
//! * client credit balances never go negative under arbitrary
//!   grant/consume interleavings, and the server's replenishment window
//!   keeps a well-behaved client's outstanding credit inside the window.

use proptest::prelude::*;
use rjms_flow::{AdmissionOutcome, CreditBalance, CreditWindow, FlowConfig, FlowGate, TokenBucket};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bucket level ∈ [0, burst] after any op sequence; refill with a
    /// non-advancing clock is a no-op.
    #[test]
    fn bucket_level_stays_bounded(
        rate in 1.0f64..1e6,
        burst in 1.0f64..1e4,
        ops in prop::collection::vec((any::<bool>(), 0u64..2_000_000_000), 1..200),
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let mut now = 0u64;
        for (take, dt) in ops {
            // Mix forward steps with deliberate backwards reads.
            let at = if dt % 3 == 0 { now.saturating_sub(dt) } else { now + dt };
            if take {
                bucket.try_take(at);
            } else {
                bucket.refill(at);
            }
            now = now.max(at);
            prop_assert!(bucket.level() >= 0.0, "level went negative: {}", bucket.level());
            prop_assert!(
                bucket.level() <= bucket.burst() + 1e-9,
                "level {} escaped burst {}", bucket.level(), bucket.burst()
            );
        }
    }

    /// Refill is monotone: advancing the clock never lowers the level,
    /// and a backwards clock never changes it.
    #[test]
    fn bucket_refill_is_monotone_in_time(
        rate in 1.0f64..1e6,
        burst in 1.0f64..1e4,
        steps in prop::collection::vec(0u64..1_000_000_000, 1..100),
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        bucket.try_take(0);
        let mut now = 0u64;
        for dt in steps {
            let before = bucket.level();
            bucket.refill(now.saturating_sub(1)); // backwards: no-op
            prop_assert_eq!(bucket.level(), before);
            now += dt;
            bucket.refill(now);
            prop_assert!(bucket.level() >= before - 1e-9, "refill lowered the level");
        }
    }

    /// grants + deferrals + sheds == offered, for every class, and the
    /// top class is never shed.
    #[test]
    fn gate_partitions_offered_load(
        classes in 1u8..=10,
        share in 0.1f64..=1.0,
        offered in prop::collection::vec(
            (0u64..5, 0u8..10, any::<bool>(), 0u64..100_000_000),
            1..500,
        ),
    ) {
        let gate = FlowGate::new(
            FlowConfig::default()
                .w99_objective(0.002)
                .classes(classes)
                .producer_share(share),
        );
        let mut now = 0u64;
        let top = classes - 1;
        for (producer, priority, durable, dt) in offered.iter().copied() {
            now += dt;
            let outcome = gate.admit_at(producer, priority, durable, now);
            if let AdmissionOutcome::Shed { class } = outcome {
                prop_assert!(class < top || classes == 1, "top class was shed");
                prop_assert!(!durable, "durable publish was shed");
            }
        }
        let snapshot = gate.snapshot();
        let total: u64 = snapshot.per_class.iter().map(|c| c.granted + c.deferred + c.shed).sum();
        prop_assert_eq!(total, offered.len() as u64, "outcomes do not partition offered load");
    }

    /// Client credits never go negative and consumption never exceeds
    /// grants once metering is active.
    #[test]
    fn credit_balance_never_goes_negative(
        ops in prop::collection::vec((any::<bool>(), 1u32..100), 1..300),
    ) {
        let mut balance = CreditBalance::new();
        for (consume, amount) in ops {
            if consume {
                let before = balance.available();
                let ok = balance.try_consume();
                if let Some(0) = before {
                    prop_assert!(!ok, "consumed from an empty balance");
                }
            } else {
                balance.grant(amount);
            }
            if let Some(available) = balance.available() {
                prop_assert_eq!(
                    available,
                    balance.total_granted() - balance.total_consumed(),
                    "balance accounting identity broken"
                );
            }
        }
    }

    /// A well-behaved client driven by the server's window keeps its
    /// outstanding credit in (0, window] forever: the protocol can
    /// neither starve nor over-credit it.
    #[test]
    fn credit_window_keeps_client_inside_the_window(
        window in 1u32..256,
        publishes in 1usize..2000,
    ) {
        let mut server = CreditWindow::new(window);
        let mut client = CreditBalance::new();
        client.grant(server.initial_grant());
        for _ in 0..publishes {
            prop_assert!(client.try_consume(), "client starved mid-window");
            if let Some(grant) = server.consume() {
                client.grant(grant);
            }
            let available = client.available().expect("active after initial grant");
            prop_assert!(available <= u64::from(window), "over-credited past the window");
        }
    }
}
