//! The admission gate: priority-class token-bucket enforcement of the
//! controller's arrival-rate budget.
//!
//! One global [`TokenBucket`] refills at `λ_max`; per-producer buckets
//! refill at a configurable share of it. JMS priorities 0–9 map
//! proportionally onto `classes` priority classes, and each class `c` may
//! only draw from the global bucket while its fill fraction is at least
//! `(classes − 1 − c) / classes`: as the bucket drains under overload the
//! lowest class is locked out (and shed) first, then the middle classes,
//! while the top class — where durable/persistent publishes are pinned —
//! needs only a single token and is *deferred*, never shed.

use crate::bucket::TokenBucket;
use crate::config::FlowConfig;
use crate::controller::FlowController;
use rjms_core::ModelVerdict;
use rjms_metrics::{labeled, Counter, Histogram, MetricsRegistry};
use serde::{Deserialize, Serialize};
// Sync primitives come through the rjms-conc facade so the loom models
// in `tests/loom.rs` exercise exactly this code (DESIGN.md §3.14).
use rjms_conc::sync::atomic::{AtomicU64, Ordering};
use rjms_conc::sync::{Arc, Mutex, OnceLock};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Producer buckets tracked before the gate stops allocating new ones
/// (protects the map from unbounded producer-id churn; overflow producers
/// are only subject to the global gate).
const MAX_TRACKED_PRODUCERS: usize = 8192;

/// The typed result of one admission decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionOutcome {
    /// The publish may proceed.
    Granted,
    /// Over budget, but capacity is expected back: retry after the hint.
    Deferred {
        /// Priority class the message mapped to (0 = lowest).
        class: u8,
        /// How long until the bucket is expected to admit this class.
        retry_after: Duration,
    },
    /// Over budget and below this class's reserve: the message is dropped
    /// to protect higher classes. Only non-top classes are ever shed.
    Shed {
        /// Priority class the message mapped to (0 = lowest).
        class: u8,
    },
}

impl AdmissionOutcome {
    /// True for [`AdmissionOutcome::Granted`].
    pub fn is_granted(&self) -> bool {
        matches!(self, Self::Granted)
    }
}

/// Per-class decision counters.
#[derive(Debug, Default)]
struct ClassCounters {
    granted: AtomicU64,
    deferred: AtomicU64,
    shed: AtomicU64,
}

/// Registry instruments bound by [`FlowGate::bind_registry`].
struct Instruments {
    /// Per-class admission-decision latency histograms (nanoseconds).
    decision_ns: Vec<Arc<Histogram>>,
    /// Per-class outcome counters as labeled Prometheus series.
    granted: Vec<Arc<Counter>>,
    deferred: Vec<Arc<Counter>>,
    shed: Vec<Arc<Counter>>,
    /// Unlabeled aggregate outcome counters. These are what the obs
    /// history rings record, so `rjms-top` can plot grant/shed *rates* on
    /// the same timeline as W99 without summing label series.
    granted_total: Arc<Counter>,
    deferred_total: Arc<Counter>,
    shed_total: Arc<Counter>,
}

/// Point-in-time view of one priority class, for `/flow` exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassSnapshot {
    /// Class index (0 = lowest priority, shed first).
    pub class: u8,
    /// Publishes admitted.
    pub granted: u64,
    /// Publishes deferred with a retry hint.
    pub deferred: u64,
    /// Publishes shed.
    pub shed: u64,
}

/// Point-in-time view of the whole gate, for `/flow` exposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSnapshot {
    /// Current arrival-rate budget, messages per second.
    pub lambda_max: f64,
    /// Utilization ceiling behind the budget.
    pub rho_max: f64,
    /// Configured `W99` objective, seconds.
    pub w99_objective: f64,
    /// Inversion headroom factor.
    pub headroom: f64,
    /// Where the budget came from (`analytic`, `measured`, `tightened`).
    pub source: &'static str,
    /// Budget refreshes applied since start.
    pub refreshes: u64,
    /// Number of priority classes.
    pub classes: u8,
    /// Global bucket level, tokens.
    pub bucket_level: f64,
    /// Global bucket ceiling, tokens.
    pub bucket_burst: f64,
    /// Credit window granted to `FEATURE_FLOW` connections.
    pub credit_window: u32,
    /// Producer buckets currently tracked.
    pub producers: u64,
    /// Per-class outcome counters.
    pub per_class: Vec<ClassSnapshot>,
}

/// The admission gate. See the [module docs](self) and the
/// [crate docs](crate).
///
/// # Examples
///
/// ```
/// use rjms_flow::{AdmissionOutcome, FlowConfig, FlowGate};
///
/// let gate = FlowGate::new(FlowConfig::default());
/// // A full bucket admits the first message of any class.
/// assert!(gate.admit(1, 0, false).is_granted());
/// assert!(gate.snapshot().per_class[0].granted >= 1);
/// ```
pub struct FlowGate {
    config: FlowConfig,
    controller: FlowController,
    global: Mutex<TokenBucket>,
    producers: Mutex<HashMap<u64, TokenBucket>>,
    counters: Vec<ClassCounters>,
    instruments: OnceLock<Instruments>,
    epoch: Instant,
}

impl std::fmt::Debug for FlowGate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlowGate")
            .field("lambda_max", &self.controller.lambda_max())
            .field("classes", &self.config.classes)
            .finish_non_exhaustive()
    }
}

impl FlowGate {
    /// Builds a gate from the config: runs the initial analytic inversion
    /// and fills the global bucket.
    pub fn new(config: FlowConfig) -> Self {
        let controller = FlowController::new(&config);
        let lambda = controller.lambda_max();
        let global = TokenBucket::new(lambda, burst_for(lambda, &config));
        let counters = (0..config.classes).map(|_| ClassCounters::default()).collect();
        Self {
            config,
            controller,
            global: Mutex::new(global),
            producers: Mutex::new(HashMap::new()),
            counters,
            instruments: OnceLock::new(),
            epoch: Instant::now(),
        }
    }

    /// The gate's configuration.
    pub fn config(&self) -> &FlowConfig {
        &self.config
    }

    /// The budget controller.
    pub fn controller(&self) -> &FlowController {
        &self.controller
    }

    /// Current arrival-rate budget, messages per second.
    pub fn lambda_max(&self) -> f64 {
        self.controller.lambda_max()
    }

    /// Maps a JMS priority (0–9) to a class index; durable/persistent
    /// publishes are pinned to the top class regardless of priority.
    pub fn class_of(&self, priority: u8, durable: bool) -> u8 {
        let k = self.config.classes;
        if durable {
            return k - 1;
        }
        (u16::from(priority.min(9)) * u16::from(k) / 10) as u8
    }

    /// Admission decision on the gate's own monotone clock.
    pub fn admit(&self, producer: u64, priority: u8, durable: bool) -> AdmissionOutcome {
        let started = Instant::now();
        let now_ns = (started - self.epoch).as_nanos() as u64;
        let outcome = self.admit_at(producer, priority, durable, now_ns);
        if let Some(instruments) = self.instruments.get() {
            let class = usize::from(self.class_of(priority, durable));
            instruments.decision_ns[class].record(started.elapsed().as_nanos() as u64);
            let (counter, total) = match outcome {
                AdmissionOutcome::Granted => {
                    (&instruments.granted[class], &instruments.granted_total)
                }
                AdmissionOutcome::Deferred { .. } => {
                    (&instruments.deferred[class], &instruments.deferred_total)
                }
                AdmissionOutcome::Shed { .. } => {
                    (&instruments.shed[class], &instruments.shed_total)
                }
            };
            counter.inc();
            total.inc();
        }
        outcome
    }

    /// Admission decision with a caller-supplied clock (nanoseconds on
    /// any monotone axis). Deterministic: this is the entry point the
    /// overload test and the property tests drive.
    pub fn admit_at(
        &self,
        producer: u64,
        priority: u8,
        durable: bool,
        now_ns: u64,
    ) -> AdmissionOutcome {
        let class = self.class_of(priority, durable);
        let k = self.config.classes;
        let outcome = {
            let mut global = self.global.lock().unwrap();
            global.refill(now_ns);
            let mut producers = self.producers.lock().unwrap();
            if !producers.contains_key(&producer) && producers.len() < MAX_TRACKED_PRODUCERS {
                producers.insert(producer, self.producer_bucket());
            }
            let mut producer_bucket = producers.get_mut(&producer);
            let producer_ready = match producer_bucket.as_mut() {
                Some(bucket) => {
                    bucket.refill(now_ns);
                    bucket.level() >= 1.0
                }
                None => true,
            };
            // Class c may only draw while the global fill fraction is at
            // or above its reserve threshold. The class policy dominates:
            // the per-producer cap only converts an otherwise-grantable
            // publish into a defer, it never turns one into a shed.
            let reserve = f64::from(k - 1 - class) / f64::from(k);
            if global.level() >= 1.0 && global.fill_fraction() >= reserve {
                if producer_ready {
                    global.try_take(now_ns);
                    if let Some(bucket) = producer_bucket {
                        bucket.try_take(now_ns);
                    }
                    AdmissionOutcome::Granted
                } else {
                    let retry = producer_bucket.map(|b| b.nanos_until(1.0)).unwrap_or(0);
                    AdmissionOutcome::Deferred { class, retry_after: clamp_retry(retry) }
                }
            } else if class == k - 1 {
                // Top class (durable/persistent): never shed.
                let retry = global.nanos_until(1.0);
                AdmissionOutcome::Deferred { class, retry_after: clamp_retry(retry) }
            } else if class == 0 || global.fill_fraction() < reserve / 2.0 {
                AdmissionOutcome::Shed { class }
            } else {
                let target = reserve * global.burst() + 1.0;
                let retry = global.nanos_until(target);
                AdmissionOutcome::Deferred { class, retry_after: clamp_retry(retry) }
            }
        };
        let counters = &self.counters[usize::from(class)];
        match outcome {
            AdmissionOutcome::Granted => counters.granted.fetch_add(1, Ordering::Relaxed),
            AdmissionOutcome::Deferred { .. } => counters.deferred.fetch_add(1, Ordering::Relaxed),
            AdmissionOutcome::Shed { .. } => counters.shed.fetch_add(1, Ordering::Relaxed),
        };
        outcome
    }

    /// Feeds a drift verdict to the controller; if the budget changed,
    /// re-rates the global and producer buckets.
    pub fn refresh(&self, verdict: &ModelVerdict) {
        if let Some(lambda) = self.controller.refresh(verdict) {
            self.apply_rate(lambda);
        }
    }

    /// Re-seeds the controller's analytic model with a measured
    /// per-message store cost (seconds); if that immediately changed the
    /// budget, re-rates the buckets (see
    /// [`FlowController::reseed_store_cost`]).
    pub fn reseed_store_cost(&self, t_store: f64) {
        if let Some(lambda) = self.controller.reseed_store_cost(t_store) {
            self.apply_rate(lambda);
        }
    }

    /// Applies a new aggregate budget to the global and producer buckets.
    fn apply_rate(&self, lambda: f64) {
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        self.global.lock().unwrap().set_rate(lambda, now_ns);
        let producer_rate = lambda * self.config.producer_share;
        for bucket in self.producers.lock().unwrap().values_mut() {
            bucket.set_rate(producer_rate, now_ns);
        }
    }

    /// Registers per-class decision-latency histograms and outcome
    /// counters (as labeled Prometheus series) in `registry`. The broker
    /// calls this when metrics are enabled. The first binding wins: the
    /// instruments sit on the publish hot path behind a lock-free
    /// [`OnceLock`], so they cannot be rebound.
    pub fn bind_registry(&self, registry: &MetricsRegistry) {
        let per_class = |base: &str| -> Vec<Arc<Counter>> {
            (0..self.config.classes)
                .map(|c| registry.counter(&labeled(base, &[("class", &c.to_string())])))
                .collect()
        };
        let decision_ns = (0..self.config.classes)
            .map(|c| registry.histogram(&labeled("flow.decision_ns", &[("class", &c.to_string())])))
            .collect();
        let _ = self.instruments.set(Instruments {
            decision_ns,
            granted: per_class("flow.granted"),
            deferred: per_class("flow.deferred"),
            shed: per_class("flow.shed"),
            granted_total: registry.counter("flow.granted"),
            deferred_total: registry.counter("flow.deferred"),
            shed_total: registry.counter("flow.shed"),
        });
    }

    /// Point-in-time view for the `/flow` endpoint and the dashboard.
    pub fn snapshot(&self) -> FlowSnapshot {
        let (bucket_level, bucket_burst) = {
            let mut global = self.global.lock().unwrap();
            global.refill(self.epoch.elapsed().as_nanos() as u64);
            (global.level(), global.burst())
        };
        FlowSnapshot {
            lambda_max: self.controller.lambda_max(),
            rho_max: self.controller.rho_max(),
            w99_objective: self.controller.objective(),
            headroom: self.controller.headroom(),
            source: self.controller.source().as_str(),
            refreshes: self.controller.refreshes(),
            classes: self.config.classes,
            bucket_level,
            bucket_burst,
            credit_window: self.config.credit_window,
            producers: self.producers.lock().unwrap().len() as u64,
            per_class: self
                .counters
                .iter()
                .enumerate()
                .map(|(class, c)| ClassSnapshot {
                    class: class as u8,
                    granted: c.granted.load(Ordering::Relaxed),
                    deferred: c.deferred.load(Ordering::Relaxed),
                    shed: c.shed.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    fn producer_bucket(&self) -> TokenBucket {
        let rate = self.controller.lambda_max() * self.config.producer_share;
        TokenBucket::new(rate, burst_for(rate, &self.config))
    }
}

/// Bucket depth for a given rate: `burst_seconds` worth of tokens,
/// floored so every class's reserve band can hold at least one token.
fn burst_for(rate: f64, config: &FlowConfig) -> f64 {
    (rate * config.burst_seconds).max(f64::from(config.classes))
}

/// Retry hints stay in a sane band regardless of bucket geometry.
fn clamp_retry(nanos: u64) -> Duration {
    Duration::from_nanos(nanos.clamp(1_000_000, 1_000_000_000))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate() -> FlowGate {
        // Tight objective so lambda_max is small and tests drain the
        // bucket quickly; one producer share disables per-producer caps.
        FlowGate::new(FlowConfig::default().w99_objective(0.002).headroom(1.0).producer_share(1.0))
    }

    #[test]
    fn class_mapping_is_proportional_and_durable_pins_top() {
        let g = gate(); // 3 classes
        assert_eq!(g.class_of(0, false), 0);
        assert_eq!(g.class_of(3, false), 0);
        assert_eq!(g.class_of(4, false), 1);
        assert_eq!(g.class_of(6, false), 1);
        assert_eq!(g.class_of(7, false), 2);
        assert_eq!(g.class_of(9, false), 2);
        assert_eq!(g.class_of(0, true), 2);
        assert_eq!(g.class_of(15, false), 2); // out-of-range clamps
    }

    #[test]
    fn drained_bucket_sheds_low_class_first_and_never_sheds_top() {
        let g = gate();
        // Drain the whole bucket with top-class messages at t=0.
        let mut granted = 0u64;
        while g.admit_at(1, 9, false, 0).is_granted() {
            granted += 1;
        }
        assert!(granted >= 1);
        // Low class is locked out well before the bucket empties, so at
        // empty it is shed; the top class is deferred, never shed.
        assert!(matches!(g.admit_at(1, 0, false, 0), AdmissionOutcome::Shed { class: 0 }));
        assert!(matches!(g.admit_at(1, 9, false, 0), AdmissionOutcome::Deferred { class: 2, .. }));
        assert!(matches!(g.admit_at(1, 0, true, 0), AdmissionOutcome::Deferred { class: 2, .. }));
    }

    #[test]
    fn low_class_locks_out_before_high_class() {
        let g = gate();
        // Drain until the fill fraction drops below the class-0 reserve
        // (2/3): class 0 blocked, class 2 still granted.
        let burst = g.global.lock().unwrap().burst();
        let to_drain = (burst / 2.0).ceil() as u64; // fill ~0.5 < 2/3
        for _ in 0..to_drain {
            assert!(g.admit_at(1, 9, false, 0).is_granted());
        }
        assert!(!g.admit_at(1, 0, false, 0).is_granted());
        assert!(g.admit_at(1, 9, false, 0).is_granted());
    }

    #[test]
    fn producer_share_defers_a_hog_while_others_proceed() {
        let g = FlowGate::new(
            FlowConfig::default().w99_objective(0.01).headroom(1.0).producer_share(0.1),
        );
        // Producer 1 exhausts its 10% share; producer 2 is still granted.
        let mut outcome = g.admit_at(1, 9, false, 0);
        while outcome.is_granted() {
            outcome = g.admit_at(1, 9, false, 0);
        }
        assert!(matches!(outcome, AdmissionOutcome::Deferred { .. }));
        assert!(g.admit_at(2, 9, false, 0).is_granted());
    }

    #[test]
    fn counters_partition_offered_load() {
        let g = gate();
        let offered = 5000u64;
        for i in 0..offered {
            g.admit_at(i % 7, (i % 10) as u8, false, i * 1_000);
        }
        let snap = g.snapshot();
        let total: u64 = snap.per_class.iter().map(|c| c.granted + c.deferred + c.shed).sum();
        assert_eq!(total, offered);
    }

    #[test]
    fn bound_on_tracked_producers_holds() {
        let g = gate();
        for producer in 0..(MAX_TRACKED_PRODUCERS as u64 + 100) {
            g.admit_at(producer, 9, false, u64::MAX / 2);
        }
        assert!(g.snapshot().producers <= MAX_TRACKED_PRODUCERS as u64);
    }

    #[test]
    fn registry_binding_mirrors_decisions() {
        let registry = MetricsRegistry::new();
        let g = gate();
        g.bind_registry(&registry);
        assert!(g.admit(1, 9, false).is_granted());
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("flow.granted{class=\"2\"}"), Some(&1));
        assert!(snap.histogram("flow.decision_ns{class=\"2\"}").is_some());
        // Unlabeled aggregates track the same decisions for the history
        // rings (the rjms-top sheds timeline).
        assert_eq!(snap.counters.get("flow.granted"), Some(&1));
        assert_eq!(snap.counters.get("flow.shed"), Some(&0));
        assert_eq!(snap.counters.get("flow.deferred"), Some(&0));
    }
}
