//! # rjms-flow — model-driven admission control and flow control
//!
//! The paper's Eq. 1 waiting-time model tells us, *before* the queue melts
//! down, what offered load the broker can absorb while keeping `W99` inside
//! a target. This crate closes that loop: instead of only *measuring* the
//! waiting time (rjms-metrics, rjms-obs), it *acts* on the model by
//! refusing work the model says would violate the objective.
//!
//! Three layers:
//!
//! * [`FlowController`] inverts the `M/GI/1-∞` waiting-time predictor: for
//!   the current service-time calibration `B` and a configured `W99`
//!   objective it computes the largest utilization `ρ_max` whose predicted
//!   99th waiting-time percentile stays inside the objective, and from it
//!   the maximum sustainable arrival rate `λ_max = ρ_max / E[B]`. Live
//!   [`ModelVerdict`]s from the drift monitor feed back into the budget: a
//!   drifting model re-inverts with the *measured* service moments (a
//!   slower server tightens `λ_max`), an overloaded verdict applies an
//!   emergency multiplicative cut, and a calibrated verdict restores the
//!   analytic budget.
//! * [`FlowGate`] enforces the budget: a global [`TokenBucket`] refilled at
//!   `λ_max`, per-producer buckets at a configurable share, and priority
//!   classes that shed the lowest class first while the top (durable /
//!   persistent) class is deferred but never shed. Every decision is a
//!   typed [`AdmissionOutcome`].
//! * [`CreditWindow`] / [`CreditBalance`] carry the server- and client-side
//!   halves of the credit-based wire flow control that rjms-net layers on
//!   top (`FEATURE_FLOW`, CreditGrant / PublishDenied opcodes).
//!
//! The broker wires a gate in behind `BrokerConfig::flow`; embedded users
//! can drive a [`FlowGate`] directly with a deterministic clock via
//! [`FlowGate::admit_at`], which is how the overload integration test and
//! the property tests exercise it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bucket;
pub mod config;
pub mod controller;
pub mod credit;
pub mod gate;

pub use bucket::TokenBucket;
pub use config::FlowConfig;
pub use controller::{CalibrationSource, FlowController};
pub use credit::{CreditBalance, CreditWindow};
pub use gate::{AdmissionOutcome, ClassSnapshot, FlowGate, FlowSnapshot};

// Re-exported so callers configuring a gate don't need a direct rjms-core
// dependency for the verdict type they feed into `FlowGate::refresh`.
pub use rjms_core::ModelVerdict;
