//! Credit accounting for the wire-level flow control.
//!
//! rjms-net negotiates `FEATURE_FLOW` in the Hello handshake; the server
//! then meters a client's publish stream with a credit window. The two
//! halves of the bookkeeping live here, free of any I/O, so the
//! invariants (credits never go negative, replenishment grants exactly
//! what was consumed) are property-testable in isolation:
//!
//! * [`CreditWindow`] — server side, one per connection: counts admitted
//!   publishes and emits a replenishment grant every half-window.
//! * [`CreditBalance`] — client side: tracks granted minus consumed. A
//!   balance that has never received a grant is *inactive* (the server is
//!   pre-flow or flow is disabled) and admits everything.

/// Server-side per-connection credit window.
///
/// The server sends an initial grant of the full window right after the
/// handshake, then one replenishment grant per consumed half-window, so a
/// well-behaved client's balance oscillates in `[window/2, window]` and
/// in-flight credit never exceeds `window`.
///
/// # Examples
///
/// ```
/// use rjms_flow::CreditWindow;
///
/// let mut window = CreditWindow::new(8);
/// assert_eq!(window.initial_grant(), 8);
/// let grants: Vec<_> = (0..8).filter_map(|_| window.consume()).collect();
/// // Two half-window replenishments over one full window.
/// assert_eq!(grants, vec![4, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreditWindow {
    window: u32,
    consumed: u32,
}

impl CreditWindow {
    /// Creates a window of the given size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn new(window: u32) -> Self {
        assert!(window > 0, "credit window must be > 0");
        Self { window, consumed: 0 }
    }

    /// The grant to send right after the handshake.
    pub fn initial_grant(&self) -> u32 {
        self.window
    }

    /// Records one admitted publish. Returns `Some(grant)` when the
    /// half-window threshold is crossed: the server should send a
    /// CreditGrant for exactly that many credits (what was consumed since
    /// the last grant), restoring the client to a full window.
    pub fn consume(&mut self) -> Option<u32> {
        self.consumed += 1;
        if self.consumed >= self.window.div_ceil(2) {
            let grant = self.consumed;
            self.consumed = 0;
            Some(grant)
        } else {
            None
        }
    }

    /// Publishes consumed since the last replenishment.
    pub fn consumed(&self) -> u32 {
        self.consumed
    }
}

/// Client-side credit balance.
///
/// Starts *inactive*: until the first CreditGrant arrives the client
/// cannot know whether the server runs flow control at all, so every
/// publish is admitted. The first grant activates metering.
///
/// # Examples
///
/// ```
/// use rjms_flow::CreditBalance;
///
/// let mut balance = CreditBalance::new();
/// assert!(balance.try_consume()); // inactive: unlimited
/// balance.grant(2);
/// assert!(balance.try_consume());
/// assert!(balance.try_consume());
/// assert!(!balance.try_consume()); // exhausted, wait for a grant
/// assert_eq!(balance.available(), Some(0));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CreditBalance {
    credits: Option<u64>,
    granted: u64,
    consumed: u64,
}

impl CreditBalance {
    /// Creates an inactive balance (no grant seen yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// True once a grant has activated metering.
    pub fn active(&self) -> bool {
        self.credits.is_some()
    }

    /// Adds `credits` from a CreditGrant frame, activating the balance.
    pub fn grant(&mut self, credits: u32) {
        self.granted += u64::from(credits);
        *self.credits.get_or_insert(0) += u64::from(credits);
    }

    /// Takes one credit. Always succeeds while inactive; once active,
    /// fails (without going negative) when the balance is exhausted.
    pub fn try_consume(&mut self) -> bool {
        match &mut self.credits {
            None => true,
            Some(credits) => {
                if *credits == 0 {
                    false
                } else {
                    *credits -= 1;
                    self.consumed += 1;
                    true
                }
            }
        }
    }

    /// Remaining credits, or `None` while inactive (unlimited).
    pub fn available(&self) -> Option<u64> {
        self.credits
    }

    /// Total credits ever granted.
    pub fn total_granted(&self) -> u64 {
        self.granted
    }

    /// Total credits ever consumed.
    pub fn total_consumed(&self) -> u64 {
        self.consumed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_replenishes_exactly_what_was_consumed() {
        let mut w = CreditWindow::new(10);
        let mut granted = u64::from(w.initial_grant());
        let mut consumed = 0u64;
        for _ in 0..1000 {
            consumed += 1;
            if let Some(g) = w.consume() {
                granted += u64::from(g);
            }
        }
        // Outstanding client balance = granted - consumed, always in
        // (0, window].
        let balance = granted - consumed;
        assert!(balance > 0 && balance <= 10, "balance {balance} escaped the window");
    }

    #[test]
    fn odd_window_rounds_the_threshold_up() {
        let mut w = CreditWindow::new(1);
        // Threshold ceil(1/2) = 1: every consume replenishes immediately.
        assert_eq!(w.consume(), Some(1));
        assert_eq!(w.consume(), Some(1));
    }

    #[test]
    fn balance_is_unlimited_until_first_grant() {
        let mut b = CreditBalance::new();
        assert!(!b.active());
        for _ in 0..100 {
            assert!(b.try_consume());
        }
        assert_eq!(b.available(), None);
        b.grant(1);
        assert!(b.active());
        assert!(b.try_consume());
        assert!(!b.try_consume());
        assert_eq!(b.available(), Some(0));
        assert_eq!(b.total_consumed(), 1);
    }

    #[test]
    #[should_panic(expected = "credit window")]
    fn zero_window_panics() {
        CreditWindow::new(0);
    }
}
