//! A token bucket with a caller-supplied clock.
//!
//! The bucket is the mechanical half of admission control: the
//! [`FlowController`](crate::FlowController) turns the waiting-time model
//! into a rate `λ_max`, and the bucket meters arrivals against it with a
//! bounded burst allowance. Time is passed in explicitly (nanoseconds on
//! any monotone axis), so tests drive the bucket deterministically and the
//! gate feeds it a single `Instant`-derived epoch in production.

/// A token bucket refilled continuously at `rate` tokens per second up to
/// a `burst` ceiling.
///
/// Invariants (property-tested in `tests/invariants_prop.rs`):
///
/// * the token level always stays in `[0, burst]`,
/// * refill is monotone in time — a clock that jumps backwards is ignored,
///   never refunded,
/// * [`try_take`](Self::try_take) only succeeds when a whole token is
///   available, so the level never goes negative.
///
/// # Examples
///
/// ```
/// use rjms_flow::TokenBucket;
///
/// let mut bucket = TokenBucket::new(1000.0, 10.0); // 1k/s, burst of 10
/// for _ in 0..10 {
///     assert!(bucket.try_take(0)); // burst drains the full bucket
/// }
/// assert!(!bucket.try_take(0)); // empty: over budget
/// assert!(bucket.try_take(1_000_000)); // 1 ms later one token is back
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive, or `burst < 1` (a
    /// bucket that can never hold a whole token can never admit anything).
    pub fn new(rate: f64, burst: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "token rate must be finite and > 0, got {rate}");
        assert!(burst.is_finite() && burst >= 1.0, "burst must be finite and >= 1, got {burst}");
        Self { rate, burst, tokens: burst, last_ns: 0 }
    }

    /// Credits tokens for the time elapsed since the last refill. A
    /// `now_ns` at or before the last observed time is a no-op.
    pub fn refill(&mut self, now_ns: u64) {
        if now_ns > self.last_ns {
            let dt = (now_ns - self.last_ns) as f64 * 1e-9;
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
            self.last_ns = now_ns;
        }
    }

    /// Refills to `now_ns`, then takes one token if a whole one is
    /// available.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Current token level (call [`refill`](Self::refill) first for an
    /// up-to-date reading).
    pub fn level(&self) -> f64 {
        self.tokens
    }

    /// The burst ceiling.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// The refill rate in tokens per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Fraction of the burst ceiling currently filled, in `[0, 1]`.
    pub fn fill_fraction(&self) -> f64 {
        self.tokens / self.burst
    }

    /// Swaps the refill rate (budget refresh). Elapsed time is credited at
    /// the *old* rate first so the change never retro-credits the past.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not finite and positive.
    pub fn set_rate(&mut self, rate: f64, now_ns: u64) {
        assert!(rate.is_finite() && rate > 0.0, "token rate must be finite and > 0, got {rate}");
        self.refill(now_ns);
        self.rate = rate;
    }

    /// Nanoseconds until the level reaches `target` tokens at the current
    /// rate (0 if already there). Used to compute `retry_after` hints.
    pub fn nanos_until(&self, target: f64) -> u64 {
        let deficit = target.min(self.burst) - self.tokens;
        if deficit <= 0.0 {
            0
        } else {
            (deficit / self.rate * 1e9).ceil() as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_caps_at_burst() {
        let mut b = TokenBucket::new(100.0, 5.0);
        assert_eq!(b.level(), 5.0);
        b.refill(10_000_000_000); // 10 s cannot overfill
        assert_eq!(b.level(), 5.0);
        assert_eq!(b.fill_fraction(), 1.0);
    }

    #[test]
    fn drains_and_refills_at_rate() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        assert!(!b.try_take(0));
        // 1 ms at 1000/s = exactly one token.
        assert!(b.try_take(1_000_000));
        assert!(!b.try_take(1_000_000));
    }

    #[test]
    fn backwards_clock_is_ignored() {
        let mut b = TokenBucket::new(1000.0, 4.0);
        assert!(b.try_take(2_000_000));
        let level = b.level();
        b.refill(1_000_000); // earlier than last seen
        assert_eq!(b.level(), level);
    }

    #[test]
    fn set_rate_credits_the_past_at_the_old_rate() {
        let mut b = TokenBucket::new(1000.0, 10.0);
        for _ in 0..10 {
            assert!(b.try_take(0));
        }
        // 1 ms elapsed at the old 1000/s rate = 1 token, even though the
        // new rate is 1M/s.
        b.set_rate(1_000_000.0, 1_000_000);
        assert!((b.level() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nanos_until_inverts_the_rate() {
        let mut b = TokenBucket::new(1000.0, 2.0);
        assert!(b.try_take(0));
        assert!(b.try_take(0));
        // Empty; 2 tokens at 1000/s is 2 ms.
        assert_eq!(b.nanos_until(2.0), 2_000_000);
        assert_eq!(b.nanos_until(0.0), 0);
    }

    #[test]
    #[should_panic(expected = "token rate")]
    fn zero_rate_panics() {
        TokenBucket::new(0.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "burst")]
    fn sub_token_burst_panics() {
        TokenBucket::new(10.0, 0.5);
    }
}
