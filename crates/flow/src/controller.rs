//! Inverting the waiting-time model into an arrival-rate budget.
//!
//! Eq. 1 gives the mean service time `E[B] = t_rcv + n_fltr·t_fltr +
//! E[R]·t_tx`; the `M/GI/1-∞` machinery (Eqs. 4–20) turns `(B, ρ)` into a
//! waiting-time distribution. The controller runs that machinery
//! *backwards*: given a `W99` objective it finds, by bisection over `ρ`
//! (see [`max_utilization_for_quantile`]), the largest utilization whose
//! predicted 99th percentile still fits, and publishes the corresponding
//! arrival-rate budget `λ_max = ρ_max / E[B]`.
//!
//! The budget is not static. [`FlowController::refresh`] consumes the
//! drift verdicts produced by [`ModelMonitor`](rjms_core::ModelMonitor):
//!
//! * `Calibrated` — the live broker matches the analytic model; the
//!   budget returns to (or stays at) the analytic inversion.
//! * `Drift` — the measured service moments disagree with the model; the
//!   controller re-inverts with a service time rebuilt from the *measured*
//!   `E[B]` and `c_var[B]`, so a slower or more variable server
//!   automatically tightens `λ_max`.
//! * `Overloaded` — the measured operating point is at or past `ρ = 1`
//!   and no finite prediction exists; the budget takes a multiplicative
//!   emergency cut (floored so it can recover).
//! * `Insufficient` — not enough samples; the budget is left alone.

use crate::config::FlowConfig;
use rjms_core::{
    max_utilization_for_quantile, CostParams, ModelVerdict, ReplicationModel, ServerModel,
    ServiceTime,
};
use serde::{Deserialize, Serialize};
use std::sync::Mutex;

/// Where the current `λ_max` came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CalibrationSource {
    /// The analytic model at the configured cost constants.
    Analytic,
    /// Re-inverted from measured service moments after a drift verdict.
    Measured,
    /// Emergency multiplicative cut after an overloaded verdict.
    Tightened,
}

impl CalibrationSource {
    /// Stable lowercase name for JSON exposition.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Analytic => "analytic",
            Self::Measured => "measured",
            Self::Tightened => "tightened",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ControllerState {
    rho_max: f64,
    lambda_max: f64,
    source: CalibrationSource,
    refreshes: u64,
}

/// The analytic seed model the calibrated/overloaded verdicts fall back
/// to. Kept behind its own lock so the measured journal cost can re-seed
/// it at runtime (see [`FlowController::reseed_store_cost`]).
#[derive(Debug)]
struct SeedModel {
    /// Eq. 1 service time at the seeded cost constants.
    analytic: ServiceTime,
    /// Aggregate `λ_max` of the analytic inversion: the recovery ceiling
    /// and the floor (times [`FlowController::TIGHTEN_FLOOR`]) for
    /// emergency cuts.
    analytic_lambda: f64,
    /// The `t_store` currently baked into `analytic`.
    t_store: f64,
}

/// Computes and maintains the maximum sustainable arrival rate `λ_max`
/// for a `W99` objective. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use rjms_flow::{FlowConfig, FlowController};
///
/// let controller = FlowController::new(&FlowConfig::default());
/// // A finite budget exists for any positive objective.
/// assert!(controller.lambda_max() > 0.0);
/// assert!(controller.rho_max() <= 0.999);
/// ```
#[derive(Debug)]
pub struct FlowController {
    /// Inversion target: `w99_objective / headroom`, seconds.
    target: f64,
    objective: f64,
    headroom: f64,
    overload_tighten: f64,
    /// Seed cost constants (without `t_store`, which the seed model
    /// tracks) and operating point, kept so the seed can be rebuilt when
    /// the measured journal cost arrives.
    params: CostParams,
    filters: u32,
    replication_grade: f64,
    seed: Mutex<SeedModel>,
    /// Number of dispatcher shards sharing the budget. Each shard is one
    /// M/GI/1 server held at `rho_max`, so every inversion's per-server
    /// rate is multiplied by this to form the aggregate budget.
    shards: f64,
    state: Mutex<ControllerState>,
}

impl FlowController {
    /// Emergency cuts never push `λ_max` below this fraction of the
    /// analytic budget, so the gate keeps admitting a trickle and the
    /// monitor can gather the samples needed to recover.
    const TIGHTEN_FLOOR: f64 = 0.05;

    /// Builds the controller from the seed model in `config` and performs
    /// the initial analytic inversion.
    pub fn new(config: &FlowConfig) -> Self {
        let analytic = ServerModel::new(config.params, config.filters)
            .service_time(ReplicationModel::deterministic(config.replication_grade));
        let target = config.w99_objective / config.headroom;
        let shards = config.shards.max(1) as f64;
        let (rho_max, per_shard) = invert(&analytic, target);
        let lambda_max = per_shard * shards;
        Self {
            target,
            objective: config.w99_objective,
            headroom: config.headroom,
            overload_tighten: config.overload_tighten,
            params: config.params,
            filters: config.filters,
            replication_grade: config.replication_grade,
            seed: Mutex::new(SeedModel {
                analytic,
                analytic_lambda: lambda_max,
                t_store: config.params.t_store,
            }),
            shards,
            state: Mutex::new(ControllerState {
                rho_max,
                lambda_max,
                source: CalibrationSource::Analytic,
                refreshes: 0,
            }),
        }
    }

    /// The maximum sustainable arrival rate, messages per second.
    pub fn lambda_max(&self) -> f64 {
        self.state.lock().unwrap().lambda_max
    }

    /// The utilization ceiling behind the current `λ_max`.
    pub fn rho_max(&self) -> f64 {
        self.state.lock().unwrap().rho_max
    }

    /// The configured `W99` objective, seconds.
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// The inversion headroom factor.
    pub fn headroom(&self) -> f64 {
        self.headroom
    }

    /// Where the current budget came from.
    pub fn source(&self) -> CalibrationSource {
        self.state.lock().unwrap().source
    }

    /// How many verdicts have changed the budget since construction.
    pub fn refreshes(&self) -> u64 {
        self.state.lock().unwrap().refreshes
    }

    /// Feeds one drift verdict into the budget. Returns the new `λ_max`
    /// if the verdict changed it, `None` if the budget was left alone.
    pub fn refresh(&self, verdict: &ModelVerdict) -> Option<f64> {
        let mut state = self.state.lock().unwrap();
        let (rho, lambda, source) = match verdict {
            ModelVerdict::Insufficient { .. } => return None,
            ModelVerdict::Calibrated(_) => {
                let seed = self.seed.lock().unwrap();
                let (rho, lambda) = invert(&seed.analytic, self.target);
                (rho, lambda * self.shards, CalibrationSource::Analytic)
            }
            ModelVerdict::Drift(report) => {
                let m = &report.measured;
                let service = measured_service(m.mean_service_time, m.service_cvar)?;
                let (rho, lambda) = invert(&service, self.target);
                (rho, lambda * self.shards, CalibrationSource::Measured)
            }
            ModelVerdict::Overloaded { .. } => {
                let floor = self.seed.lock().unwrap().analytic_lambda * Self::TIGHTEN_FLOOR;
                let cut = (state.lambda_max * self.overload_tighten).max(floor);
                (state.rho_max, cut, CalibrationSource::Tightened)
            }
            // `ModelVerdict` is non_exhaustive: unknown future verdicts
            // leave the budget untouched.
            _ => return None,
        };
        if lambda == state.lambda_max && source == state.source {
            return None;
        }
        state.rho_max = rho;
        state.lambda_max = lambda;
        state.source = source;
        state.refreshes += 1;
        Some(lambda)
    }

    /// Re-seeds the analytic model with a *measured* per-message store
    /// cost (seconds) — the journal's mean append + amortized fsync time —
    /// closing Eq. 1's `t_store` term over the live system instead of a
    /// configured guess.
    ///
    /// Changes smaller than 5% of the seed's mean service time are
    /// ignored (the measurement jitters; re-inverting on every refresh
    /// would churn the budget). When the current budget *is* the analytic
    /// one, the re-seeded inversion is applied immediately and the new
    /// aggregate `λ_max` is returned; otherwise the new seed only takes
    /// effect at the next calibrated verdict and `None` is returned.
    pub fn reseed_store_cost(&self, t_store: f64) -> Option<f64> {
        if !(t_store.is_finite() && t_store >= 0.0) {
            return None;
        }
        let mut seed = self.seed.lock().unwrap();
        if (t_store - seed.t_store).abs() < 0.05 * seed.analytic.mean() {
            return None;
        }
        let analytic = ServerModel::new(self.params.with_t_store(t_store), self.filters)
            .service_time(ReplicationModel::deterministic(self.replication_grade));
        let (rho, per_shard) = invert(&analytic, self.target);
        let lambda = per_shard * self.shards;
        seed.analytic = analytic;
        seed.analytic_lambda = lambda;
        seed.t_store = t_store;
        drop(seed);

        let mut state = self.state.lock().unwrap();
        if state.source != CalibrationSource::Analytic || state.lambda_max == lambda {
            return None;
        }
        state.rho_max = rho;
        state.lambda_max = lambda;
        state.refreshes += 1;
        Some(lambda)
    }

    /// The `t_store` currently baked into the analytic seed model,
    /// seconds: the configured value until the first
    /// [`FlowController::reseed_store_cost`], the measured one after.
    pub fn seeded_t_store(&self) -> f64 {
        self.seed.lock().unwrap().t_store
    }
}

/// The core inversion: largest `ρ` whose predicted `W99` fits `target`,
/// and the arrival rate it implies.
fn invert(service: &ServiceTime, target: f64) -> (f64, f64) {
    let rho = max_utilization_for_quantile(service, 0.99, target);
    (rho, rho / service.mean())
}

/// Rebuilds a service-time model from measured moments: `B = mean · R`
/// with `E[R] = 1` and `Var[R] = c_var²` moment-matched onto a scaled
/// Bernoulli. Returns `None` for degenerate measurements.
fn measured_service(mean: f64, cvar: f64) -> Option<ServiceTime> {
    if !(mean.is_finite() && mean > 0.0 && cvar.is_finite() && cvar >= 0.0) {
        return None;
    }
    let replication =
        ReplicationModel::scaled_bernoulli_from_moments(1.0, 1.0 + cvar * cvar).ok()?;
    Some(ServiceTime::new(0.0, mean, replication))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjms_core::ModelMonitor;
    use rjms_metrics::Histogram;
    use std::time::Duration;

    fn config() -> FlowConfig {
        FlowConfig::default().w99_objective(0.002).headroom(1.0).filters(100)
    }

    /// Builds a verdict by feeding synthetic waiting/service histograms
    /// (given in seconds) through the real monitor. The synthetic waiting
    /// samples are point masses, which no queueing distribution matches,
    /// so the waiting tolerances are disabled: the controller only reacts
    /// to *service* drift here.
    fn verdict(service_s: f64, waiting_s: f64, rate: f64) -> ModelVerdict {
        let c = config();
        let tolerance = rjms_core::DriftTolerance {
            waiting_mean: f64::INFINITY,
            waiting_q99: f64::INFINITY,
            ..Default::default()
        };
        let monitor = ModelMonitor::new(
            ServerModel::new(c.params, c.filters),
            ReplicationModel::deterministic(c.replication_grade),
        )
        .with_tolerance(tolerance);
        let waiting = Histogram::new();
        let service = Histogram::new();
        let n = 2000u64;
        for _ in 0..n {
            waiting.record((waiting_s * 1e9) as u64);
            service.record((service_s * 1e9) as u64);
        }
        let elapsed = Duration::from_secs_f64(n as f64 / rate);
        monitor.assess(&waiting.snapshot(), &service.snapshot(), elapsed)
    }

    #[test]
    fn inversion_meets_the_objective() {
        let c = config();
        let controller = FlowController::new(&c);
        let service = ServerModel::new(c.params, c.filters)
            .service_time(ReplicationModel::deterministic(c.replication_grade));
        let rho = controller.rho_max();
        assert!(rho > 0.0 && rho <= 0.999);
        // The predicted W99 at the ceiling fits the target.
        let analysis = rjms_core::WaitingTimeAnalysis::for_service_time(service, rho).unwrap();
        assert!(analysis.distribution().quantile(0.99) <= c.w99_objective / c.headroom * 1.001);
        assert!((controller.lambda_max() - rho / service.mean()).abs() < 1e-9);
    }

    #[test]
    fn sharded_budget_scales_linearly() {
        let one = FlowController::new(&config());
        let four = FlowController::new(&config().shards(4));
        // Same per-shard utilisation ceiling, 4x the aggregate rate.
        assert_eq!(one.rho_max(), four.rho_max());
        assert!((four.lambda_max() - 4.0 * one.lambda_max()).abs() < 1e-9);

        // Recalibration from a drift verdict keeps the shard multiplier.
        let c = config();
        let e_b = c.params.mean_service_time(c.filters, c.replication_grade);
        let v = verdict(3.0 * e_b, 2.0 * e_b, 0.3 / e_b);
        let one_after = one.refresh(&v).expect("drift refreshes");
        let four_after = four.refresh(&v).expect("drift refreshes");
        assert!((four_after - 4.0 * one_after).abs() < 1e-9);
    }

    #[test]
    fn tighter_objective_means_smaller_budget() {
        let loose = FlowController::new(&config().w99_objective(0.01));
        let tight = FlowController::new(&config().w99_objective(0.001));
        assert!(tight.lambda_max() < loose.lambda_max());
    }

    #[test]
    fn drift_with_slower_service_tightens_the_budget() {
        let c = config();
        let controller = FlowController::new(&c);
        let before = controller.lambda_max();
        let e_b = c.params.mean_service_time(c.filters, c.replication_grade);
        // Server measured 3x slower than the model at a modest load: the
        // monitor flags drift and the budget shrinks roughly 3x.
        let v = verdict(3.0 * e_b, 2.0 * e_b, 0.3 / e_b);
        assert!(matches!(v, ModelVerdict::Drift(_)), "expected drift, got {v:?}");
        let after = controller.refresh(&v).expect("drift must refresh the budget");
        assert!(after < before * 0.5, "budget {after} should tighten well below {before}");
        assert_eq!(controller.source(), CalibrationSource::Measured);

        // A calibrated verdict restores the analytic budget.
        let v = verdict(e_b, 0.2 * e_b, 0.3 / e_b);
        assert!(matches!(v, ModelVerdict::Calibrated(_)), "expected calibrated, got {v:?}");
        controller.refresh(&v).expect("recovery must refresh the budget");
        assert_eq!(controller.source(), CalibrationSource::Analytic);
        assert!((controller.lambda_max() - before).abs() < 1e-9);
    }

    #[test]
    fn overload_applies_emergency_cut_with_floor() {
        let c = config();
        let controller = FlowController::new(&c);
        let before = controller.lambda_max();
        let e_b = c.params.mean_service_time(c.filters, c.replication_grade);
        // Measured rho > 1: no finite prediction, budget halves.
        let v = verdict(e_b, 10.0 * e_b, 1.5 / e_b);
        assert!(matches!(v, ModelVerdict::Overloaded { .. }), "expected overload, got {v:?}");
        controller.refresh(&v).expect("overload must cut the budget");
        assert_eq!(controller.source(), CalibrationSource::Tightened);
        assert!((controller.lambda_max() - before * c.overload_tighten).abs() < 1e-9);
        // Repeated cuts bottom out at the floor instead of collapsing to 0.
        for _ in 0..64 {
            controller.refresh(&v);
        }
        assert!(controller.lambda_max() >= before * FlowController::TIGHTEN_FLOOR - 1e-9);
    }

    #[test]
    fn reseed_store_cost_tightens_analytic_budget() {
        let c = config();
        let controller = FlowController::new(&c);
        let before = controller.lambda_max();
        assert_eq!(controller.seeded_t_store(), 0.0);
        // A measured store cost comparable to E[B] roughly doubles the
        // service time; the analytic budget shrinks immediately.
        let e_b = c.params.mean_service_time(c.filters, c.replication_grade);
        let after = controller.reseed_store_cost(e_b).expect("budget must re-invert");
        assert!(after < before * 0.7, "budget {after} should tighten below {before}");
        assert_eq!(controller.seeded_t_store(), e_b);
        assert_eq!(controller.source(), CalibrationSource::Analytic);
        assert_eq!(controller.lambda_max(), after);

        // Jitter below 5% of E[B] is ignored.
        assert!(controller.reseed_store_cost(e_b * 1.01).is_none());
        assert_eq!(controller.seeded_t_store(), e_b);
        // Garbage measurements are ignored.
        assert!(controller.reseed_store_cost(f64::NAN).is_none());
        assert!(controller.reseed_store_cost(-1.0).is_none());
    }

    #[test]
    fn reseed_while_measured_waits_for_recalibration() {
        let c = config();
        let controller = FlowController::new(&c);
        let e_b = c.params.mean_service_time(c.filters, c.replication_grade);
        // Drift first: the live budget comes from measured moments.
        let v = verdict(3.0 * e_b, 2.0 * e_b, 0.3 / e_b);
        controller.refresh(&v).expect("drift refreshes");
        let measured = controller.lambda_max();

        // Re-seeding must not clobber the measured budget...
        assert!(controller.reseed_store_cost(e_b).is_none());
        assert_eq!(controller.lambda_max(), measured);
        assert_eq!(controller.source(), CalibrationSource::Measured);

        // ...but the next calibrated verdict lands on the new seed, below
        // the original store-free analytic budget.
        let analytic_free = FlowController::new(&c).lambda_max();
        let v = verdict(e_b, 0.2 * e_b, 0.3 / e_b);
        assert!(matches!(v, ModelVerdict::Calibrated(_)), "expected calibrated, got {v:?}");
        controller.refresh(&v).expect("recovery refreshes");
        assert_eq!(controller.source(), CalibrationSource::Analytic);
        assert!(controller.lambda_max() < analytic_free * 0.7);
    }

    #[test]
    fn insufficient_samples_leave_the_budget_alone() {
        let controller = FlowController::new(&config());
        let before = controller.lambda_max();
        let v = ModelVerdict::Insufficient { samples: 1, required: 1000 };
        assert!(controller.refresh(&v).is_none());
        assert_eq!(controller.lambda_max(), before);
        assert_eq!(controller.refreshes(), 0);
    }
}
