//! Configuration for the flow-control subsystem.

use rjms_core::CostParams;
use serde::{Deserialize, Serialize};

/// Configuration for model-driven admission control.
///
/// The model half (`params`, `filters`, `replication_grade`,
/// `w99_objective`, `headroom`) seeds the
/// [`FlowController`](crate::FlowController) until live drift verdicts
/// recalibrate it; the mechanism half (`classes`, `burst_seconds`,
/// `producer_share`, `credit_window`, …) shapes how the budget is
/// enforced.
///
/// # Examples
///
/// ```
/// use rjms_flow::FlowConfig;
///
/// let config = FlowConfig::default()
///     .w99_objective(0.005) // 5 ms
///     .classes(4);
/// assert_eq!(config.classes, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// `W99` objective for admitted traffic, in seconds: the 99th
    /// percentile of the waiting time the controller budgets for.
    pub w99_objective: f64,
    /// Number of dispatcher shards the admission budget is split across.
    /// Each shard is one M/GI/1 server held at the inverted utilisation,
    /// so the aggregate budget is `shards · λ_per_shard`. The broker sets
    /// this automatically from its own shard count; `1` reproduces the
    /// single-server budget exactly.
    pub shards: u32,
    /// Safety headroom applied when inverting the model: the controller
    /// targets `w99_objective / headroom`, leaving margin for burst
    /// admission and estimation error. Must be `>= 1`.
    pub headroom: f64,
    /// Number of priority classes in `1..=10`. JMS priorities 0–9 map
    /// proportionally onto classes; class 0 is shed first and the top
    /// class is deferred but never shed.
    pub classes: u8,
    /// Per-message cost constants seeding the analytic service time.
    pub params: CostParams,
    /// Assumed filter count `n_fltr` until live calibration takes over.
    pub filters: u32,
    /// Assumed replication grade `E[R]` until live calibration takes over.
    pub replication_grade: f64,
    /// Depth of the global token bucket, in seconds of `λ_max` (the burst
    /// allowance above the sustained rate).
    pub burst_seconds: f64,
    /// Per-producer cap as a share of `λ_max`, in `(0, 1]`. `1.0`
    /// effectively disables per-producer limiting (the global gate still
    /// applies).
    pub producer_share: f64,
    /// Multiplicative emergency cut applied to `λ_max` on an `Overloaded`
    /// drift verdict, in `(0, 1)`.
    pub overload_tighten: f64,
    /// How often the broker re-assesses drift and refreshes the budget,
    /// in milliseconds.
    pub refresh_interval_ms: u64,
    /// Publish credits granted per window to `FEATURE_FLOW` clients; the
    /// server replenishes at half-window.
    pub credit_window: u32,
    /// Longest total delay the compatibility throttle imposes on a
    /// pre-flow client's deferred publish before giving up with an error
    /// frame, in milliseconds.
    pub compat_max_wait_ms: u64,
}

impl Default for FlowConfig {
    fn default() -> Self {
        Self {
            w99_objective: 0.010,
            shards: 1,
            headroom: 1.25,
            classes: 3,
            params: CostParams::CORRELATION_ID,
            filters: 100,
            replication_grade: 1.0,
            burst_seconds: 0.05,
            producer_share: 0.5,
            overload_tighten: 0.5,
            refresh_interval_ms: 1000,
            credit_window: 64,
            compat_max_wait_ms: 250,
        }
    }
}

impl FlowConfig {
    /// Sets the `W99` objective in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless `seconds` is finite and positive.
    pub fn w99_objective(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds > 0.0,
            "w99 objective must be finite and > 0 seconds, got {seconds}"
        );
        self.w99_objective = seconds;
        self
    }

    /// Sets the number of dispatcher shards sharing the budget.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn shards(mut self, shards: u32) -> Self {
        assert!(shards > 0, "shards must be > 0");
        self.shards = shards;
        self
    }

    /// Sets the inversion headroom factor.
    ///
    /// # Panics
    ///
    /// Panics unless `headroom >= 1` and finite.
    pub fn headroom(mut self, headroom: f64) -> Self {
        assert!(headroom.is_finite() && headroom >= 1.0, "headroom must be >= 1, got {headroom}");
        self.headroom = headroom;
        self
    }

    /// Sets the number of priority classes.
    ///
    /// # Panics
    ///
    /// Panics unless `classes` is in `1..=10`.
    pub fn classes(mut self, classes: u8) -> Self {
        assert!((1..=10).contains(&classes), "classes must be in 1..=10, got {classes}");
        self.classes = classes;
        self
    }

    /// Sets the cost constants of the seed model.
    pub fn params(mut self, params: CostParams) -> Self {
        self.params = params;
        self
    }

    /// Sets the assumed filter count of the seed model.
    pub fn filters(mut self, filters: u32) -> Self {
        self.filters = filters;
        self
    }

    /// Sets the assumed replication grade of the seed model.
    ///
    /// # Panics
    ///
    /// Panics unless `grade` is finite and non-negative.
    pub fn replication_grade(mut self, grade: f64) -> Self {
        assert!(
            grade.is_finite() && grade >= 0.0,
            "replication grade must be finite and >= 0, got {grade}"
        );
        self.replication_grade = grade;
        self
    }

    /// Sets the global bucket depth in seconds of `λ_max`.
    ///
    /// # Panics
    ///
    /// Panics unless `seconds` is finite and positive.
    pub fn burst_seconds(mut self, seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds > 0.0,
            "burst depth must be finite and > 0 seconds, got {seconds}"
        );
        self.burst_seconds = seconds;
        self
    }

    /// Sets the per-producer share of `λ_max`.
    ///
    /// # Panics
    ///
    /// Panics unless `share` is in `(0, 1]`.
    pub fn producer_share(mut self, share: f64) -> Self {
        assert!(
            share.is_finite() && share > 0.0 && share <= 1.0,
            "producer share must be in (0, 1], got {share}"
        );
        self.producer_share = share;
        self
    }

    /// Sets the emergency tightening factor for `Overloaded` verdicts.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is in `(0, 1)`.
    pub fn overload_tighten(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor > 0.0 && factor < 1.0,
            "overload tighten factor must be in (0, 1), got {factor}"
        );
        self.overload_tighten = factor;
        self
    }

    /// Sets the drift-refresh interval in milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if `millis` is zero.
    pub fn refresh_interval_ms(mut self, millis: u64) -> Self {
        assert!(millis > 0, "refresh interval must be > 0 ms");
        self.refresh_interval_ms = millis;
        self
    }

    /// Sets the credit window for `FEATURE_FLOW` clients.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn credit_window(mut self, window: u32) -> Self {
        assert!(window > 0, "credit window must be > 0");
        self.credit_window = window;
        self
    }

    /// Sets the compatibility-throttle budget for pre-flow clients, in
    /// milliseconds.
    pub fn compat_max_wait_ms(mut self, millis: u64) -> Self {
        self.compat_max_wait_ms = millis;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let c = FlowConfig::default()
            .w99_objective(0.02)
            .headroom(2.0)
            .classes(5)
            .filters(10)
            .replication_grade(3.0)
            .burst_seconds(0.1)
            .producer_share(0.25)
            .overload_tighten(0.8)
            .refresh_interval_ms(500)
            .credit_window(32)
            .compat_max_wait_ms(100);
        assert_eq!(c.w99_objective, 0.02);
        assert_eq!(c.classes, 5);
        assert_eq!(c.credit_window, 32);
        assert_eq!(c.compat_max_wait_ms, 100);
    }

    #[test]
    fn shards_default_to_one() {
        assert_eq!(FlowConfig::default().shards, 1);
        assert_eq!(FlowConfig::default().shards(4).shards, 4);
    }

    #[test]
    #[should_panic(expected = "shards must be > 0")]
    fn rejects_zero_shards() {
        FlowConfig::default().shards(0);
    }

    #[test]
    #[should_panic(expected = "classes")]
    fn rejects_zero_classes() {
        FlowConfig::default().classes(0);
    }

    #[test]
    #[should_panic(expected = "w99 objective")]
    fn rejects_non_positive_objective() {
        FlowConfig::default().w99_objective(0.0);
    }

    #[test]
    #[should_panic(expected = "producer share")]
    fn rejects_oversized_producer_share() {
        FlowConfig::default().producer_share(1.5);
    }
}
