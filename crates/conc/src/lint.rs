//! # `lint-atomics` — the memory-ordering contract scanner
//!
//! A hand-rolled, zero-dependency static lint (in the spirit of the
//! workspace's other vendored tooling) that enforces the concurrency
//! contract documented in `DESIGN.md` §3.14 across every `.rs` file in
//! the repository:
//!
//! 1. **Orderings are justified.** Every non-`Relaxed` memory ordering
//!    must carry an `// ORD:` comment on the same line or within the
//!    three lines above it, explaining what the ordering synchronizes
//!    with.
//! 2. **Unsafe is justified.** Every occurrence of the unsafe keyword
//!    must carry a `// SAFETY:` comment in the same window.
//! 3. **Fence/store pairs are explicit.** In a file that contains a
//!    memory fence, a `Relaxed` store is part of a fence-based protocol
//!    (e.g. the trace seqlock) and is easy to break by "simplifying" the
//!    ordering — such stores must be `// ORD:`-annotated too.
//! 4. **Atomics stay where they are audited.** Atomic types may only
//!    appear in the whitelisted modules below; introducing an atomic in
//!    a new module fails CI until the module is added here (which is the
//!    code-review hook: the reviewer sees the whitelist diff).
//! 5. **Hot paths use the model-checked facade.** The lock-free hot-path
//!    files (metrics counter/histogram, trace recorder, flow gate) must
//!    import their sync primitives from `rjms_conc::sync`, never from
//!    `std::sync` directly, so the loom models exercise the same code.
//!
//! The scanner is deliberately line-based: it strips line comments
//! before matching (so prose about atomics never triggers it) and skips
//! `shims/` entirely — the shims vendor API-compatible stand-ins for
//! external crates and are out of contract scope, exactly as a
//! crates.io dependency would be. The trade-off is that a token split
//! across lines by a formatter is invisible to it; `rustfmt` never
//! splits a path token, so this does not arise in practice.
//!
//! All trigger tokens in this file are assembled with `concat!` from
//! fragments, so the scanner's own source never contains the byte
//! sequences it searches for and can be scanned like any other file.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Non-`Relaxed` orderings that require an `// ORD:` justification.
const NON_RELAXED: [&str; 4] = [
    concat!("Ordering::", "Acquire"),
    concat!("Ordering::", "Release"),
    concat!("Ordering::", "AcqRel"),
    concat!("Ordering::", "SeqCst"),
];

/// The one ordering that needs no justification outside fence protocols.
const RELAXED: &str = concat!("Ordering::", "Relaxed");

/// Marker comment acknowledging a deliberate memory ordering.
const ORD_MARK: &str = "ORD:";

/// Marker comment justifying an unsafe operation.
const SAFETY_MARK: &str = "SAFETY:";

/// The unsafe keyword, assembled so this file never contains it whole.
const UNSAFE_KW: &str = concat!("un", "safe");

/// A memory-fence call site.
const FENCE_CALL: &str = concat!("fen", "ce(");

/// An atomic store call site.
const STORE_CALL: &str = concat!(".st", "ore(");

/// Substring identifying an atomic type name.
const ATOMIC_TYPE: &str = concat!("Atom", "ic");

/// Substring identifying an atomic module path (std or facade).
const ATOMIC_PATH: &str = concat!("sync::", "atomic");

/// Direct std atomic path, forbidden in facade-required files.
const STD_ATOMIC_PATH: &str = concat!("std::sync", "::atomic");

/// Files allowed to mention atomic types or atomic module paths.
///
/// Adding an atomic anywhere else fails CI until the file is listed
/// here — that diff is the review hook for new lock-free code.
const ALLOWED_ATOMICS: [&str; 22] = [
    "crates/bench/src/bin/ablation_filter_identity.rs",
    "crates/broker/src/broker.rs",
    "crates/broker/src/message.rs",
    "crates/broker/src/stats.rs",
    "crates/broker/tests/robustness.rs",
    "crates/conc/src/lib.rs",
    "crates/flow/src/gate.rs",
    "crates/flow/tests/loom.rs",
    "crates/journal/src/lib.rs",
    "crates/metrics/src/counter.rs",
    "crates/metrics/src/histogram.rs",
    "crates/metrics/tests/loom.rs",
    "crates/metrics/tests/stress_minmax.rs",
    "crates/net/src/client.rs",
    "crates/net/src/server.rs",
    "crates/obs/src/engine.rs",
    "crates/trace/src/recorder.rs",
    "crates/trace/tests/loom.rs",
    "examples/broker_saturation.rs",
    "examples/networked_measurement.rs",
    "src/http.rs",
    "tests/end_to_end.rs",
];

/// Files that must import sync primitives through `rjms_conc::sync`
/// (the loom-switchable facade) rather than `std::sync` directly.
const FACADE_REQUIRED: [&str; 4] = [
    "crates/flow/src/gate.rs",
    "crates/metrics/src/counter.rs",
    "crates/metrics/src/histogram.rs",
    "crates/trace/src/recorder.rs",
];

/// Directories never scanned (vendored shims, build output, VCS).
const SKIP_DIRS: [&str; 3] = ["shims", "target", ".git"];

/// How many lines above a site an annotation comment may sit.
const ANNOTATION_WINDOW: usize = 3;

/// One contract violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Short rule identifier, e.g. `ordering-unjustified`.
    pub rule: &'static str,
    /// Human-readable description of what to fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Result of scanning a whole tree.
#[derive(Debug, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All violations found, in path order.
    pub violations: Vec<Violation>,
}

/// The code portion of a line: empty for comment-only lines, otherwise
/// the text before the first line-comment marker. Annotations live in
/// the comment part and are looked up on the raw line instead.
fn code_part(line: &str) -> &str {
    let trimmed = line.trim_start();
    if trimmed.starts_with("//") {
        return "";
    }
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// True if `lines[idx]` or any of the `ANNOTATION_WINDOW` lines above it
/// contains the marker comment.
fn has_annotation(lines: &[&str], idx: usize, mark: &str) -> bool {
    let start = idx.saturating_sub(ANNOTATION_WINDOW);
    lines[start..=idx].iter().any(|l| l.contains(mark))
}

/// True if the unsafe keyword occurs in `code` as a standalone word
/// (not as part of an identifier like the lint-name tokens, and not
/// directly inside a string literal boundary).
fn contains_unsafe_keyword(code: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(rel) = code[from..].find(UNSAFE_KW) {
        let at = from + rel;
        let end = at + UNSAFE_KW.len();
        let prev_ok = at == 0 || {
            let c = bytes[at - 1];
            !(c.is_ascii_alphanumeric() || c == b'_' || c == b'"')
        };
        let next_ok = end >= bytes.len() || {
            let c = bytes[end];
            !(c.is_ascii_alphanumeric() || c == b'_' || c == b'"')
        };
        if prev_ok && next_ok {
            return true;
        }
        from = end;
    }
    false
}

/// Scans one file's contents against the full rule set.
///
/// `rel` is the workspace-relative path with forward slashes; it drives
/// the whitelist rules. Returns violations in line order.
pub fn scan_file(rel: &str, content: &str) -> Vec<Violation> {
    let lines: Vec<&str> = content.lines().collect();
    let mut out = Vec::new();
    let allowed_atomics = ALLOWED_ATOMICS.contains(&rel);
    let facade_required = FACADE_REQUIRED.contains(&rel);
    let file_has_fence = lines.iter().any(|l| code_part(l).contains(FENCE_CALL));
    let mut atomics_reported = false;

    for (idx, raw) in lines.iter().enumerate() {
        let code = code_part(raw);
        if code.is_empty() {
            continue;
        }
        let line_no = idx + 1;

        // Rule 1: non-Relaxed orderings need an ORD: justification.
        for needle in NON_RELAXED {
            if code.contains(needle) && !has_annotation(&lines, idx, ORD_MARK) {
                out.push(Violation {
                    file: rel.to_string(),
                    line: line_no,
                    rule: "ordering-unjustified",
                    message: format!(
                        "{needle} without an `{ORD_MARK}` comment on this line or \
                         within {ANNOTATION_WINDOW} lines above"
                    ),
                });
            }
        }

        // Rule 2: the unsafe keyword needs a SAFETY: justification.
        if contains_unsafe_keyword(code) && !has_annotation(&lines, idx, SAFETY_MARK) {
            out.push(Violation {
                file: rel.to_string(),
                line: line_no,
                rule: "unsafe-unjustified",
                message: format!(
                    "unsafe operation without a `{SAFETY_MARK}` comment on this line \
                     or within {ANNOTATION_WINDOW} lines above"
                ),
            });
        }

        // Rule 3: in fence-carrying files, Relaxed stores are part of a
        // fence protocol and must be explicitly acknowledged.
        if file_has_fence
            && code.contains(STORE_CALL)
            && code.contains(RELAXED)
            && !has_annotation(&lines, idx, ORD_MARK)
        {
            out.push(Violation {
                file: rel.to_string(),
                line: line_no,
                rule: "relaxed-store-near-fence",
                message: format!(
                    "Relaxed store in a fence-carrying file without an `{ORD_MARK}` \
                     comment; fence protocols break silently when store orderings drift"
                ),
            });
        }

        // Rule 4: atomics only in whitelisted modules (one report per file).
        if !allowed_atomics
            && !atomics_reported
            && (code.contains(ATOMIC_TYPE) || code.contains(ATOMIC_PATH))
        {
            atomics_reported = true;
            out.push(Violation {
                file: rel.to_string(),
                line: line_no,
                rule: "atomic-outside-whitelist",
                message: String::from(
                    "atomic primitive in a module not whitelisted in \
                     crates/conc/src/lint.rs; add the file to ALLOWED_ATOMICS \
                     to put the new lock-free code under review",
                ),
            });
        }

        // Rule 5: facade-required hot paths must not bypass rjms_conc.
        if facade_required && code.contains(STD_ATOMIC_PATH) {
            out.push(Violation {
                file: rel.to_string(),
                line: line_no,
                rule: "std-atomic-in-facade-file",
                message: String::from(
                    "direct std atomic import in a loom-modelled hot path; \
                     import through rjms_conc::sync so models cover this code",
                ),
            });
        }
    }
    out
}

/// Recursively collects `.rs` files under `dir`, skipping `SKIP_DIRS`
/// at any depth.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans the whole workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    let mut report = Report::default();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let content = fs::read_to_string(&path)?;
        report.files_scanned += 1;
        report.violations.extend(scan_file(&rel, &content));
    }
    Ok(report)
}

/// The workspace root, resolved from this crate's manifest directory.
pub fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ordering(variant: &str) -> String {
        format!("{}{}", concat!("Ordering", "::"), variant)
    }

    #[test]
    fn unjustified_acquire_is_flagged_and_ord_comment_clears_it() {
        let bad = format!("        let s1 = seq.load({});\n", ordering("Acquire"));
        let v = scan_file("crates/trace/src/recorder.rs", &bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "ordering-unjustified");
        assert_eq!(v[0].line, 1);

        let good = format!(
            "        // {} pairs with the writer's final release store\n        let s1 = seq.load({});\n",
            ORD_MARK,
            ordering("Acquire")
        );
        assert!(scan_file("crates/trace/src/recorder.rs", &good).is_empty());
    }

    #[test]
    fn annotation_window_is_three_lines() {
        let too_far =
            format!("// {} far away\n\n\n\nlet x = a.load({});\n", ORD_MARK, ordering("SeqCst"));
        let v = scan_file("crates/net/src/server.rs", &too_far);
        assert_eq!(v.len(), 1, "{v:?}");

        let in_range =
            format!("// {} close enough\n\n\nlet x = a.load({});\n", ORD_MARK, ordering("SeqCst"));
        assert!(scan_file("crates/net/src/server.rs", &in_range).is_empty());
    }

    #[test]
    fn relaxed_alone_is_not_flagged() {
        let content = format!("counter.fetch_add(1, {});\n", ordering("Relaxed"));
        assert!(scan_file("crates/metrics/src/counter.rs", &content).is_empty());
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let kw = String::from(UNSAFE_KW);
        let bad = format!("    {kw} {{ core::arch::x86_64::_rdtsc() }}\n");
        let v = scan_file("crates/metrics/src/clock.rs", &bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "unsafe-unjustified");

        let good = format!(
            "    // {}: rdtsc has no side effects\n    {kw} {{ core::arch::x86_64::_rdtsc() }}\n",
            SAFETY_MARK
        );
        assert!(scan_file("crates/metrics/src/clock.rs", &good).is_empty());
    }

    #[test]
    fn unsafe_inside_identifiers_and_comments_is_ignored() {
        let kw = String::from(UNSAFE_KW);
        // Lint-name identifiers and prose must not trip the keyword rule.
        let content = format!(
            "#![deny({kw}_op_in_{kw}_fn)]\n// the {kw} keyword is discussed here\nlet {kw}_sites = 0;\n"
        );
        assert!(scan_file("crates/core/src/lib.rs", &content).is_empty());
    }

    #[test]
    fn relaxed_store_near_fence_requires_annotation() {
        let fence = String::from(FENCE_CALL);
        let bad = format!(
            "{}::{}{});\nslot{}x, {});\n",
            STD_ATOMIC_PATH,
            fence,
            ordering("Release"),
            STORE_CALL,
            ordering("Relaxed"),
        );
        let v = scan_file("crates/trace/src/recorder.rs", &bad);
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"relaxed-store-near-fence"), "missing fence rule in {rules:?}");
    }

    #[test]
    fn atomics_outside_whitelist_are_flagged_once() {
        let ty = format!("{}U64", ATOMIC_TYPE);
        let content = format!("static A: {ty} = {ty}::new(0);\nstatic B: {ty} = {ty}::new(0);\n");
        let v = scan_file("crates/queueing/src/lib.rs", &content);
        assert_eq!(v.len(), 1, "one report per file, got {v:?}");
        assert_eq!(v[0].rule, "atomic-outside-whitelist");

        assert!(scan_file("crates/metrics/src/counter.rs", &content).is_empty());
    }

    #[test]
    fn facade_files_must_not_import_std_atomics() {
        let path = String::from(STD_ATOMIC_PATH);
        let content = format!("use {path}::{}U64;\n", ATOMIC_TYPE);
        let v = scan_file("crates/metrics/src/histogram.rs", &content);
        let rules: Vec<_> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&"std-atomic-in-facade-file"), "missing facade rule in {rules:?}");
        // The facade import path is fine.
        let facade = format!("use rjms_conc::{}::{}U64;\n", ATOMIC_PATH, ATOMIC_TYPE);
        assert!(scan_file("crates/metrics/src/histogram.rs", &facade).is_empty());
    }

    /// The real gate: the workspace as checked in must be contract-clean.
    /// This runs in the default `cargo test` pass, so a violation fails
    /// locally long before the dedicated CI job sees it.
    #[test]
    fn workspace_is_lint_clean() {
        let report = scan_workspace(&workspace_root()).expect("scan workspace");
        assert!(
            report.files_scanned > 50,
            "suspiciously few files scanned: {}",
            report.files_scanned
        );
        let rendered: Vec<String> = report.violations.iter().map(|v| v.to_string()).collect();
        assert!(
            report.violations.is_empty(),
            "memory-ordering contract violations:\n{}",
            rendered.join("\n")
        );
    }
}
