//! CI entry point for the memory-ordering contract scanner.
//!
//! Usage: `cargo run -p rjms-conc --bin lint-atomics [root]`
//!
//! Scans every `.rs` file under the workspace root (or an explicit
//! `root` argument), prints each violation as `file:line: [rule]
//! message`, and exits non-zero if any were found. The same scan also
//! runs as a unit test in the default `cargo test` pass; this binary
//! exists so CI can surface the violations as a dedicated job with
//! readable output.

use std::path::PathBuf;
use std::process::ExitCode;

use rjms_conc::lint;

fn main() -> ExitCode {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(lint::workspace_root);
    let report = match lint::scan_workspace(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("lint-atomics: failed to scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for v in &report.violations {
        println!("{v}");
    }
    eprintln!(
        "lint-atomics: scanned {} files under {}: {} violation(s)",
        report.files_scanned,
        root.display(),
        report.violations.len()
    );
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
