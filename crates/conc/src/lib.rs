//! # rjms-conc — the workspace's concurrency-correctness substrate
//!
//! Every lock-free structure in this workspace (metrics counters and
//! histograms, the trace seqlock ring, the flow-gate accounting) backs a
//! number that feeds the paper's Eq. 1 comparison: a torn histogram
//! bucket or a lost ring slot silently corrupts W99 estimates, SLO
//! verdicts, and forecasts. This crate is how those structures get
//! *mechanically* checked rather than eyeball-reviewed:
//!
//! * [`sync`] / [`thread`] / [`hint`] — a facade over `std::sync` that
//!   compiles to the real types normally and to `loom` model-checker
//!   types under `--cfg loom`. The hot-path crates (`rjms-metrics`,
//!   `rjms-trace`, `rjms-flow`) import their atomics and locks from here,
//!   so `RUSTFLAGS="--cfg loom" cargo test -p <crate> --test loom` runs
//!   their concurrency models under exhaustive interleaving exploration.
//! * [`lint`] — the `lint-atomics` scanner (also a `cargo run -p
//!   rjms-conc --bin lint-atomics` binary) that enforces the workspace
//!   memory-ordering contract of `DESIGN.md` §3.14: every non-`Relaxed`
//!   ordering and every `unsafe` block carries a justification comment,
//!   `Relaxed` stores in fence-carrying files are annotated, and atomics
//!   may only appear in whitelisted modules. A unit test runs the scanner
//!   in the default `cargo test` pass, so violations fail locally before
//!   they fail CI.
//!
//! The division of labour between the three checking layers (loom models,
//! Miri/TSan sanitizer jobs, and this lint) is documented in
//! `DESIGN.md` §3.14.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lint;

/// Loom-switchable `std::sync` facade.
///
/// Under `--cfg loom` the atomics, `Mutex`, and `OnceLock` come from the
/// loom shim and every operation becomes a model scheduling point;
/// normally they are plain `std::sync` re-exports with zero overhead.
pub mod sync {
    #[cfg(loom)]
    pub use loom::sync::{Arc, Mutex, MutexGuard, OnceLock};

    #[cfg(not(loom))]
    pub use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

    /// Loom-switchable `std::sync::atomic` facade.
    pub mod atomic {
        #[cfg(loom)]
        pub use loom::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };

        #[cfg(not(loom))]
        pub use std::sync::atomic::{
            fence, AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
        };
    }
}

/// Loom-switchable `std::thread` facade (spawn/join/yield subset).
pub mod thread {
    #[cfg(loom)]
    pub use loom::thread::{spawn, yield_now, JoinHandle};

    #[cfg(not(loom))]
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

/// Loom-switchable `std::hint` facade.
pub mod hint {
    #[cfg(loom)]
    pub use loom::hint::spin_loop;

    #[cfg(not(loom))]
    pub use std::hint::spin_loop;
}

/// Runs `f` under the loom model checker when built with `--cfg loom`,
/// or once directly otherwise — letting a single test body serve as both
/// a loom model and a plain smoke test.
pub fn model<F: Fn() + Send + Sync + 'static>(f: F) {
    #[cfg(loom)]
    loom::model(f);
    #[cfg(not(loom))]
    f();
}
