//! Trace-context wire compatibility: old-format clients interoperate with a
//! new server, and negotiated clients propagate trace ids end to end.

use bytes::Bytes;
use rjms_broker::{BrokerConfig, Message, TraceConfig};
use rjms_net::client::RemoteBroker;
use rjms_net::server::BrokerServer;
use rjms_net::wire::{
    decode_response, encode_request, read_frame, Request, Response, WireFilter, WireMessage,
};
use rjms_trace::{group_chains, Stage};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// A minimal stand-in for a pre-trace client: it speaks only the original
/// opcodes (messages without context, no connect-time Hello) over a raw
/// socket.
struct OldClient {
    stream: TcpStream,
}

impl OldClient {
    fn connect(addr: std::net::SocketAddr) -> OldClient {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        OldClient { stream }
    }

    fn send(&mut self, request: &Request) {
        let frame = encode_request(request);
        self.stream.write_all(&frame).expect("write frame");
    }

    /// Reads one frame and returns its raw body (opcode byte first).
    fn read_raw(&mut self) -> Bytes {
        read_frame(&mut self.stream).expect("read frame").expect("connection open")
    }
}

#[test]
fn old_format_client_interoperates_with_new_server() {
    let server = BrokerServer::start(
        BrokerConfig::builder().trace(TraceConfig::default()).build(),
        "127.0.0.1:0",
    )
    .expect("bind");
    let mut old = OldClient::connect(server.local_addr());

    // Pre-trace frames only: no Hello, message without context.
    old.send(&Request::CreateTopic { request_id: 1, topic: "t".into() });
    old.send(&Request::Subscribe {
        request_id: 2,
        subscription_id: 1,
        topic: "t".into(),
        filter: WireFilter::None,
    });
    let message = Message::builder().property("k", 7i64).build();
    let wire = WireMessage::from_message(&message).without_trace();
    let publish_frame =
        encode_request(&Request::Publish { request_id: 3, topic: "t".into(), message: wire });
    // The publish must itself be in the pre-trace format.
    assert_eq!(publish_frame[4], 0x02, "stripped publish keeps the original opcode");
    old.stream.write_all(&publish_frame).expect("write publish");

    // Collect responses until the delivery arrives: the delivery to a
    // client that never sent Hello must use the pre-trace opcode.
    let mut oks = 0;
    let delivery_body = loop {
        let body = old.read_raw();
        match body[0] {
            0x81 => oks += 1, // Ok
            0x83 | 0x85 => break body,
            other => panic!("unexpected response opcode {other:#x}"),
        }
    };
    assert_eq!(oks, 3, "all three pre-trace requests answered Ok");
    assert_eq!(delivery_body[0], 0x83, "delivery to an old client stays untraced");
    let decoded = decode_response(delivery_body).expect("decodable");
    match decoded {
        Response::Delivery { subscription_id, message } => {
            assert_eq!(subscription_id, 1);
            assert!(message.trace.is_none());
            assert_eq!(message.into_message().property("k"), Some(&7i64.into()));
        }
        other => panic!("expected delivery, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn trace_ids_propagate_publisher_to_subscriber() {
    let server = BrokerServer::start(BrokerConfig::default(), "127.0.0.1:0").expect("bind");
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    assert!(client.trace_negotiated(), "new server acknowledges the handshake");
    client.create_topic("t").unwrap();
    let sub = client.subscribe("t", WireFilter::None).unwrap();

    let message = Message::builder().property("k", 1i64).build();
    let published_id = message.trace_id();
    assert_ne!(published_id, 0);
    client.publish("t", &message).unwrap();

    let received = sub.receive_timeout(Duration::from_secs(5)).expect("delivery");
    assert_eq!(received.trace_id(), published_id, "trace id survives the full round trip");
    assert_eq!(received.trace_origin_ns(), message.trace_origin_ns());
    server.shutdown();
}

#[test]
fn wire_flush_spans_join_broker_chains() {
    // With tracing on and the tail threshold still at its initial zero,
    // every message's chain is kept, and deliveries flushed to a negotiated
    // client gain a fifth wire_flush span recorded by the writer thread.
    let server = BrokerServer::start(
        BrokerConfig::builder().trace(TraceConfig::default()).build(),
        "127.0.0.1:0",
    )
    .expect("bind");
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    client.create_topic("t").unwrap();
    let sub = client.subscribe("t", WireFilter::None).unwrap();

    let mut ids = Vec::new();
    for i in 0..20i64 {
        let message = Message::builder().property("seq", i).build();
        ids.push(message.trace_id());
        client.publish("t", &message).unwrap();
    }
    for _ in 0..20 {
        sub.receive_timeout(Duration::from_secs(5)).expect("delivery");
    }
    // The writer records the flush span right after write_all returns, so
    // once the last delivery is received all spans are in the recorder.
    std::thread::sleep(Duration::from_millis(50));

    let recorder = server.broker().tracer().expect("tracing enabled");
    let chains = group_chains(recorder.snapshot().events);
    for id in &ids {
        let chain = chains
            .iter()
            .find(|c| c.trace_id == *id)
            .unwrap_or_else(|| panic!("no chain for {id}"));
        assert!(chain.is_complete(), "broker stages incomplete for {id}: {chain:?}");
        assert!(chain.has_stage(Stage::WireFlush), "missing wire_flush span for {id}: {chain:?}");
        assert!(chain.timestamps_monotone(), "non-monotone chain for {id}: {chain:?}");
    }
    server.shutdown();
}
