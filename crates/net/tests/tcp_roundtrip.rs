//! End-to-end tests over real TCP sockets (localhost, ephemeral ports).

use rjms_broker::{BrokerConfig, Message};
use rjms_net::client::RemoteBroker;
use rjms_net::error::Error;
use rjms_net::server::BrokerServer;
use rjms_net::wire::WireFilter;
use std::time::Duration;

fn server() -> BrokerServer {
    BrokerServer::start(BrokerConfig::default(), "127.0.0.1:0").expect("bind")
}

#[test]
fn publish_subscribe_over_tcp() {
    let server = server();
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    client.create_topic("t").unwrap();

    let sub = client.subscribe("t", WireFilter::None).unwrap();
    client.publish("t", &Message::builder().property("k", 7i64).body(&b"abc"[..]).build()).unwrap();

    let m = sub.receive_timeout(Duration::from_secs(5)).expect("delivery");
    assert_eq!(m.property("k"), Some(&7i64.into()));
    assert_eq!(m.body().as_ref(), b"abc");
    server.shutdown();
}

#[test]
fn selector_filtering_happens_server_side() {
    let server = server();
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    client.create_topic("t").unwrap();

    let reds = client.subscribe("t", WireFilter::Selector("color = 'red'".into())).unwrap();
    client.publish("t", &Message::builder().property("color", "blue").build()).unwrap();
    client.publish("t", &Message::builder().property("color", "red").build()).unwrap();

    let m = reds.receive_timeout(Duration::from_secs(5)).expect("red message");
    assert_eq!(m.property("color"), Some(&"red".into()));
    assert!(reds.receive_timeout(Duration::from_millis(100)).is_none());
    // The server-side broker saw both messages but dispatched one copy.
    let messages = server.broker().snapshot().messages;
    assert_eq!(messages.received, 2);
    assert_eq!(messages.dispatched, 1);
    server.shutdown();
}

#[test]
fn correlation_filters_and_patterns_over_tcp() {
    let server = server();
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    client.create_topic("sensors.kitchen").unwrap();

    let range =
        client.subscribe("sensors.kitchen", WireFilter::CorrelationId("[5;9]".into())).unwrap();
    let wild = client.subscribe_pattern("sensors.>", WireFilter::None).unwrap();

    // A topic created after the pattern subscription.
    client.create_topic("sensors.lab").unwrap();
    client.publish("sensors.kitchen", &Message::builder().correlation_id("#7").build()).unwrap();
    client.publish("sensors.lab", &Message::builder().correlation_id("#42").build()).unwrap();

    let m = range.receive_timeout(Duration::from_secs(5)).expect("range hit");
    assert_eq!(m.correlation_id(), Some("#7"));
    assert!(range.receive_timeout(Duration::from_millis(100)).is_none());

    // The wildcard sees both.
    assert!(wild.receive_timeout(Duration::from_secs(5)).is_some());
    assert!(wild.receive_timeout(Duration::from_secs(5)).is_some());
    server.shutdown();
}

#[test]
fn errors_propagate_to_the_client() {
    let server = server();
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    client.create_topic("t").unwrap();

    // Duplicate topic.
    match client.create_topic("t") {
        Err(Error::Remote { message }) => assert!(message.contains("already exists")),
        other => panic!("expected remote error, got {other:?}"),
    }
    // Unknown topic.
    assert!(matches!(
        client.publish("nope", &Message::builder().build()),
        Err(Error::Remote { .. })
    ));
    // Invalid selector.
    assert!(matches!(
        client.subscribe("t", WireFilter::Selector("((broken".into())),
        Err(Error::Remote { .. })
    ));
    // Invalid pattern.
    assert!(matches!(
        client.subscribe_pattern("a..b", WireFilter::None),
        Err(Error::Remote { .. })
    ));
    // The connection survives all of these.
    client.ping().unwrap();
    server.shutdown();
}

#[test]
fn two_clients_share_the_broker() {
    let server = server();
    let producer = RemoteBroker::connect(server.local_addr()).unwrap();
    let consumer = RemoteBroker::connect(server.local_addr()).unwrap();
    producer.create_topic("t").unwrap();

    let sub = consumer.subscribe("t", WireFilter::None).unwrap();
    for i in 0..50i64 {
        producer.publish("t", &Message::builder().property("seq", i).build()).unwrap();
    }
    for i in 0..50i64 {
        let m = sub.receive_timeout(Duration::from_secs(5)).expect("delivery");
        assert_eq!(m.property("seq"), Some(&i.into()), "cross-client FIFO broken");
    }
    server.shutdown();
}

#[test]
fn ttl_survives_the_wire() {
    let server = server();
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    client.create_topic("t").unwrap();
    let sub = client.subscribe("t", WireFilter::None).unwrap();

    // Already-expired message never arrives; fresh one does.
    client.publish("t", &Message::builder().time_to_live(Duration::ZERO).build()).unwrap();
    client.publish("t", &Message::builder().time_to_live(Duration::from_secs(60)).build()).unwrap();
    let m = sub.receive_timeout(Duration::from_secs(5)).expect("fresh message");
    assert!(m.expiration_millis().is_some());
    assert!(sub.receive_timeout(Duration::from_millis(100)).is_none());
    server.shutdown();
}

#[test]
fn dropping_client_cleans_up_server_side_subscriptions() {
    let server = server();
    server.broker().create_topic("t").unwrap();
    {
        let client = RemoteBroker::connect(server.local_addr()).unwrap();
        let _sub = client.subscribe("t", WireFilter::None).unwrap();
        // Wait until the server registered the subscription.
        for _ in 0..100 {
            if server.broker().subscription_count("t") == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.broker().subscription_count("t"), 1);
    } // client drops: connection closes, forwarder exits, subscriber drops

    for _ in 0..200 {
        if server.broker().subscription_count("t") == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.broker().subscription_count("t"), 0);
    server.shutdown();
}

#[test]
fn requests_after_server_shutdown_fail_cleanly() {
    let server = server();
    let addr = server.local_addr();
    let client = RemoteBroker::connect(addr).unwrap();
    client.create_topic("t").unwrap();
    server.shutdown();
    // The next call errors (io/closed/timeout — anything but success or hang).
    let started = std::time::Instant::now();
    let result = client.create_topic("t2");
    assert!(result.is_err(), "got {result:?}");
    assert!(started.elapsed() < Duration::from_secs(15));
}

#[test]
fn large_message_roundtrip() {
    let server = server();
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    client.create_topic("t").unwrap();
    let sub = client.subscribe("t", WireFilter::None).unwrap();

    let body: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    client.publish("t", &Message::builder().body(body.clone()).build()).unwrap();
    let m = sub.receive_timeout(Duration::from_secs(10)).expect("large delivery");
    assert_eq!(m.body().as_ref(), body.as_slice());
    server.shutdown();
}

#[test]
fn ping_pong() {
    let server = server();
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    for _ in 0..10 {
        client.ping().unwrap();
    }
    server.shutdown();
}

#[test]
fn durable_subscription_over_tcp() {
    let server = server();
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    client.create_topic("jobs").unwrap();

    // Connect, receive one live message, disconnect.
    {
        let worker = client.subscribe_durable("jobs", "worker-1", WireFilter::None).unwrap();
        client.publish("jobs", &Message::builder().property("seq", 0i64).build()).unwrap();
        let m = worker.receive_timeout(Duration::from_secs(5)).expect("live delivery");
        assert_eq!(m.property("seq"), Some(&0i64.into()));
        // A second consumer under the same name is rejected.
        assert!(matches!(
            client.subscribe_durable("jobs", "worker-1", WireFilter::None),
            Err(Error::Remote { .. })
        ));
    }
    // The drop above only detached locally; the server-side forwarder
    // notices on its next poll. Give it a moment, then check retention by
    // publishing while offline. We need the *server-side* connection to drop
    // the broker subscriber; that happens when this client connection
    // closes — so use a second connection for the offline-publish phase.
    drop(client);
    let client2 = RemoteBroker::connect(server.local_addr()).unwrap();
    for _ in 0..200 {
        if !server.broker().durable_connected("jobs", "worker-1") {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(!server.broker().durable_connected("jobs", "worker-1"));
    client2.publish("jobs", &Message::builder().property("seq", 1i64).build()).unwrap();
    client2.publish("jobs", &Message::builder().property("seq", 2i64).build()).unwrap();
    for _ in 0..100 {
        if server.broker().retained_count("jobs", "worker-1") == 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Reconnect: the backlog arrives first, in order.
    let worker = client2.subscribe_durable("jobs", "worker-1", WireFilter::None).unwrap();
    for seq in 1..=2i64 {
        let m = worker.receive_timeout(Duration::from_secs(5)).expect("retained delivery");
        assert_eq!(m.property("seq"), Some(&seq.into()));
    }

    // Clean up: disconnect, then remove the durable subscription remotely.
    drop(worker);
    // The server-side forwarder polls every 50 ms; retry until it let go.
    let mut removed = false;
    for _ in 0..100 {
        match client2.unsubscribe_durable("jobs", "worker-1") {
            Ok(()) => {
                removed = true;
                break;
            }
            Err(Error::Remote { .. }) => std::thread::sleep(Duration::from_millis(20)),
            Err(other) => panic!("unexpected error {other:?}"),
        }
    }
    assert!(removed, "durable subscription was never released");
    assert!(server.broker().durable_names("jobs").is_empty());
    server.shutdown();
}

#[test]
fn wire_metrics_record_rtt_and_connections() {
    let server = server();
    let client = RemoteBroker::connect(server.local_addr()).unwrap();
    client.create_topic("t").unwrap();
    for _ in 0..8 {
        client.ping().unwrap();
    }
    let snap = client.metrics().snapshot();
    let rtt = snap.histogram("net.rtt_ns").expect("round-trips recorded");
    assert_eq!(rtt.count, 10); // connect-time hello + create_topic + 8 pings
    assert!(rtt.min > 0);
    assert_eq!(snap.counters["net.requests"], 10);

    let server_snap = server.metrics().snapshot();
    assert_eq!(server_snap.gauges["net.connections.active"], 1);
    assert!(server_snap.gauges.keys().any(|k| k.ends_with(".queue_depth")));

    // Connection teardown returns the gauge to zero.
    drop(client);
    for _ in 0..200 {
        if server.metrics().snapshot().gauges["net.connections.active"] == 0 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(server.metrics().snapshot().gauges["net.connections.active"], 0);
    server.shutdown();
}
