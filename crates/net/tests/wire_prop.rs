//! Property tests for the wire codec: arbitrary frames round-trip, and the
//! decoder is total (never panics) on arbitrary bytes.

use bytes::Bytes;
use proptest::prelude::*;
use rjms_net::wire::{
    decode_request, decode_response, encode_request, encode_response, Request, Response,
    WireFilter, WireMessage, WireTrace,
};
use rjms_selector::Value;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN breaks PartialEq round-trip comparison.
        (-1e12f64..1e12).prop_map(Value::Float),
        "[a-zA-Z0-9 ]{0,16}".prop_map(Value::Str),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Option<WireTrace>> {
    // `| 1` keeps ids nonzero: zero means "no context" on the wire and is
    // rejected by the decoder.
    prop::option::of(
        (any::<u64>(), any::<u64>())
            .prop_map(|(id, ns)| WireTrace { trace_id: id | 1, origin_ns: ns }),
    )
}

fn message_strategy() -> impl Strategy<Value = WireMessage> {
    (
        prop::option::of("[!-~]{0,24}"),
        prop::option::of("[a-z]{0,12}"),
        0u8..=9,
        prop::option::of(any::<u64>()),
        prop::collection::vec(("[a-zA-Z_][a-zA-Z0-9_]{0,8}", value_strategy()), 0..6),
        prop::collection::vec(any::<u8>(), 0..256),
        trace_strategy(),
    )
        .prop_map(
            |(correlation_id, message_type, priority, ttl_millis, properties, body, trace)| {
                WireMessage {
                    correlation_id,
                    message_type,
                    priority,
                    ttl_millis,
                    properties,
                    body: Bytes::from(body),
                    trace,
                }
            },
        )
}

fn filter_strategy() -> impl Strategy<Value = WireFilter> {
    prop_oneof![
        Just(WireFilter::None),
        "[!-~]{0,16}".prop_map(WireFilter::CorrelationId),
        "[ -~]{0,32}".prop_map(WireFilter::Selector),
    ]
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        (any::<u32>(), "[a-z.]{1,20}")
            .prop_map(|(request_id, topic)| Request::CreateTopic { request_id, topic }),
        (any::<u32>(), "[a-z.]{1,20}", message_strategy()).prop_map(
            |(request_id, topic, message)| Request::Publish { request_id, topic, message }
        ),
        (any::<u32>(), any::<u32>(), "[a-z.]{1,20}", filter_strategy()).prop_map(
            |(request_id, subscription_id, topic, filter)| Request::Subscribe {
                request_id,
                subscription_id,
                topic,
                filter,
            }
        ),
        (any::<u32>(), any::<u32>(), "[a-z.*>]{1,20}", filter_strategy()).prop_map(
            |(request_id, subscription_id, pattern, filter)| Request::SubscribePattern {
                request_id,
                subscription_id,
                pattern,
                filter,
            }
        ),
        (any::<u32>(), any::<u32>()).prop_map(|(request_id, subscription_id)| {
            Request::Unsubscribe { request_id, subscription_id }
        }),
        any::<u32>().prop_map(|request_id| Request::Ping { request_id }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(request_id, features)| Request::Hello { request_id, features }),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u32>().prop_map(|request_id| Response::Ok { request_id }),
        (any::<u32>(), "[ -~]{0,40}")
            .prop_map(|(request_id, message)| Response::Error { request_id, message }),
        (any::<u32>(), message_strategy()).prop_map(|(subscription_id, message)| {
            Response::Delivery { subscription_id, message }
        }),
        any::<u32>().prop_map(|request_id| Response::Pong { request_id }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn request_roundtrip(req in request_strategy()) {
        let frame = encode_request(&req);
        let body = frame.slice(4..);
        prop_assert_eq!(decode_request(body).unwrap(), req);
    }

    #[test]
    fn response_roundtrip(resp in response_strategy()) {
        let frame = encode_response(&resp);
        let body = frame.slice(4..);
        prop_assert_eq!(decode_response(body).unwrap(), resp);
    }

    #[test]
    fn decoder_total_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Must never panic; errors are fine.
        let _ = decode_request(Bytes::from(bytes.clone()));
        let _ = decode_response(Bytes::from(bytes));
    }

    #[test]
    fn decoder_total_on_truncated_valid_frames(
        req in request_strategy(),
        cut_ratio in 0.0f64..1.0,
    ) {
        let frame = encode_request(&req);
        let body = frame.slice(4..);
        let cut = ((body.len() as f64) * cut_ratio) as usize;
        if cut < body.len() {
            // A strictly truncated frame must error, never panic or succeed.
            prop_assert!(decode_request(body.slice(..cut)).is_err());
        }
    }
}
