//! Error types for the network layer.
//!
//! Since 0.2.0 the network layer surfaces failures through the unified
//! workspace [`enum@Error`] (re-exported from `rjms_core`): transport
//! failures map to [`Error::Io`], server-side rejections to
//! [`Error::Remote`], malformed frames to [`Error::Decode`], and the
//! client's request timeout / torn connection to [`Error::Timeout`] /
//! [`Error::Closed`]. The `NetError` alias deprecated in 0.2.0 has been
//! removed; match on the unified [`enum@Error`] directly.

use crate::wire::DecodeError;

pub use rjms_core::Error;

impl From<DecodeError> for Error {
    fn from(e: DecodeError) -> Self {
        Error::Decode { detail: e.message }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(Error::Timeout.to_string().contains("timed out"));
        assert!(Error::Closed.to_string().contains("closed"));
        assert!(Error::Remote { message: "boom".into() }.to_string().contains("boom"));
    }

    #[test]
    fn decode_errors_convert() {
        let e = Error::from(DecodeError { message: "truncated u32".into() });
        assert!(matches!(e, Error::Decode { ref detail } if detail == "truncated u32"));
        assert_eq!(e.to_string(), "decode error: truncated u32");
    }
}
