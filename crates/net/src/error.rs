//! Error types for the network layer.

use crate::wire::DecodeError;
use std::fmt;

/// Errors surfaced by the remote client.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server answered with an error response.
    Remote {
        /// The server's message.
        message: String,
    },
    /// A frame failed to decode.
    Decode(DecodeError),
    /// No response arrived within the client's timeout.
    Timeout,
    /// The connection is closed.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Remote { message } => write!(f, "server error: {message}"),
            Self::Decode(e) => write!(f, "{e}"),
            Self::Timeout => f.write_str("timed out waiting for the server"),
            Self::Closed => f.write_str("connection closed"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<DecodeError> for NetError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(NetError::Timeout.to_string().contains("timed out"));
        assert!(NetError::Closed.to_string().contains("closed"));
        assert!(NetError::Remote { message: "boom".into() }.to_string().contains("boom"));
    }
}
