//! The broker server: accepts TCP connections and bridges them onto an
//! embedded [`Broker`].
//!
//! One thread per connection direction (reader / writer) plus one forwarder
//! thread per remote subscription — the same thread-per-component structure
//! as the 2006 testbed clients ("each publisher or subscriber is realized
//! as a single Java thread").
//!
//! The server keeps its own [`MetricsRegistry`] (see
//! [`BrokerServer::metrics`]): gauge `net.connections.active` counts live
//! connections and gauge `net.conn.<id>.queue_depth` tracks each
//! connection's outbound response backlog — the wire-side analogue of the
//! broker's publish queue, so a saturated subscriber link shows up as a
//! growing depth instead of silently inflating delivery latency.

use crate::wire::{
    decode_request, encode_response, read_frame, Request, Response, WireFilter, WireMessage,
    FEATURE_FLOW, FEATURE_TRACE,
};
use crossbeam::channel::{unbounded, Receiver, Sender};
use rjms_broker::{Broker, BrokerConfig, Error, Filter, FlowGate, Publisher, TopicPattern};
use rjms_flow::CreditWindow;
use rjms_metrics::{clock, Gauge, MetricsRegistry};
use rjms_trace::{FlightRecorder, SpanEvent, Stage};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A TCP front-end for an embedded [`Broker`].
///
/// # Examples
///
/// ```no_run
/// use rjms_net::server::BrokerServer;
/// use rjms_broker::BrokerConfig;
///
/// let server = BrokerServer::start(BrokerConfig::default(), "127.0.0.1:0")?;
/// println!("listening on {}", server.local_addr());
/// # Ok::<(), std::io::Error>(())
/// ```
pub struct BrokerServer {
    broker: Arc<Broker>,
    local_addr: SocketAddr,
    stopping: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    /// Clones of accepted streams, so shutdown can tear live connections
    /// down (a closed stream ends the connection's reader loop).
    connections: Arc<parking_lot::Mutex<Vec<TcpStream>>>,
    metrics: MetricsRegistry,
}

impl std::fmt::Debug for BrokerServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BrokerServer").field("local_addr", &self.local_addr).finish()
    }
}

impl BrokerServer {
    /// Starts a broker and listens on `addr` (use port 0 for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(
        config: BrokerConfig,
        addr: impl std::net::ToSocketAddrs,
    ) -> std::io::Result<BrokerServer> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let broker = Arc::new(Broker::start(config));
        let stopping = Arc::new(AtomicBool::new(false));
        let metrics = MetricsRegistry::new();

        let connections = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let accept_broker = Arc::clone(&broker);
        let accept_stopping = Arc::clone(&stopping);
        let accept_connections = Arc::clone(&connections);
        let accept_metrics = metrics.clone();
        let accept_thread = std::thread::Builder::new()
            .name("rjms-net-accept".to_owned())
            .spawn(move || {
                let next_connection_id = AtomicU64::new(1);
                for stream in listener.incoming() {
                    if accept_stopping.load(Ordering::Relaxed) {
                        break;
                    }
                    match stream {
                        Ok(stream) => {
                            if let Ok(clone) = stream.try_clone() {
                                accept_connections.lock().push(clone);
                            }
                            let broker = Arc::clone(&accept_broker);
                            let recorder = accept_broker.tracer();
                            let stopping = Arc::clone(&accept_stopping);
                            let metrics = accept_metrics.clone();
                            let connection_id = next_connection_id.fetch_add(1, Ordering::Relaxed);
                            let _ = std::thread::Builder::new()
                                .name("rjms-net-conn".to_owned())
                                .spawn(move || {
                                    handle_connection(
                                        broker,
                                        recorder,
                                        stopping,
                                        stream,
                                        metrics,
                                        connection_id,
                                    )
                                });
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("failed to spawn accept thread");

        Ok(BrokerServer {
            broker,
            local_addr,
            stopping,
            accept_thread: Some(accept_thread),
            connections,
            metrics,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The embedded broker, for local administration (creating topics,
    /// reading stats) alongside remote clients.
    pub fn broker(&self) -> &Broker {
        &self.broker
    }

    /// The server's wire-level instrument registry: gauge
    /// `net.connections.active`, and per-connection outbound queue depths
    /// under `net.conn.<id>.queue_depth` (reset to 0 when the connection
    /// closes). Broker-side instruments live in
    /// [`Broker::metrics`](rjms_broker::Broker::metrics) instead.
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics.clone()
    }

    /// Stops accepting connections and shuts the broker down. Established
    /// connections are torn down as their streams fail.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        // ORD: SeqCst swap — shutdown runs once per server lifetime, so
        // the strongest ordering is free and makes the stop flag a clean
        // happens-before anchor for the accept loop's load.
        if self.stopping.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a dummy connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        // Tear down live connections; their reader loops exit on the
        // closed streams and the embedded broker stops once the last
        // connection handler drops its handle.
        for stream in self.connections.lock().drain(..) {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

impl Drop for BrokerServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Converts a wire filter into a broker filter.
fn build_filter(filter: WireFilter) -> Result<Filter, String> {
    match filter {
        WireFilter::None => Ok(Filter::None),
        WireFilter::CorrelationId(p) => Filter::correlation_id(&p).map_err(|e| e.to_string()),
        WireFilter::Selector(s) => Filter::selector(&s).map_err(|e| e.to_string()),
    }
}

/// State of one client connection.
struct Connection {
    broker: Arc<Broker>,
    out: Sender<Response>,
    publishers: HashMap<String, Publisher>,
    /// subscription id → cancel flag for its forwarder thread.
    subscriptions: HashMap<u32, Arc<AtomicBool>>,
    closed: Arc<AtomicBool>,
    /// Whether the client negotiated [`FEATURE_TRACE`] via
    /// [`Request::Hello`]. Deliveries to pre-handshake clients have their
    /// trace context stripped so they only ever see pre-trace opcodes.
    traced: Arc<AtomicBool>,
    /// The broker's admission gate, when flow control is enabled.
    gate: Option<Arc<FlowGate>>,
    /// Whether the client negotiated [`FEATURE_FLOW`] *and* the broker has
    /// flow control on. Only then do flow opcodes go on the wire.
    flow_negotiated: bool,
    /// Server-side credit accounting for a flow-negotiated peer: counts
    /// publishes and replenishes the client with [`Response::CreditGrant`]
    /// every half window.
    credit: Option<CreditWindow>,
}

fn handle_connection(
    broker: Arc<Broker>,
    recorder: Option<Arc<FlightRecorder>>,
    stopping: Arc<AtomicBool>,
    stream: TcpStream,
    metrics: MetricsRegistry,
    connection_id: u64,
) {
    if stopping.load(Ordering::Relaxed) {
        return;
    }
    let Ok(write_stream) = stream.try_clone() else { return };
    let (out_tx, out_rx) = unbounded::<Response>();
    let closed = Arc::new(AtomicBool::new(false));

    let active = metrics.gauge("net.connections.active");
    active.add(1);
    let depth = metrics.gauge(&format!("net.conn.{connection_id}.queue_depth"));

    // Writer thread: serializes every outgoing response.
    let writer_closed = Arc::clone(&closed);
    let writer_depth = Arc::clone(&depth);
    let writer = std::thread::Builder::new()
        .name("rjms-net-writer".to_owned())
        .spawn(move || writer_loop(write_stream, out_rx, writer_closed, writer_depth, recorder))
        .expect("failed to spawn writer thread");

    let gate = broker.flow();
    let mut conn = Connection {
        broker,
        out: out_tx,
        publishers: HashMap::new(),
        subscriptions: HashMap::new(),
        closed: Arc::clone(&closed),
        traced: Arc::new(AtomicBool::new(false)),
        gate,
        flow_negotiated: false,
        credit: None,
    };
    reader_loop(stream, &mut conn);

    // Tear down: cancel forwarders, close the writer.
    closed.store(true, Ordering::Relaxed);
    for flag in conn.subscriptions.values() {
        flag.store(true, Ordering::Relaxed);
    }
    drop(conn); // drops the out sender; writer exits once forwarders do
    let _ = writer.join();
    depth.set(0);
    active.add(-1);
}

fn writer_loop(
    mut stream: TcpStream,
    out_rx: Receiver<Response>,
    closed: Arc<AtomicBool>,
    depth: Arc<Gauge>,
    recorder: Option<Arc<FlightRecorder>>,
) {
    while let Ok(resp) = out_rx.recv() {
        // Responses still queued behind the one just pulled: the
        // connection's outbound backlog.
        depth.set(out_rx.len() as i64);
        let frame = encode_response(&resp);
        // A delivery whose trace id the broker tail-sampled gets a
        // wire-flush span appended to its chain, stamping the moment its
        // bytes left the server.
        let sampled = recorder.as_ref().and_then(|r| match &resp {
            Response::Delivery { subscription_id, message } => message
                .trace
                .filter(|t| r.is_sampled(t.trace_id))
                .map(|t| (t.trace_id, *subscription_id)),
            _ => None,
        });
        let flush_start = sampled.map(|_| (clock::now(), Instant::now()));
        if stream.write_all(&frame).is_err() {
            closed.store(true, Ordering::Relaxed);
            break;
        }
        if let (Some(r), Some((trace_id, subscription_id)), Some((start_ticks, t0))) =
            (recorder.as_ref(), sampled, flush_start)
        {
            r.record(SpanEvent {
                trace_id,
                stage: Stage::WireFlush,
                start_ticks,
                duration_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                aux: u64::from(subscription_id),
            });
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn reader_loop(mut stream: TcpStream, conn: &mut Connection) {
    loop {
        if conn.closed.load(Ordering::Relaxed) {
            break;
        }
        let body = match read_frame(&mut stream) {
            Ok(Some(body)) => body,
            Ok(None) | Err(_) => break,
        };
        let request = match decode_request(body) {
            Ok(r) => r,
            Err(_) => break, // protocol violation: drop the connection
        };
        if !handle_request(conn, request) {
            break;
        }
    }
}

/// Handles one request; returns `false` when the connection should close.
fn handle_request(conn: &mut Connection, request: Request) -> bool {
    let (request_id, outcome) = match request {
        Request::Ping { request_id } => {
            return conn.out.send(Response::Pong { request_id }).is_ok();
        }
        Request::Hello { request_id, features } => {
            conn.traced.store(features & FEATURE_TRACE != 0, Ordering::Relaxed);
            // Flow control is only negotiated when both sides support it;
            // otherwise the client is paced by the compatibility throttle.
            conn.flow_negotiated = features & FEATURE_FLOW != 0 && conn.gate.is_some();
            if conn.out.send(Response::Ok { request_id }).is_err() {
                return false;
            }
            if let (true, Some(gate)) = (conn.flow_negotiated, &conn.gate) {
                // Open the credit window with a full initial grant.
                let window = gate.config().credit_window;
                conn.credit = Some(CreditWindow::new(window));
                return conn.out.send(Response::CreditGrant { credits: window }).is_ok();
            }
            return true;
        }
        Request::CreateTopic { request_id, topic } => {
            (request_id, conn.broker.create_topic(&topic).map_err(|e| e.to_string()))
        }
        Request::Publish { request_id, topic, message } => {
            return handle_publish(conn, request_id, &topic, message);
        }
        Request::Subscribe { request_id, subscription_id, topic, filter } => {
            (request_id, subscribe(conn, subscription_id, SubscribeTarget::Topic(topic), filter))
        }
        Request::SubscribePattern { request_id, subscription_id, pattern, filter } => (
            request_id,
            subscribe(conn, subscription_id, SubscribeTarget::Pattern(pattern), filter),
        ),
        Request::SubscribeDurable { request_id, subscription_id, topic, name, filter } => (
            request_id,
            subscribe(conn, subscription_id, SubscribeTarget::Durable { topic, name }, filter),
        ),
        Request::UnsubscribeDurable { request_id, topic, name } => {
            (request_id, conn.broker.unsubscribe_durable(&topic, &name).map_err(|e| e.to_string()))
        }
        Request::Unsubscribe { request_id, subscription_id } => {
            let outcome = match conn.subscriptions.remove(&subscription_id) {
                Some(flag) => {
                    flag.store(true, Ordering::Relaxed);
                    Ok(())
                }
                None => Err(format!("unknown subscription {subscription_id}")),
            };
            (request_id, outcome)
        }
    };
    let response = match outcome {
        Ok(()) => Response::Ok { request_id },
        Err(message) => Response::Error { request_id, message },
    };
    conn.out.send(response).is_ok()
}

/// Handles one publish request end to end: credit replenishment for flow
/// peers, admission, and the outcome response. Returns `false` when the
/// connection should close.
fn handle_publish(
    conn: &mut Connection,
    request_id: u32,
    topic: &str,
    message: WireMessage,
) -> bool {
    // The client spent one credit sending this publish, whatever its
    // outcome; replenish every half window.
    let grant = conn.credit.as_mut().and_then(CreditWindow::consume);
    let response = match publish(conn, topic, message) {
        Ok(()) => Response::Ok { request_id },
        Err(Error::PublishShed { class }) if conn.flow_negotiated => {
            Response::PublishDenied { request_id, class, deferred: false, retry_after_ms: 0 }
        }
        Err(Error::PublishDeferred { class, retry_after_ms }) if conn.flow_negotiated => {
            Response::PublishDenied { request_id, class, deferred: true, retry_after_ms }
        }
        // Pre-flow peers only ever see the original error frame.
        Err(e) => Response::Error { request_id, message: e.to_string() },
    };
    if conn.out.send(response).is_err() {
        return false;
    }
    match grant {
        Some(credits) => conn.out.send(Response::CreditGrant { credits }).is_ok(),
        None => true,
    }
}

fn publish(conn: &mut Connection, topic: &str, message: WireMessage) -> Result<(), Error> {
    if !conn.publishers.contains_key(topic) {
        let publisher = conn.broker.publisher(topic)?;
        conn.publishers.insert(topic.to_owned(), publisher);
    }
    let publisher = conn.publishers.get(topic).expect("just inserted");
    if conn.flow_negotiated || conn.gate.is_none() {
        return publisher.publish(message.into_message());
    }
    // Compatibility throttle: a pre-flow peer cannot understand the flow
    // opcodes, so deferred publishes are absorbed server-side — retry up
    // to `compat_max_wait_ms`, then fall back to a plain error frame.
    // Shed publishes fail immediately (waiting would not help).
    let max_wait = conn
        .gate
        .as_ref()
        .map(|g| Duration::from_millis(g.config().compat_max_wait_ms))
        .unwrap_or_default();
    let deadline = Instant::now() + max_wait;
    loop {
        match publisher.publish(message.clone().into_message()) {
            Err(Error::PublishDeferred { class, retry_after_ms }) => {
                let retry = Duration::from_millis(retry_after_ms);
                if Instant::now() + retry > deadline {
                    return Err(Error::PublishDeferred { class, retry_after_ms });
                }
                std::thread::sleep(retry);
            }
            other => return other,
        }
    }
}

enum SubscribeTarget {
    Topic(String),
    Pattern(String),
    Durable { topic: String, name: String },
}

fn subscribe(
    conn: &mut Connection,
    subscription_id: u32,
    target: SubscribeTarget,
    filter: WireFilter,
) -> Result<(), String> {
    if conn.subscriptions.contains_key(&subscription_id) {
        return Err(format!("subscription id {subscription_id} already in use"));
    }
    let filter = build_filter(filter)?;
    let builder = match target {
        SubscribeTarget::Topic(topic) => conn.broker.subscription(&topic),
        SubscribeTarget::Pattern(pattern) => {
            // Validate eagerly so a malformed pattern reports its parse
            // error instead of falling through as an unknown literal topic.
            let _: TopicPattern = pattern
                .parse()
                .map_err(|e: rjms_broker::pattern::ParseTopicPatternError| e.to_string())?;
            conn.broker.subscription(&pattern)
        }
        SubscribeTarget::Durable { topic, name } => conn.broker.subscription(&topic).durable(&name),
    };
    let subscriber = builder.filter(filter).open().map_err(|e| e.to_string())?;

    let cancel = Arc::new(AtomicBool::new(false));
    conn.subscriptions.insert(subscription_id, Arc::clone(&cancel));

    // Forwarder: pumps deliveries into the connection's writer.
    let out = conn.out.clone();
    let closed = Arc::clone(&conn.closed);
    let traced = Arc::clone(&conn.traced);
    std::thread::Builder::new()
        .name(format!("rjms-net-fwd-{subscription_id}"))
        .spawn(move || {
            while !cancel.load(Ordering::Relaxed) && !closed.load(Ordering::Relaxed) {
                match subscriber.receive_timeout(Duration::from_millis(50)) {
                    Some(message) => {
                        let mut wire = WireMessage::from_message(&message);
                        if !traced.load(Ordering::Relaxed) {
                            // Pre-handshake client: strip the context so the
                            // frame encodes with the original opcode.
                            wire = wire.without_trace();
                        }
                        let delivery = Response::Delivery { subscription_id, message: wire };
                        if out.send(delivery).is_err() {
                            // Connection died mid-delivery: hand the pulled
                            // message back so a durable subscription retains
                            // it instead of losing it.
                            subscriber.return_message(message);
                            break;
                        }
                    }
                    None => {
                        // Timeout: loop to re-check the cancel flags. A
                        // closed broker also lands here via the drained
                        // channel; detect it through the closed flag.
                    }
                }
            }
            // Dropping `subscriber` cancels the broker-side subscription.
        })
        .expect("failed to spawn forwarder thread");
    Ok(())
}
