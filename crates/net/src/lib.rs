//! # rjms-net
//!
//! A TCP wire layer for the [`rjms_broker`] publish/subscribe broker, so
//! that publishers and subscribers can run in separate processes or on
//! separate machines — like the five-machine Gbit testbed of Menth &
//! Henjes's FioranoMQ study.
//!
//! * [`wire`] — the length-prefixed binary frame format (hand-rolled on
//!   [`bytes`], round-trip property tested),
//! * [`server`] — [`server::BrokerServer`], a TCP front-end around an
//!   embedded broker,
//! * [`client`] — [`client::RemoteBroker`] / [`client::RemoteSubscriber`],
//!   the remote counterpart of the in-process API.
//!
//! Failures surface through the unified workspace [`enum@Error`]; the wire
//! layer records round-trip latency (`net.rtt_ns`, client side) and
//! per-connection outbound queue depths (`net.conn.<id>.queue_depth`,
//! server side) into `rjms-metrics` registries — see
//! [`client::RemoteBroker::metrics`] and [`server::BrokerServer::metrics`].
//!
//! ## Example
//!
//! ```
//! use rjms_net::server::BrokerServer;
//! use rjms_net::client::RemoteBroker;
//! use rjms_net::wire::WireFilter;
//! use rjms_broker::{BrokerConfig, Message};
//! use std::time::Duration;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = BrokerServer::start(BrokerConfig::default(), "127.0.0.1:0")?;
//! let client = RemoteBroker::connect(server.local_addr())?;
//!
//! client.create_topic("stocks")?;
//! let sub = client.subscribe("stocks", WireFilter::Selector("price < 50.0".into()))?;
//! client.publish("stocks", &Message::builder().property("price", 42.0).build())?;
//!
//! let m = sub.receive_timeout(Duration::from_secs(2)).expect("delivered over TCP");
//! assert_eq!(m.property("price"), Some(&42.0.into()));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod error;
pub mod server;
pub mod wire;

pub use client::{RemoteBroker, RemoteSubscriber};
pub use error::Error;
pub use server::BrokerServer;
pub use wire::{Request, Response, WireFilter, WireMessage};
