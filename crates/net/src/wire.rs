//! The wire format: length-prefixed binary frames.
//!
//! Every frame is `u32 length (big endian, of the remainder) ++ u8 opcode ++
//! payload`. Strings are `u32 length ++ UTF-8 bytes`; optional fields are
//! `u8 presence ++ value`. The format is hand-rolled on [`bytes`] — the
//! workspace deliberately carries no serde wire backend — and round-trip
//! property tested.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use rjms_broker::message::{Message, Priority};
use rjms_selector::Value;
use std::fmt;

/// Maximum accepted frame size (16 MiB) — guards against corrupt length
/// prefixes allocating unbounded memory.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// [`Request::Hello`] feature bit: the client understands trace-context
/// frames (traced publishes, opcode 0x0A, and traced deliveries, opcode
/// 0x85).
///
/// Trace context travels in *new* opcodes rather than appended fields
/// because the decoder rejects trailing bytes in every frame
/// (`ensure_drained`): a pre-trace peer must never see a trace-bearing
/// frame, which the feature handshake guarantees.
pub const FEATURE_TRACE: u32 = 1;

/// [`Request::Hello`] feature bit: the client understands credit-based
/// flow control — [`Response::CreditGrant`] (opcode 0x86) and
/// [`Response::PublishDenied`] (opcode 0x87).
///
/// Like tracing, flow control travels in *new* opcodes so the handshake
/// keeps pre-flow peers byte-compatible: a client that never advertises
/// this bit is paced server-side (the compatibility throttle) and only
/// ever sees the original response frames.
pub const FEATURE_FLOW: u32 = 2;

/// A decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// What went wrong.
    pub message: String,
}

impl DecodeError {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

/// Frames sent from client to server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Create a topic.
    CreateTopic {
        /// Correlates the response.
        request_id: u32,
        /// The topic name.
        topic: String,
    },
    /// Publish a message to a topic.
    Publish {
        /// Correlates the response.
        request_id: u32,
        /// The topic name.
        topic: String,
        /// The message.
        message: WireMessage,
    },
    /// Subscribe to a topic (exact name) with a filter.
    Subscribe {
        /// Correlates the response.
        request_id: u32,
        /// Client-chosen subscription id; delivered messages carry it.
        subscription_id: u32,
        /// The topic name.
        topic: String,
        /// The filter specification.
        filter: WireFilter,
    },
    /// Subscribe to a topic *pattern* (`orders.*`, `sensors.>`).
    SubscribePattern {
        /// Correlates the response.
        request_id: u32,
        /// Client-chosen subscription id.
        subscription_id: u32,
        /// The pattern source text.
        pattern: String,
        /// The filter specification.
        filter: WireFilter,
    },
    /// Connect to (or create) a named *durable* subscription on a topic.
    SubscribeDurable {
        /// Correlates the response.
        request_id: u32,
        /// Client-chosen subscription id.
        subscription_id: u32,
        /// The topic name.
        topic: String,
        /// The durable subscription name.
        name: String,
        /// The filter specification.
        filter: WireFilter,
    },
    /// Permanently remove a *disconnected* durable subscription.
    UnsubscribeDurable {
        /// Correlates the response.
        request_id: u32,
        /// The topic name.
        topic: String,
        /// The durable subscription name.
        name: String,
    },
    /// Cancel a subscription.
    Unsubscribe {
        /// Correlates the response.
        request_id: u32,
        /// The subscription to cancel.
        subscription_id: u32,
    },
    /// Liveness probe.
    Ping {
        /// Correlates the response.
        request_id: u32,
    },
    /// Capability handshake, sent once after connecting. Servers answer
    /// with [`Response::Ok`] and remember the advertised features for the
    /// connection's lifetime. Clients that never send it (pre-handshake
    /// peers) get the original wire format on every frame.
    Hello {
        /// Correlates the response.
        request_id: u32,
        /// Bitset of `FEATURE_*` capability flags the client understands.
        features: u32,
    },
}

/// Frames sent from server to client.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The request succeeded.
    Ok {
        /// The request this answers.
        request_id: u32,
    },
    /// The request failed.
    Error {
        /// The request this answers.
        request_id: u32,
        /// Human-readable reason.
        message: String,
    },
    /// A delivered message (not correlated to a request).
    Delivery {
        /// The subscription it belongs to.
        subscription_id: u32,
        /// The message.
        message: WireMessage,
    },
    /// Answer to [`Request::Ping`].
    Pong {
        /// The request this answers.
        request_id: u32,
    },
    /// A publish-credit replenishment (not correlated to a request; only
    /// sent to peers that negotiated [`FEATURE_FLOW`]). The client adds
    /// `credits` to its balance and may publish while the balance is
    /// positive.
    CreditGrant {
        /// Number of publish credits granted.
        credits: u32,
    },
    /// Admission control rejected a publish (only sent to peers that
    /// negotiated [`FEATURE_FLOW`]; pre-flow peers get a plain
    /// [`Response::Error`] after the compatibility throttle).
    PublishDenied {
        /// The request this answers.
        request_id: u32,
        /// The admission class of the rejected publish.
        class: u8,
        /// `true` if deferred (retry after `retry_after_ms`); `false` if
        /// shed (retrying immediately will not help).
        deferred: bool,
        /// Suggested retry delay in milliseconds (0 when shed).
        retry_after_ms: u64,
    },
}

/// A filter as it travels on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum WireFilter {
    /// No filter.
    None,
    /// Correlation-ID filter pattern (e.g. `[7;13]`).
    CorrelationId(String),
    /// Full selector source text.
    Selector(String),
}

/// End-to-end trace context carried alongside a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTrace {
    /// The origin-assigned nonzero trace id.
    pub trace_id: u64,
    /// Nanoseconds since the Unix epoch at trace creation.
    pub origin_ns: u64,
}

/// A message as it travels on the wire (the subset of header fields the
/// broker models, the typed properties, and the body).
#[derive(Debug, Clone, PartialEq)]
pub struct WireMessage {
    /// Correlation id header.
    pub correlation_id: Option<String>,
    /// `JMSType` header.
    pub message_type: Option<String>,
    /// Priority 0–9.
    pub priority: u8,
    /// Remaining time to live in milliseconds; `None` = never expires.
    /// (`Some(0)` is an already-expired message, which the receiving broker
    /// will discard — distinct from no expiration.)
    pub ttl_millis: Option<u64>,
    /// Typed user properties.
    pub properties: Vec<(String, Value)>,
    /// Opaque payload.
    pub body: Bytes,
    /// Trace context, when the peer negotiated [`FEATURE_TRACE`]; `None`
    /// selects the original (pre-trace) frame encoding.
    pub trace: Option<WireTrace>,
}

impl WireMessage {
    /// Converts into a broker [`Message`] (stamps id and timestamp; adopts
    /// the wire trace context when present, else generates a fresh one).
    pub fn into_message(self) -> Message {
        let mut b = Message::builder().priority(Priority::new(self.priority.min(9)));
        if let Some(t) = self.trace {
            b = b.trace_context(t.trace_id, t.origin_ns);
        }
        if let Some(c) = self.correlation_id {
            b = b.correlation_id(c);
        }
        if let Some(t) = self.message_type {
            b = b.message_type(t);
        }
        if let Some(ttl) = self.ttl_millis {
            b = b.time_to_live(std::time::Duration::from_millis(ttl));
        }
        for (k, v) in self.properties {
            b = b.property(k, v);
        }
        b.body(self.body).build()
    }

    /// Builds the wire form of a broker message (drops id/timestamp, which
    /// the receiving broker re-stamps).
    pub fn from_message(m: &Message) -> Self {
        let remaining_ttl = m.expiration_millis().map(|e| e.saturating_sub(m.timestamp_millis()));
        WireMessage {
            correlation_id: m.correlation_id().map(str::to_owned),
            message_type: m.message_type().map(str::to_owned),
            priority: m.priority().level(),
            ttl_millis: remaining_ttl,
            properties: m.properties().iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
            body: m.body().clone(),
            trace: Some(WireTrace { trace_id: m.trace_id(), origin_ns: m.trace_origin_ns() }),
        }
    }

    /// Drops the trace context, selecting the original frame encoding —
    /// used when the receiving peer has not negotiated [`FEATURE_TRACE`].
    pub fn without_trace(mut self) -> Self {
        self.trace = None;
        self
    }
}

// --- primitive encoders/decoders -----------------------------------------

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String, DecodeError> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(DecodeError::new("string length exceeds frame"));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::new("invalid UTF-8 string"))
}

fn get_u32(buf: &mut Bytes) -> Result<u32, DecodeError> {
    if buf.remaining() < 4 {
        return Err(DecodeError::new("truncated u32"));
    }
    Ok(buf.get_u32())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::new("truncated u64"));
    }
    Ok(buf.get_u64())
}

fn get_u8(buf: &mut Bytes) -> Result<u8, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::new("truncated u8"));
    }
    Ok(buf.get_u8())
}

fn put_opt_str(buf: &mut BytesMut, s: &Option<String>) {
    match s {
        None => buf.put_u8(0),
        Some(v) => {
            buf.put_u8(1);
            put_str(buf, v);
        }
    }
}

fn get_opt_str(buf: &mut Bytes) -> Result<Option<String>, DecodeError> {
    match get_u8(buf)? {
        0 => Ok(None),
        1 => Ok(Some(get_str(buf)?)),
        other => Err(DecodeError::new(format!("invalid option tag {other}"))),
    }
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Bool(b) => {
            buf.put_u8(0);
            buf.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            buf.put_u8(1);
            buf.put_i64(*i);
        }
        Value::Float(f) => {
            buf.put_u8(2);
            buf.put_f64(*f);
        }
        Value::Str(s) => {
            buf.put_u8(3);
            put_str(buf, s);
        }
    }
}

fn get_value(buf: &mut Bytes) -> Result<Value, DecodeError> {
    match get_u8(buf)? {
        0 => Ok(Value::Bool(get_u8(buf)? != 0)),
        1 => {
            if buf.remaining() < 8 {
                return Err(DecodeError::new("truncated i64"));
            }
            Ok(Value::Int(buf.get_i64()))
        }
        2 => {
            if buf.remaining() < 8 {
                return Err(DecodeError::new("truncated f64"));
            }
            Ok(Value::Float(buf.get_f64()))
        }
        3 => Ok(Value::Str(get_str(buf)?)),
        other => Err(DecodeError::new(format!("invalid value tag {other}"))),
    }
}

fn put_message(buf: &mut BytesMut, m: &WireMessage) {
    put_opt_str(buf, &m.correlation_id);
    put_opt_str(buf, &m.message_type);
    buf.put_u8(m.priority);
    match m.ttl_millis {
        None => buf.put_u8(0),
        Some(ttl) => {
            buf.put_u8(1);
            buf.put_u64(ttl);
        }
    }
    buf.put_u32(m.properties.len() as u32);
    for (k, v) in &m.properties {
        put_str(buf, k);
        put_value(buf, v);
    }
    buf.put_u32(m.body.len() as u32);
    buf.put_slice(&m.body);
}

fn get_message(buf: &mut Bytes) -> Result<WireMessage, DecodeError> {
    let correlation_id = get_opt_str(buf)?;
    let message_type = get_opt_str(buf)?;
    let priority = get_u8(buf)?;
    let ttl_millis = match get_u8(buf)? {
        0 => None,
        1 => Some(get_u64(buf)?),
        other => return Err(DecodeError::new(format!("invalid ttl tag {other}"))),
    };
    let prop_count = get_u32(buf)? as usize;
    if prop_count > MAX_FRAME_LEN / 2 {
        return Err(DecodeError::new("property count exceeds frame"));
    }
    let mut properties = Vec::with_capacity(prop_count.min(1024));
    for _ in 0..prop_count {
        let k = get_str(buf)?;
        let v = get_value(buf)?;
        properties.push((k, v));
    }
    let body_len = get_u32(buf)? as usize;
    if buf.remaining() < body_len {
        return Err(DecodeError::new("body length exceeds frame"));
    }
    let body = buf.split_to(body_len);
    Ok(WireMessage {
        correlation_id,
        message_type,
        priority,
        ttl_millis,
        properties,
        body,
        trace: None,
    })
}

fn put_trace(buf: &mut BytesMut, t: &WireTrace) {
    buf.put_u64(t.trace_id);
    buf.put_u64(t.origin_ns);
}

fn get_trace(buf: &mut Bytes) -> Result<WireTrace, DecodeError> {
    let trace_id = get_u64(buf)?;
    if trace_id == 0 {
        return Err(DecodeError::new("trace id must be nonzero"));
    }
    let origin_ns = get_u64(buf)?;
    Ok(WireTrace { trace_id, origin_ns })
}

fn put_filter(buf: &mut BytesMut, f: &WireFilter) {
    match f {
        WireFilter::None => buf.put_u8(0),
        WireFilter::CorrelationId(p) => {
            buf.put_u8(1);
            put_str(buf, p);
        }
        WireFilter::Selector(s) => {
            buf.put_u8(2);
            put_str(buf, s);
        }
    }
}

fn get_filter(buf: &mut Bytes) -> Result<WireFilter, DecodeError> {
    match get_u8(buf)? {
        0 => Ok(WireFilter::None),
        1 => Ok(WireFilter::CorrelationId(get_str(buf)?)),
        2 => Ok(WireFilter::Selector(get_str(buf)?)),
        other => Err(DecodeError::new(format!("invalid filter tag {other}"))),
    }
}

// --- frame encoders/decoders ----------------------------------------------

/// Encodes a request into one length-prefixed frame.
pub fn encode_request(req: &Request) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    match req {
        Request::CreateTopic { request_id, topic } => {
            body.put_u8(0x01);
            body.put_u32(*request_id);
            put_str(&mut body, topic);
        }
        Request::Publish { request_id, topic, message } => {
            // A trace-bearing message selects the traced opcode (0x0A) with
            // the context appended after the message; without one the frame
            // is byte-identical to the pre-trace format.
            body.put_u8(if message.trace.is_some() { 0x0A } else { 0x02 });
            body.put_u32(*request_id);
            put_str(&mut body, topic);
            put_message(&mut body, message);
            if let Some(t) = &message.trace {
                put_trace(&mut body, t);
            }
        }
        Request::Subscribe { request_id, subscription_id, topic, filter } => {
            body.put_u8(0x03);
            body.put_u32(*request_id);
            body.put_u32(*subscription_id);
            put_str(&mut body, topic);
            put_filter(&mut body, filter);
        }
        Request::SubscribePattern { request_id, subscription_id, pattern, filter } => {
            body.put_u8(0x04);
            body.put_u32(*request_id);
            body.put_u32(*subscription_id);
            put_str(&mut body, pattern);
            put_filter(&mut body, filter);
        }
        Request::Unsubscribe { request_id, subscription_id } => {
            body.put_u8(0x05);
            body.put_u32(*request_id);
            body.put_u32(*subscription_id);
        }
        Request::SubscribeDurable { request_id, subscription_id, topic, name, filter } => {
            body.put_u8(0x07);
            body.put_u32(*request_id);
            body.put_u32(*subscription_id);
            put_str(&mut body, topic);
            put_str(&mut body, name);
            put_filter(&mut body, filter);
        }
        Request::UnsubscribeDurable { request_id, topic, name } => {
            body.put_u8(0x08);
            body.put_u32(*request_id);
            put_str(&mut body, topic);
            put_str(&mut body, name);
        }
        Request::Ping { request_id } => {
            body.put_u8(0x06);
            body.put_u32(*request_id);
        }
        Request::Hello { request_id, features } => {
            body.put_u8(0x09);
            body.put_u32(*request_id);
            body.put_u32(*features);
        }
    }
    finish_frame(body)
}

/// Encodes a response into one length-prefixed frame.
pub fn encode_response(resp: &Response) -> Bytes {
    let mut body = BytesMut::with_capacity(64);
    match resp {
        Response::Ok { request_id } => {
            body.put_u8(0x81);
            body.put_u32(*request_id);
        }
        Response::Error { request_id, message } => {
            body.put_u8(0x82);
            body.put_u32(*request_id);
            put_str(&mut body, message);
        }
        Response::Delivery { subscription_id, message } => {
            body.put_u8(if message.trace.is_some() { 0x85 } else { 0x83 });
            body.put_u32(*subscription_id);
            put_message(&mut body, message);
            if let Some(t) = &message.trace {
                put_trace(&mut body, t);
            }
        }
        Response::Pong { request_id } => {
            body.put_u8(0x84);
            body.put_u32(*request_id);
        }
        Response::CreditGrant { credits } => {
            body.put_u8(0x86);
            body.put_u32(*credits);
        }
        Response::PublishDenied { request_id, class, deferred, retry_after_ms } => {
            body.put_u8(0x87);
            body.put_u32(*request_id);
            body.put_u8(*class);
            body.put_u8(u8::from(*deferred));
            body.put_u64(*retry_after_ms);
        }
    }
    finish_frame(body)
}

fn finish_frame(body: BytesMut) -> Bytes {
    let mut frame = BytesMut::with_capacity(4 + body.len());
    frame.put_u32(body.len() as u32);
    frame.extend_from_slice(&body);
    frame.freeze()
}

/// Decodes a request frame *body* (the bytes after the length prefix).
pub fn decode_request(mut body: Bytes) -> Result<Request, DecodeError> {
    let op = get_u8(&mut body)?;
    let req = match op {
        0x01 => {
            Request::CreateTopic { request_id: get_u32(&mut body)?, topic: get_str(&mut body)? }
        }
        0x02 => Request::Publish {
            request_id: get_u32(&mut body)?,
            topic: get_str(&mut body)?,
            message: get_message(&mut body)?,
        },
        0x03 => Request::Subscribe {
            request_id: get_u32(&mut body)?,
            subscription_id: get_u32(&mut body)?,
            topic: get_str(&mut body)?,
            filter: get_filter(&mut body)?,
        },
        0x04 => Request::SubscribePattern {
            request_id: get_u32(&mut body)?,
            subscription_id: get_u32(&mut body)?,
            pattern: get_str(&mut body)?,
            filter: get_filter(&mut body)?,
        },
        0x05 => Request::Unsubscribe {
            request_id: get_u32(&mut body)?,
            subscription_id: get_u32(&mut body)?,
        },
        0x06 => Request::Ping { request_id: get_u32(&mut body)? },
        0x07 => Request::SubscribeDurable {
            request_id: get_u32(&mut body)?,
            subscription_id: get_u32(&mut body)?,
            topic: get_str(&mut body)?,
            name: get_str(&mut body)?,
            filter: get_filter(&mut body)?,
        },
        0x08 => Request::UnsubscribeDurable {
            request_id: get_u32(&mut body)?,
            topic: get_str(&mut body)?,
            name: get_str(&mut body)?,
        },
        0x09 => Request::Hello { request_id: get_u32(&mut body)?, features: get_u32(&mut body)? },
        0x0A => {
            let request_id = get_u32(&mut body)?;
            let topic = get_str(&mut body)?;
            let mut message = get_message(&mut body)?;
            message.trace = Some(get_trace(&mut body)?);
            Request::Publish { request_id, topic, message }
        }
        other => return Err(DecodeError::new(format!("unknown request opcode {other:#x}"))),
    };
    ensure_drained(&body)?;
    Ok(req)
}

/// Decodes a response frame *body* (the bytes after the length prefix).
pub fn decode_response(mut body: Bytes) -> Result<Response, DecodeError> {
    let op = get_u8(&mut body)?;
    let resp = match op {
        0x81 => Response::Ok { request_id: get_u32(&mut body)? },
        0x82 => Response::Error { request_id: get_u32(&mut body)?, message: get_str(&mut body)? },
        0x83 => Response::Delivery {
            subscription_id: get_u32(&mut body)?,
            message: get_message(&mut body)?,
        },
        0x84 => Response::Pong { request_id: get_u32(&mut body)? },
        0x85 => {
            let subscription_id = get_u32(&mut body)?;
            let mut message = get_message(&mut body)?;
            message.trace = Some(get_trace(&mut body)?);
            Response::Delivery { subscription_id, message }
        }
        0x86 => Response::CreditGrant { credits: get_u32(&mut body)? },
        0x87 => {
            let request_id = get_u32(&mut body)?;
            let class = get_u8(&mut body)?;
            let deferred = match get_u8(&mut body)? {
                0 => false,
                1 => true,
                other => return Err(DecodeError::new(format!("invalid deferred tag {other}"))),
            };
            let retry_after_ms = get_u64(&mut body)?;
            Response::PublishDenied { request_id, class, deferred, retry_after_ms }
        }
        other => return Err(DecodeError::new(format!("unknown response opcode {other:#x}"))),
    };
    ensure_drained(&body)?;
    Ok(resp)
}

fn ensure_drained(body: &Bytes) -> Result<(), DecodeError> {
    if body.has_remaining() {
        Err(DecodeError::new(format!("{} trailing bytes in frame", body.remaining())))
    } else {
        Ok(())
    }
}

/// Reads one frame body from a blocking reader (consuming the length
/// prefix). Returns `Ok(None)` on clean EOF at a frame boundary.
///
/// # Errors
///
/// I/O errors, oversized frames, or EOF mid-frame.
pub fn read_frame<R: std::io::Read>(reader: &mut R) -> std::io::Result<Option<Bytes>> {
    use std::io::{Error, ErrorKind};
    let mut len_buf = [0u8; 4];
    // Distinguish clean EOF (no bytes) from a truncated prefix.
    let mut filled = 0;
    while filled < 4 {
        match reader.read(&mut len_buf[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(Error::new(ErrorKind::UnexpectedEof, "truncated frame length")),
            n => filled += n,
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_LEN {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    Ok(Some(Bytes::from(body)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = encode_request(&req);
        // Strip the length prefix as read_frame would.
        let body = frame.slice(4..);
        assert_eq!(decode_request(body).unwrap(), req);
    }

    fn roundtrip_response(resp: Response) {
        let frame = encode_response(&resp);
        let body = frame.slice(4..);
        assert_eq!(decode_response(body).unwrap(), resp);
    }

    fn sample_message() -> WireMessage {
        WireMessage {
            correlation_id: Some("#7".into()),
            message_type: None,
            priority: 6,
            ttl_millis: Some(1500),
            properties: vec![
                ("color".into(), Value::Str("red".into())),
                ("weight".into(), Value::Int(-3)),
                ("ratio".into(), Value::Float(2.5)),
                ("urgent".into(), Value::Bool(true)),
            ],
            body: Bytes::from_static(b"payload"),
            trace: None,
        }
    }

    fn traced_message() -> WireMessage {
        WireMessage {
            trace: Some(WireTrace { trace_id: 0xFEED_F00D, origin_ns: 1_700_000_000_000_000_000 }),
            ..sample_message()
        }
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::CreateTopic { request_id: 1, topic: "a.b".into() });
        roundtrip_request(Request::Publish {
            request_id: 2,
            topic: "t".into(),
            message: sample_message(),
        });
        roundtrip_request(Request::Subscribe {
            request_id: 3,
            subscription_id: 9,
            topic: "t".into(),
            filter: WireFilter::Selector("a = 1".into()),
        });
        roundtrip_request(Request::SubscribePattern {
            request_id: 4,
            subscription_id: 10,
            pattern: "a.>".into(),
            filter: WireFilter::CorrelationId("[1;2]".into()),
        });
        roundtrip_request(Request::Unsubscribe { request_id: 5, subscription_id: 9 });
        roundtrip_request(Request::SubscribeDurable {
            request_id: 7,
            subscription_id: 11,
            topic: "t".into(),
            name: "worker".into(),
            filter: WireFilter::None,
        });
        roundtrip_request(Request::UnsubscribeDurable {
            request_id: 8,
            topic: "t".into(),
            name: "worker".into(),
        });
        roundtrip_request(Request::Ping { request_id: 6 });
        roundtrip_request(Request::Hello { request_id: 9, features: FEATURE_TRACE });
        roundtrip_request(Request::Publish {
            request_id: 10,
            topic: "t".into(),
            message: traced_message(),
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Ok { request_id: 1 });
        roundtrip_response(Response::Error { request_id: 2, message: "nope".into() });
        roundtrip_response(Response::Delivery { subscription_id: 3, message: sample_message() });
        roundtrip_response(Response::Delivery { subscription_id: 5, message: traced_message() });
        roundtrip_response(Response::Pong { request_id: 4 });
        roundtrip_response(Response::CreditGrant { credits: 64 });
        roundtrip_response(Response::PublishDenied {
            request_id: 7,
            class: 1,
            deferred: true,
            retry_after_ms: 40,
        });
        roundtrip_response(Response::PublishDenied {
            request_id: 8,
            class: 0,
            deferred: false,
            retry_after_ms: 0,
        });
    }

    #[test]
    fn flow_frames_use_new_opcodes_and_reject_truncation() {
        // New opcodes only: every frame a pre-flow peer can receive stays
        // byte-identical, exactly as with tracing.
        let grant = encode_response(&Response::CreditGrant { credits: 1 });
        assert_eq!(grant[4], 0x86);
        let denied = encode_response(&Response::PublishDenied {
            request_id: 1,
            class: 2,
            deferred: false,
            retry_after_ms: 0,
        });
        assert_eq!(denied[4], 0x87);
        for frame in [grant, denied] {
            let body = frame.slice(4..);
            for cut in 0..body.len() {
                assert!(decode_response(body.slice(..cut)).is_err(), "cut at {cut} did not error");
            }
        }
        // An out-of-range deferred tag is rejected.
        let mut forged = BytesMut::new();
        forged.put_u8(0x87);
        forged.put_u32(1);
        forged.put_u8(0);
        forged.put_u8(7); // invalid bool tag
        forged.put_u64(0);
        assert!(decode_response(forged.freeze()).is_err());
    }

    #[test]
    fn untraced_frames_keep_the_pre_trace_opcodes() {
        // Backwards compatibility: a message without trace context encodes
        // byte-identically to the original format (opcode 0x02 / 0x83), so
        // pre-trace peers can decode everything a handshake-less
        // connection sends.
        let req = encode_request(&Request::Publish {
            request_id: 1,
            topic: "t".into(),
            message: sample_message(),
        });
        assert_eq!(req[4], 0x02);
        let resp =
            encode_response(&Response::Delivery { subscription_id: 1, message: sample_message() });
        assert_eq!(resp[4], 0x83);
        // And trace-bearing frames use the new opcodes.
        let traced = encode_request(&Request::Publish {
            request_id: 1,
            topic: "t".into(),
            message: traced_message(),
        });
        assert_eq!(traced[4], 0x0A);
        let traced_resp =
            encode_response(&Response::Delivery { subscription_id: 1, message: traced_message() });
        assert_eq!(traced_resp[4], 0x85);
    }

    #[test]
    fn zero_trace_id_on_the_wire_is_rejected() {
        let mut frame = BytesMut::new();
        frame.put_u8(0x0A);
        frame.put_u32(1);
        put_str(&mut frame, "t");
        put_message(&mut frame, &sample_message());
        frame.put_u64(0); // forged zero trace id
        frame.put_u64(42);
        assert!(decode_request(frame.freeze()).is_err());
    }

    #[test]
    fn trace_context_survives_message_conversion() {
        let wire = traced_message();
        let msg = wire.clone().into_message();
        assert_eq!(msg.trace_id(), 0xFEED_F00D);
        assert_eq!(msg.trace_origin_ns(), 1_700_000_000_000_000_000);
        let back = WireMessage::from_message(&msg);
        assert_eq!(back.trace, wire.trace);
        assert_eq!(back.without_trace().trace, None);
        // An untraced wire message still yields a (freshly) traced broker
        // message — ids are stamped at the edge of the mesh.
        let fresh = sample_message().into_message();
        assert_ne!(fresh.trace_id(), 0);
    }

    #[test]
    fn wire_message_to_broker_message_and_back() {
        let wire = sample_message();
        let msg = wire.clone().into_message();
        assert_eq!(msg.correlation_id(), Some("#7"));
        assert_eq!(msg.priority().level(), 6);
        assert!(msg.expiration_millis().is_some());
        let back = WireMessage::from_message(&msg);
        assert!(back.ttl_millis.is_some());
        assert_eq!(back.correlation_id, wire.correlation_id);
        assert_eq!(back.priority, wire.priority);
        assert_eq!(back.body, wire.body);
        // Properties survive as a set (BTreeMap reorders them).
        let mut a = back.properties.clone();
        let mut b = wire.properties.clone();
        a.sort_by(|x, y| x.0.cmp(&y.0));
        b.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(a, b);
    }

    #[test]
    fn decode_rejects_unknown_opcode() {
        let body = Bytes::from_static(&[0x7f, 0, 0, 0, 1]);
        assert!(decode_request(body.clone()).is_err());
        assert!(decode_response(body).is_err());
    }

    #[test]
    fn decode_rejects_trailing_garbage() {
        let mut frame = BytesMut::new();
        frame.put_u8(0x06);
        frame.put_u32(1);
        frame.put_u8(0xaa); // trailing byte
        assert!(decode_request(frame.freeze()).is_err());
    }

    #[test]
    fn decode_rejects_truncation_everywhere() {
        // Truncate a valid publish frame at every byte offset: must error,
        // never panic.
        for message in [sample_message(), traced_message()] {
            let frame =
                encode_request(&Request::Publish { request_id: 2, topic: "t".into(), message });
            let body = frame.slice(4..);
            for cut in 0..body.len() {
                let truncated = body.slice(..cut);
                assert!(decode_request(truncated).is_err(), "cut at {cut} did not error");
            }
        }
    }

    #[test]
    fn read_frame_handles_eof() {
        use std::io::Cursor;
        // Clean EOF.
        let mut empty = Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut empty).unwrap().is_none());
        // EOF mid-prefix.
        let mut partial = Cursor::new(vec![0u8, 0]);
        assert!(read_frame(&mut partial).is_err());
        // EOF mid-body.
        let mut short = Cursor::new(vec![0, 0, 0, 10, 1, 2]);
        assert!(read_frame(&mut short).is_err());
        // A full frame.
        let frame = encode_request(&Request::Ping { request_id: 9 });
        let mut full = Cursor::new(frame.to_vec());
        let body = read_frame(&mut full).unwrap().unwrap();
        assert_eq!(decode_request(body).unwrap(), Request::Ping { request_id: 9 });
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut data = Vec::new();
        data.extend_from_slice(&(MAX_FRAME_LEN as u32 + 1).to_be_bytes());
        let mut cursor = std::io::Cursor::new(data);
        assert!(read_frame(&mut cursor).is_err());
    }
}
