//! The remote client: connect to a [`BrokerServer`](crate::server::BrokerServer)
//! over TCP and publish / subscribe as if the broker were local.
//!
//! Every request/response pair is timed into the client's
//! [`MetricsRegistry`] (histogram `net.rtt_ns`), so a measurement driver
//! can separate broker service time from wire round-trip time — the
//! network component the 2006 testbed deliberately kept off the critical
//! path with its Gbit links.

use crate::error::Error;
use crate::wire::{
    decode_response, encode_request, read_frame, Request, Response, WireFilter, WireMessage,
    FEATURE_FLOW, FEATURE_TRACE,
};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rjms_broker::Message;
use rjms_flow::CreditBalance;
use rjms_metrics::{Histogram, MetricsRegistry};
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long [`RemoteBroker`] waits for a request's response.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);

/// Client-side credit state for a [`FEATURE_FLOW`] connection: the
/// balance, plus a condvar publishers park on while the window is
/// exhausted (a `std` mutex because the `parking_lot` facade carries no
/// condvar).
struct CreditState {
    balance: std::sync::Mutex<CreditBalance>,
    replenished: Condvar,
}

/// Shared client state touched by the background reader and subscriber
/// handles.
struct ClientShared {
    /// The write half of the connection.
    stream: Mutex<TcpStream>,
    /// request id → one-shot response channel.
    pending: Mutex<HashMap<u32, Sender<Response>>>,
    /// subscription id → delivery channel.
    subscriptions: Mutex<HashMap<u32, Sender<Message>>>,
    /// Publish credits; inactive (no pacing) until the server's first
    /// [`Response::CreditGrant`] arrives.
    credit: CreditState,
    closed: AtomicBool,
}

/// A connection to a remote broker.
///
/// Cloneless by design: share it behind an `Arc` if multiple threads need
/// it (all methods take `&self`).
pub struct RemoteBroker {
    shared: Arc<ClientShared>,
    next_request_id: AtomicU32,
    next_subscription_id: AtomicU32,
    reader: Option<JoinHandle<()>>,
    metrics: MetricsRegistry,
    rtt: Arc<Histogram>,
    /// Whether the server acknowledged the [`FEATURE_TRACE`] handshake.
    /// Decided once during [`RemoteBroker::connect`]; when false, publishes
    /// are stripped of their trace context so the frames stay in the
    /// pre-trace format.
    traced: bool,
}

impl std::fmt::Debug for RemoteBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteBroker")
            .field("closed", &self.shared.closed.load(Ordering::Relaxed))
            .finish()
    }
}

impl RemoteBroker {
    /// Connects to a broker server.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the connection fails.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> Result<RemoteBroker, Error> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let read_stream = stream.try_clone()?;
        let shared = Arc::new(ClientShared {
            stream: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            subscriptions: Mutex::new(HashMap::new()),
            credit: CreditState {
                balance: std::sync::Mutex::new(CreditBalance::new()),
                replenished: Condvar::new(),
            },
            closed: AtomicBool::new(false),
        });
        let reader_shared = Arc::clone(&shared);
        let reader = std::thread::Builder::new()
            .name("rjms-net-client-reader".to_owned())
            .spawn(move || client_reader_loop(read_stream, reader_shared))
            .expect("failed to spawn client reader");
        let metrics = MetricsRegistry::new();
        let rtt = metrics.histogram("net.rtt_ns");
        let mut client = RemoteBroker {
            shared,
            next_request_id: AtomicU32::new(1),
            next_subscription_id: AtomicU32::new(1),
            reader: Some(reader),
            metrics,
            rtt,
            traced: false,
        };
        // Capability handshake: a server that understands the Hello opcode
        // answers Ok and from then on both sides may use the traced frame
        // variants. Anything else (an older server) leaves the connection
        // in the pre-trace format. Flow control is advertised the same
        // way, but engages only when the server opens the credit window
        // (its first CreditGrant) — a flow-less server grants nothing and
        // the connection stays unpaced client-side.
        let request_id = client.next_request_id();
        client.traced = client
            .call(Request::Hello { request_id, features: FEATURE_TRACE | FEATURE_FLOW }, request_id)
            .is_ok();
        Ok(client)
    }

    /// True when the server acknowledged trace-context propagation during
    /// the connect-time handshake.
    pub fn trace_negotiated(&self) -> bool {
        self.traced
    }

    /// True once the server has opened a publish-credit window (flow
    /// control negotiated and enabled broker-side). `false` against
    /// flow-less or older servers, whose connections stay unpaced.
    pub fn flow_negotiated(&self) -> bool {
        self.shared.credit.balance.lock().map(|b| b.active()).unwrap_or(false)
    }

    /// The current publish-credit balance; `None` while the connection is
    /// unpaced (see [`RemoteBroker::flow_negotiated`]).
    pub fn credits(&self) -> Option<u64> {
        self.shared.credit.balance.lock().ok().and_then(|b| b.available())
    }

    /// This client's instrument registry: histogram `net.rtt_ns` holds the
    /// wire round-trip latency of every answered request (send to response,
    /// in nanoseconds), counter `net.requests` the number sent.
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics.clone()
    }

    /// Creates a topic on the remote broker.
    ///
    /// # Errors
    ///
    /// [`Error::Remote`] carries the broker-side failure (duplicate or
    /// invalid name); transport failures surface as [`Error::Io`] /
    /// [`Error::Closed`].
    pub fn create_topic(&self, topic: &str) -> Result<(), Error> {
        let request_id = self.next_request_id();
        self.call(Request::CreateTopic { request_id, topic: topic.to_owned() }, request_id)
    }

    /// Publishes a message to a remote topic. The receiving broker
    /// re-stamps the message id and timestamp.
    ///
    /// # Errors
    ///
    /// [`Error::Remote`] for unknown topics; transport errors otherwise.
    /// On a flow-controlled connection this blocks while the credit
    /// window is exhausted, and surfaces server-side admission rejections
    /// as [`Error::PublishShed`] / [`Error::PublishDeferred`].
    pub fn publish(&self, topic: &str, message: &Message) -> Result<(), Error> {
        self.take_credit()?;
        let request_id = self.next_request_id();
        let mut wire = WireMessage::from_message(message);
        if !self.traced {
            wire = wire.without_trace();
        }
        let request = Request::Publish { request_id, topic: topic.to_owned(), message: wire };
        match self.call_raw(request, request_id)? {
            Response::Ok { .. } => Ok(()),
            Response::Error { message, .. } => Err(Error::Remote { message }),
            Response::PublishDenied { class, deferred: true, retry_after_ms, .. } => {
                Err(Error::PublishDeferred { class, retry_after_ms })
            }
            Response::PublishDenied { class, .. } => Err(Error::PublishShed { class }),
            other => Err(Error::Decode { detail: format!("unexpected response {other:?}") }),
        }
    }

    /// Spends one publish credit, parking until the server replenishes
    /// the window. A no-op while the connection is unpaced.
    fn take_credit(&self) -> Result<(), Error> {
        let mut balance = self.shared.credit.balance.lock().map_err(|_| Error::Closed)?;
        let deadline = Instant::now() + REQUEST_TIMEOUT;
        while !balance.try_consume() {
            if self.shared.closed.load(Ordering::Relaxed) {
                return Err(Error::Closed);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(Error::Timeout);
            }
            balance = self
                .shared
                .credit
                .replenished
                .wait_timeout(balance, deadline - now)
                .map_err(|_| Error::Closed)?
                .0;
        }
        Ok(())
    }

    /// Subscribes to a remote topic; messages arrive on the returned
    /// [`RemoteSubscriber`].
    ///
    /// # Errors
    ///
    /// [`Error::Remote`] for unknown topics or invalid filters.
    pub fn subscribe(&self, topic: &str, filter: WireFilter) -> Result<RemoteSubscriber, Error> {
        self.subscribe_inner(|request_id, subscription_id| Request::Subscribe {
            request_id,
            subscription_id,
            topic: topic.to_owned(),
            filter: filter.clone(),
        })
    }

    /// Subscribes to a remote topic *pattern* (`orders.*`, `sensors.>`).
    ///
    /// # Errors
    ///
    /// [`Error::Remote`] for invalid patterns or filters.
    pub fn subscribe_pattern(
        &self,
        pattern: &str,
        filter: WireFilter,
    ) -> Result<RemoteSubscriber, Error> {
        self.subscribe_inner(|request_id, subscription_id| Request::SubscribePattern {
            request_id,
            subscription_id,
            pattern: pattern.to_owned(),
            filter: filter.clone(),
        })
    }

    /// Connects to (or creates) a named *durable* subscription on the
    /// remote broker: messages retained while no consumer was connected are
    /// delivered first (the remote counterpart of
    /// `broker.subscription(topic).durable(name)`).
    ///
    /// # Errors
    ///
    /// [`Error::Remote`] when the name is already connected or the topic
    /// is unknown.
    pub fn subscribe_durable(
        &self,
        topic: &str,
        name: &str,
        filter: WireFilter,
    ) -> Result<RemoteSubscriber, Error> {
        self.subscribe_inner(|request_id, subscription_id| Request::SubscribeDurable {
            request_id,
            subscription_id,
            topic: topic.to_owned(),
            name: name.to_owned(),
            filter: filter.clone(),
        })
    }

    /// Permanently removes a *disconnected* durable subscription on the
    /// remote broker.
    ///
    /// # Errors
    ///
    /// [`Error::Remote`] when the subscription is unknown or still
    /// connected.
    pub fn unsubscribe_durable(&self, topic: &str, name: &str) -> Result<(), Error> {
        let request_id = self.next_request_id();
        self.call(
            Request::UnsubscribeDurable {
                request_id,
                topic: topic.to_owned(),
                name: name.to_owned(),
            },
            request_id,
        )
    }

    /// Round-trip liveness probe.
    ///
    /// # Errors
    ///
    /// Transport errors / timeout.
    pub fn ping(&self) -> Result<(), Error> {
        let request_id = self.next_request_id();
        match self.call_raw(Request::Ping { request_id }, request_id)? {
            Response::Pong { .. } => Ok(()),
            Response::Error { message, .. } => Err(Error::Remote { message }),
            _ => Err(Error::Decode { detail: "unexpected response to ping".to_owned() }),
        }
    }

    fn subscribe_inner(
        &self,
        make_request: impl Fn(u32, u32) -> Request,
    ) -> Result<RemoteSubscriber, Error> {
        let subscription_id = self.next_subscription_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = unbounded();
        self.shared.subscriptions.lock().insert(subscription_id, tx);

        let request_id = self.next_request_id();
        match self.call(make_request(request_id, subscription_id), request_id) {
            Ok(()) => Ok(RemoteSubscriber {
                subscription_id,
                deliveries: rx,
                shared: Arc::clone(&self.shared),
            }),
            Err(e) => {
                self.shared.subscriptions.lock().remove(&subscription_id);
                Err(e)
            }
        }
    }

    fn next_request_id(&self) -> u32 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Sends a request and waits for its Ok/Error response.
    fn call(&self, request: Request, request_id: u32) -> Result<(), Error> {
        match self.call_raw(request, request_id)? {
            Response::Ok { .. } => Ok(()),
            Response::Error { message, .. } => Err(Error::Remote { message }),
            other => Err(Error::Decode { detail: format!("unexpected response {other:?}") }),
        }
    }

    fn call_raw(&self, request: Request, request_id: u32) -> Result<Response, Error> {
        if self.shared.closed.load(Ordering::Relaxed) {
            return Err(Error::Closed);
        }
        let (tx, rx) = bounded(1);
        self.shared.pending.lock().insert(request_id, tx);

        let frame = encode_request(&request);
        self.metrics.counter("net.requests").inc();
        let sent_at = Instant::now();
        {
            let mut stream = self.shared.stream.lock();
            if let Err(e) = stream.write_all(&frame) {
                self.shared.pending.lock().remove(&request_id);
                return Err(Error::Io(e));
            }
        }
        match rx.recv_timeout(REQUEST_TIMEOUT) {
            Ok(resp) => {
                self.rtt.record_duration(sent_at.elapsed());
                Ok(resp)
            }
            Err(_) => {
                self.shared.pending.lock().remove(&request_id);
                if self.shared.closed.load(Ordering::Relaxed) {
                    Err(Error::Closed)
                } else {
                    Err(Error::Timeout)
                }
            }
        }
    }
}

impl Drop for RemoteBroker {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::Relaxed);
        self.shared.credit.replenished.notify_all();
        if let Ok(stream) = self.shared.stream.lock().try_clone() {
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
        if let Some(handle) = self.reader.take() {
            let _ = handle.join();
        }
    }
}

/// Background reader: dispatches responses to pending calls and deliveries
/// to subscriber channels.
fn client_reader_loop(mut stream: TcpStream, shared: Arc<ClientShared>) {
    while let Ok(Some(body)) = read_frame(&mut stream) {
        let response = match decode_response(body) {
            Ok(r) => r,
            Err(_) => break,
        };
        match response {
            Response::Delivery { subscription_id, message } => {
                let subs = shared.subscriptions.lock();
                if let Some(tx) = subs.get(&subscription_id) {
                    let _ = tx.send(message.into_message());
                }
            }
            Response::CreditGrant { credits } => {
                // Uncorrelated, like a delivery: top up the balance and
                // wake any publisher parked on an exhausted window.
                if let Ok(mut balance) = shared.credit.balance.lock() {
                    balance.grant(credits);
                }
                shared.credit.replenished.notify_all();
            }
            Response::Ok { request_id }
            | Response::Pong { request_id }
            | Response::Error { request_id, .. }
            | Response::PublishDenied { request_id, .. } => {
                if let Some(tx) = shared.pending.lock().remove(&request_id) {
                    let _ = tx.send(response);
                }
            }
        }
    }
    shared.closed.store(true, Ordering::Relaxed);
    // Wake all blocked receivers by dropping their senders, and any
    // publisher parked on the credit window.
    shared.subscriptions.lock().clear();
    shared.pending.lock().clear();
    shared.credit.replenished.notify_all();
}

/// A remote subscription's consuming handle.
///
/// Messages are re-materialized locally (fresh id/timestamp); dropping the
/// handle cancels the remote subscription best-effort.
pub struct RemoteSubscriber {
    subscription_id: u32,
    deliveries: Receiver<Message>,
    shared: Arc<ClientShared>,
}

impl std::fmt::Debug for RemoteSubscriber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteSubscriber").field("subscription_id", &self.subscription_id).finish()
    }
}

impl RemoteSubscriber {
    /// The client-side subscription id.
    pub fn id(&self) -> u32 {
        self.subscription_id
    }

    /// Blocking receive; `Err` when the connection closed.
    ///
    /// # Errors
    ///
    /// [`Error::Closed`] once the connection is gone and the local
    /// buffer is drained.
    pub fn receive(&self) -> Result<Message, Error> {
        self.deliveries.recv().map_err(|_| Error::Closed)
    }

    /// Receive with a timeout; `None` on timeout or closed connection.
    pub fn receive_timeout(&self, timeout: Duration) -> Option<Message> {
        self.deliveries.recv_timeout(timeout).ok()
    }

    /// Non-blocking receive.
    pub fn try_receive(&self) -> Option<Message> {
        self.deliveries.try_recv().ok()
    }
}

impl Drop for RemoteSubscriber {
    fn drop(&mut self) {
        // Stop routing deliveries locally...
        self.shared.subscriptions.lock().remove(&self.subscription_id);
        // ...and tell the server to release the broker-side subscription,
        // fire-and-forget (request id 0 is reserved for uncorrelated
        // requests: the server's Ok{0} is dropped by the reader). Durable
        // subscriptions in particular must disconnect promptly so that the
        // broker retains messages and the name can be reconnected.
        if !self.shared.closed.load(Ordering::Relaxed) {
            let frame = encode_request(&Request::Unsubscribe {
                request_id: 0,
                subscription_id: self.subscription_id,
            });
            let _ = self.shared.stream.lock().write_all(&frame);
        }
    }
}
