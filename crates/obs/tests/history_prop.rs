//! Property tests: window reconstruction from the history rings is
//! bucket-exact. A trailing 10 s window built by merging 1 s fine slots —
//! or, when the fine ring is too short, coarse slots plus the pending
//! fine tail — must reproduce exactly the histogram a single continuous
//! recording over those 10 s would have produced: same total count, same
//! sum, and the same quantile at every probe point (merging log-linear
//! histograms is per-bucket addition, so nothing is re-bucketed and no
//! extra quantile error can appear).

use proptest::prelude::*;
use rjms_metrics::{Histogram, MetricsRegistry};
use rjms_obs::{HistoryConfig, MetricHistory};
use std::time::Duration;

fn config(fine_slots: usize, coarse_factor: usize) -> HistoryConfig {
    HistoryConfig {
        fine_interval: Duration::from_secs(1),
        fine_slots,
        coarse_factor,
        coarse_slots: 720,
    }
}

/// Replays `seconds` (one inner vec of samples per 1 s interval) through a
/// history with the given ring geometry, then checks the merged trailing
/// window against a direct histogram of the same samples.
fn check(seconds: &[Vec<u64>], fine_slots: usize, coarse_factor: usize) {
    let registry = MetricsRegistry::new();
    let live = registry.histogram("w");
    let direct = Histogram::new();
    let mut history = MetricHistory::new(config(fine_slots, coarse_factor));
    history.record(Duration::ZERO, &registry.snapshot()); // baseline
    for (i, values) in seconds.iter().enumerate() {
        for &v in values {
            live.record(v);
            direct.record(v);
        }
        history.record(Duration::from_secs(i as u64 + 1), &registry.snapshot());
    }
    let expected = direct.snapshot();
    let window = history.window(Duration::from_secs(seconds.len() as u64));
    let Some(merged) = window.histogram("w") else {
        assert_eq!(expected.count, 0, "window lost every sample");
        return;
    };
    assert_eq!(merged.count, expected.count, "merged count diverges from direct recording");
    assert_eq!(merged.sum, expected.sum, "merged sum diverges from direct recording");
    for p in [0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999] {
        assert_eq!(merged.quantile(p), expected.quantile(p), "quantile p={p} diverges");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merged_slots_reproduce_the_direct_window(
        seconds in prop::collection::vec(
            prop::collection::vec(
                prop_oneof![0u64..1_000u64, 10_000u64..10_000_000u64, any::<u64>()],
                0..40,
            ),
            1..12,
        )
    ) {
        // Fine path: the ring holds every slot, the window is a pure
        // fine-slot merge.
        check(&seconds, 600, 10);
        // Coarse path: the fine ring holds only the last 5 slots, so any
        // window deeper than 5 s must stitch completed coarse slots with
        // the pending fine tail. Same samples, same answer.
        check(&seconds, 5, 5);
    }
}
