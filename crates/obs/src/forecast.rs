//! Model-driven saturation forecasting: time-to-breach before any burn.
//!
//! The burn-rate evaluator ([`crate::slo`]) is inherently reactive — it
//! needs bad samples in its windows before it can say anything. This
//! module closes the paper's loop the other way: the same Eq. 1 +
//! `M/GI/1` machinery that *explains* the waiting time is inverted to
//! *predict* when a rising arrival rate will push the server past its
//! objectives.
//!
//! Three stages, all O(1) memory over the existing history rings:
//!
//! 1. **Trend** — a least-squares slope over the per-slot arrival rate
//!    λ(t) from the waiting instrument's count series, cross-checked
//!    against a split-means robust slope and variance-gated into a
//!    [`Confidence`] tier.
//! 2. **Inversion** — the analytic breach points: `λ_sat = ρ_ceiling /
//!    E[B]` and the W99 budget exhaustion point via
//!    [`max_utilization_for_quantile`] (the same bisection the
//!    FlowController and [`rjms_core::AnalyticSlo`] use), both at the
//!    *measured* service time (moment-matched like the flow layer's
//!    recalibration).
//! 3. **Projection** — ETAs where the fitted λ(t) line crosses each
//!    breach point, with a band from the slope's standard error plus the
//!    Gamma-tail residual measured by `ablation_gamma_accuracy`.
//!
//! A **Little's-law self-check** guards the whole pipeline: the backlog
//! instrument's window mean is an independent measurement of the queue
//! length `L`, which must equal `λ·E[W]` if the instrumentation and the
//! stationarity assumptions hold. When they disagree beyond tolerance
//! the forecast's confidence is downgraded one tier — a forecast built
//! on inconsistent telemetry should not page anyone proactively.

use crate::history::{MetricHistory, Reduce};
use crate::slo::{Objective, SloSpec};
use rjms_core::{max_utilization_for_quantile, ModelVerdict, ReplicationModel, ServiceTime};
use rjms_metrics::JsonWriter;
use std::time::Duration;

/// The backlog instrument fed by the broker's dispatch path: per-message
/// queue-depth samples whose window mean estimates the time-average
/// queue length (PASTA).
pub const BACKLOG_METRIC: &str = "broker.backlog";

/// Worst W99 residual of the Gamma quantile solve against the exact
/// Pollaczek–Khinchine transform inversion, measured by
/// `ablation_gamma_accuracy` on the overload-test workload (1.7% across
/// the (ρ, c_var) grid, gated at 5% in CI). The optimistic edge of every
/// ETA band pulls the breach point in by this factor, so the Gamma
/// approximation's tail error is inside the band by construction.
pub const GAMMA_TAIL_RESIDUAL: f64 = 0.02;

/// Forecast confidence tiers, ordered so gating is a comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Confidence {
    /// Not enough data or no discernible trend — no forecast.
    None,
    /// Trend present but noisy or internally inconsistent.
    Low,
    /// Trend stable; minor disagreement between estimators.
    Medium,
    /// Clean, well-identified trend with consistent telemetry.
    High,
}

impl Confidence {
    /// Stable lowercase name used in JSON and the console.
    pub fn name(self) -> &'static str {
        match self {
            Confidence::None => "none",
            Confidence::Low => "low",
            Confidence::Medium => "medium",
            Confidence::High => "high",
        }
    }

    /// Parses a configuration string (`low`/`medium`/`high`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "none" => Some(Confidence::None),
            "low" => Some(Confidence::Low),
            "medium" => Some(Confidence::Medium),
            "high" => Some(Confidence::High),
            _ => None,
        }
    }

    /// One tier lower (saturating at [`Confidence::None`]).
    fn downgrade(self) -> Self {
        match self {
            Confidence::High => Confidence::Medium,
            Confidence::Medium => Confidence::Low,
            Confidence::Low | Confidence::None => Confidence::None,
        }
    }
}

/// Forecaster knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForecastConfig {
    /// Master switch (the engine skips forecasting entirely when off).
    pub enabled: bool,
    /// Look-ahead horizon: a projected breach inside it (at sufficient
    /// confidence) raises the proactive `Pending` alert state.
    pub horizon: Duration,
    /// Trailing window the λ(t) trend is fitted over.
    pub trend_window: Duration,
    /// Minimum confidence for a forecast to raise `Pending`.
    pub min_confidence: Confidence,
    /// Relative disagreement between measured `L` and `λ·E[W]` beyond
    /// which the Little's-law check downgrades confidence.
    pub littles_tolerance: f64,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            horizon: Duration::from_secs(900),
            trend_window: Duration::from_secs(300),
            min_confidence: Confidence::Medium,
            littles_tolerance: 0.10,
        }
    }
}

/// The analytic breach points the forecaster projects toward, extracted
/// from the engine's objective set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreachTargets {
    /// The guarded latency quantile and its limit in seconds, from the
    /// first latency objective on the waiting instrument.
    pub latency: Option<(f64, f64)>,
    /// The utilization ceiling (from the utilization objective, else the
    /// hard stability bound).
    pub rho_ceiling: f64,
}

impl BreachTargets {
    /// Derives the targets from an objective set: the first
    /// latency-quantile objective and the utilization ceiling.
    pub fn from_specs(specs: &[SloSpec]) -> Self {
        let latency = specs.iter().find_map(|s| match &s.objective {
            Objective::LatencyQuantile { quantile, limit_ns, .. } => {
                Some((*quantile, *limit_ns as f64 / 1e9))
            }
            _ => None,
        });
        let rho_ceiling = specs
            .iter()
            .find_map(|s| match &s.objective {
                Objective::UtilizationCeiling { ceiling } => Some(*ceiling),
                _ => None,
            })
            .unwrap_or(0.999);
        Self { latency, rho_ceiling }
    }
}

/// A projected time-to-breach with its confidence band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EtaBand {
    /// Central estimate: the fitted trend line crosses the breach point
    /// this far in the future (zero when already past it).
    pub eta: Duration,
    /// Optimistic edge: steepest plausible trend into a breach point
    /// pulled in by [`GAMMA_TAIL_RESIDUAL`].
    pub early: Duration,
    /// Pessimistic edge; `None` when the flattest plausible trend never
    /// reaches the breach point.
    pub late: Option<Duration>,
}

/// The Little's-law consistency check: measured `L` (backlog window
/// mean) against `λ·E[W]` from the same window's waiting instrument.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LittlesLawCheck {
    /// Window mean of the backlog instrument (messages).
    pub measured_l: f64,
    /// `λ·E[W]` over the same window (messages).
    pub predicted_l: f64,
    /// `|measured − predicted| / max(measured, predicted)`.
    pub error: f64,
    /// Whether the two agree within tolerance (near-empty queues are
    /// always consistent — relative error on a fraction of a message is
    /// noise, not signal).
    pub consistent: bool,
}

/// The λ(t) trend fit over the history rings.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Trend {
    /// Arrival rate at the window's end per the fit (messages/s).
    lambda_now: f64,
    /// Fitted slope (messages/s per second).
    slope: f64,
    /// Standard error of the slope.
    slope_err: f64,
    /// Relative disagreement between the least-squares slope and the
    /// split-means robust slope.
    agreement: f64,
    /// Points the fit used.
    points: usize,
}

/// One complete forecast: trend, breach points, ETAs, confidence and the
/// telemetry self-check. Produced by [`Forecaster::forecast`].
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// History-epoch elapsed time the forecast was computed at.
    pub at: Duration,
    /// Measured arrival rate (messages/s) at the window's end.
    pub lambda_now: f64,
    /// Fitted arrival-rate slope (messages/s per second).
    pub lambda_slope: f64,
    /// Current utilization at the measured service time.
    pub rho_now: f64,
    /// Measured mean service time (seconds) the inversion used.
    pub service_mean_s: f64,
    /// Measured service-time coefficient of variation.
    pub service_cvar: f64,
    /// Arrival rate at which utilization hits the ceiling.
    pub lambda_saturation: f64,
    /// Arrival rate at which the guarded latency quantile exhausts its
    /// limit (absent without a latency objective).
    pub lambda_breach: Option<f64>,
    /// Projected time until `λ` reaches [`Forecast::lambda_saturation`].
    pub eta_saturation: Option<EtaBand>,
    /// Projected time until the latency objective is breached.
    pub eta_breach: Option<EtaBand>,
    /// Confidence after variance gating and the Little's-law check.
    pub confidence: Confidence,
    /// The telemetry self-check (absent without backlog samples).
    pub littles_law: Option<LittlesLawCheck>,
    /// Points the trend fit used.
    pub trend_points: usize,
    /// Documented Gamma-vs-exact tail residual folded into the bands.
    pub model_residual: f64,
}

impl Forecast {
    /// The soonest projected breach: the latency ETA when present (it is
    /// always at or before saturation — the latency budget runs out at a
    /// lower ρ), else the saturation ETA.
    pub fn soonest(&self) -> Option<(&'static str, EtaBand)> {
        match (self.eta_breach, self.eta_saturation) {
            (Some(b), Some(s)) if s.eta < b.eta => Some(("saturation", s)),
            (Some(b), _) => Some(("w99-breach", b)),
            (None, Some(s)) => Some(("saturation", s)),
            (None, None) => None,
        }
    }

    /// Whether this forecast justifies the proactive `Pending` state for
    /// the given knobs: a breach projected inside the horizon at at least
    /// the configured confidence.
    pub fn pending(&self, config: &ForecastConfig) -> bool {
        self.confidence >= config.min_confidence.max(Confidence::Low)
            && self.soonest().is_some_and(|(_, band)| band.eta <= config.horizon)
    }

    /// The forecast frozen as alert evidence.
    pub fn evidence(&self) -> Option<crate::alert::ForecastEvidence> {
        let (target, band) = self.soonest()?;
        Some(crate::alert::ForecastEvidence {
            target: target.to_string(),
            eta: band.eta,
            eta_early: band.early,
            eta_late: band.late,
            lambda_now: self.lambda_now,
            lambda_slope: self.lambda_slope,
            confidence: self.confidence.name().to_string(),
        })
    }

    /// Renders the forecast as a self-contained JSON object (the
    /// `/forecast` payload body and the `/slo`/`/shards` forecast
    /// blocks).
    pub fn render_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("at_ms");
        w.uint(self.at.as_millis() as u64);
        w.key("lambda_now");
        w.float(self.lambda_now);
        w.key("lambda_slope_per_s");
        w.float(self.lambda_slope);
        w.key("rho_now");
        w.float(self.rho_now);
        w.key("service_mean_s");
        w.float(self.service_mean_s);
        w.key("service_cvar");
        w.float(self.service_cvar);
        w.key("lambda_saturation");
        w.float(self.lambda_saturation);
        w.key("lambda_breach");
        match self.lambda_breach {
            Some(v) => w.float(v),
            None => w.null(),
        }
        let eta = |w: &mut JsonWriter, band: Option<EtaBand>| match band {
            None => w.null(),
            Some(b) => {
                w.begin_object();
                w.key("eta_ms");
                w.uint(b.eta.as_millis() as u64);
                w.key("early_ms");
                w.uint(b.early.as_millis() as u64);
                w.key("late_ms");
                match b.late {
                    Some(late) => w.uint(late.as_millis() as u64),
                    None => w.null(),
                }
                w.end_object();
            }
        };
        w.key("eta_saturation");
        eta(&mut w, self.eta_saturation);
        w.key("eta_breach");
        eta(&mut w, self.eta_breach);
        w.key("confidence");
        w.string(self.confidence.name());
        w.key("littles_law");
        match &self.littles_law {
            None => w.null(),
            Some(check) => {
                w.begin_object();
                w.key("measured_l");
                w.float(check.measured_l);
                w.key("predicted_l");
                w.float(check.predicted_l);
                w.key("error");
                w.float(check.error);
                w.key("consistent");
                w.bool(check.consistent);
                w.end_object();
            }
        }
        w.key("trend_points");
        w.uint(self.trend_points as u64);
        w.key("model_residual");
        w.float(self.model_residual);
        w.end_object();
        w.finish()
    }
}

/// The forecasting engine: stateless over the history rings, so the same
/// instance serves the aggregate instruments and any shard-labeled twin.
#[derive(Debug, Clone)]
pub struct Forecaster {
    config: ForecastConfig,
}

/// Minimum trend points for any forecast at all.
const MIN_TREND_POINTS: usize = 6;
/// Band half-width in slope standard errors.
const BAND_SIGMA: f64 = 2.0;
/// Queue lengths below this many messages are too empty for a relative
/// Little's-law comparison to mean anything.
const LITTLES_FLOOR: f64 = 0.5;

impl Forecaster {
    /// A forecaster with the given knobs.
    pub fn new(config: ForecastConfig) -> Self {
        Self { config }
    }

    /// The active knobs.
    pub fn config(&self) -> &ForecastConfig {
        &self.config
    }

    /// Computes a forecast over the named instruments. Returns `None`
    /// when there is no usable trend data at all; a flat or falling λ(t)
    /// still produces a forecast (with empty ETAs) so the exposition can
    /// show "no breach projected".
    ///
    /// `verdict` supplies the calibrated measured service moments when
    /// the model monitor has them; otherwise the window's own service
    /// histogram is moment-matched (the flow layer's recalibration
    /// trick).
    #[allow(clippy::too_many_arguments)] // three instrument names + model inputs
    pub fn forecast(
        &self,
        history: &MetricHistory,
        waiting_metric: &str,
        service_metric: &str,
        backlog_metric: &str,
        targets: &BreachTargets,
        verdict: Option<&ModelVerdict>,
        now: Duration,
    ) -> Option<Forecast> {
        let trend = fit_trend(history, waiting_metric, self.config.trend_window)?;
        let window = history.window(self.config.trend_window);

        // Measured service time: calibrated monitor moments when
        // available, else the window's service histogram.
        let (mean_s, cvar) = match verdict.and_then(|v| v.report()) {
            Some(report) => (report.measured.mean_service_time, report.measured.service_cvar),
            None => {
                let h = window.histogram(service_metric)?;
                (h.mean() / 1e9, h.cvar())
            }
        };
        let service = measured_service(mean_s, cvar)?;

        let littles_law = littles_law_check(
            &window,
            waiting_metric,
            backlog_metric,
            self.config.littles_tolerance,
        );

        let mut confidence = grade(&trend);
        if littles_law.is_some_and(|c| !c.consistent) {
            confidence = confidence.downgrade();
        }

        let e_b = service.mean();
        let lambda_saturation = targets.rho_ceiling / e_b;
        let lambda_breach = targets.latency.map(|(quantile, limit_s)| {
            max_utilization_for_quantile(&service, quantile, limit_s) / e_b
        });
        let project = |lambda_target: f64| project_eta(&trend, lambda_target);
        Some(Forecast {
            at: now,
            lambda_now: trend.lambda_now,
            lambda_slope: trend.slope,
            rho_now: trend.lambda_now * e_b,
            service_mean_s: e_b,
            service_cvar: service.cvar(),
            lambda_saturation,
            lambda_breach,
            eta_saturation: project(lambda_saturation),
            eta_breach: lambda_breach.and_then(project),
            confidence,
            littles_law,
            trend_points: trend.points,
            model_residual: GAMMA_TAIL_RESIDUAL,
        })
    }
}

/// Fits the arrival-rate trend over the trailing `span`: per-slot λ from
/// the waiting instrument's count series (slot widths from consecutive
/// slot ends), least-squares slope with standard error, split-means
/// robust cross-check. Single pass over at most the ring size — O(1)
/// memory beyond the point list the history already materializes.
fn fit_trend(history: &MetricHistory, waiting_metric: &str, span: Duration) -> Option<Trend> {
    let counts = history.series(waiting_metric, span, Reduce::Count);
    if counts.len() < MIN_TREND_POINTS + 1 {
        return None;
    }
    // Slot widths from consecutive ends; the first point has no
    // predecessor and is dropped.
    let points: Vec<(f64, f64)> = counts
        .windows(2)
        .filter_map(|pair| {
            let width_s = (pair[1].elapsed_ms.saturating_sub(pair[0].elapsed_ms)) as f64 / 1e3;
            (width_s > 0.0).then(|| (pair[1].elapsed_ms as f64 / 1e3, pair[1].value / width_s))
        })
        .collect();
    let n = points.len();
    if n < MIN_TREND_POINTS {
        return None;
    }
    let nf = n as f64;
    let (mut st, mut sl) = (0.0, 0.0);
    for &(t, l) in &points {
        st += t;
        sl += l;
    }
    let (t_bar, l_bar) = (st / nf, sl / nf);
    let (mut sxx, mut sxy) = (0.0, 0.0);
    for &(t, l) in &points {
        sxx += (t - t_bar) * (t - t_bar);
        sxy += (t - t_bar) * (l - l_bar);
    }
    if sxx <= 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = l_bar - slope * t_bar;
    let mut sse = 0.0;
    for &(t, l) in &points {
        let r = l - (intercept + slope * t);
        sse += r * r;
    }
    let slope_err = if n > 2 { (sse / (nf - 2.0) / sxx).sqrt() } else { f64::INFINITY };

    // Robust cross-check: mean of the last third vs the first third.
    let third = (n / 3).max(1);
    let seg = |pts: &[(f64, f64)]| {
        let k = pts.len() as f64;
        let (mut t, mut l) = (0.0, 0.0);
        for &(ti, li) in pts {
            t += ti;
            l += li;
        }
        (t / k, l / k)
    };
    let (t0, l0) = seg(&points[..third]);
    let (t1, l1) = seg(&points[n - third..]);
    let robust = if t1 > t0 { (l1 - l0) / (t1 - t0) } else { slope };
    let scale = slope.abs().max(robust.abs()).max(1e-9);
    let agreement = (slope - robust).abs() / scale;

    let end_t = points.last().map(|&(t, _)| t).unwrap_or(t_bar);
    let lambda_now = (intercept + slope * end_t).max(0.0);
    Some(Trend { lambda_now, slope, slope_err, agreement, points: n })
}

/// Variance-gated confidence of a trend fit.
fn grade(trend: &Trend) -> Confidence {
    if trend.points < MIN_TREND_POINTS || trend.lambda_now <= 0.0 {
        return Confidence::None;
    }
    let rel_err =
        if trend.slope.abs() > 1e-12 { trend.slope_err / trend.slope.abs() } else { f64::INFINITY };
    if rel_err < 0.25 && trend.agreement < 0.35 {
        Confidence::High
    } else if rel_err < 0.6 && trend.agreement < 0.75 {
        Confidence::Medium
    } else {
        Confidence::Low
    }
}

/// Projects the fitted λ(t) line to `lambda_target`. `None` when the
/// trend never gets there (flat or falling while still below target).
fn project_eta(trend: &Trend, lambda_target: f64) -> Option<EtaBand> {
    if lambda_target <= 0.0 {
        return None;
    }
    if trend.lambda_now >= lambda_target {
        // Already at or past the breach point: the ETA is now.
        return Some(EtaBand {
            eta: Duration::ZERO,
            early: Duration::ZERO,
            late: Some(Duration::ZERO),
        });
    }
    if trend.slope <= 1e-12 {
        return None;
    }
    let gap = lambda_target - trend.lambda_now;
    let eta = gap / trend.slope;
    let slope_hi = trend.slope + BAND_SIGMA * trend.slope_err;
    let slope_lo = trend.slope - BAND_SIGMA * trend.slope_err;
    // Optimistic edge: steepest plausible slope into a breach point
    // pulled in by the documented model residual.
    let early_gap = (lambda_target * (1.0 - GAMMA_TAIL_RESIDUAL) - trend.lambda_now).max(0.0);
    let early = (early_gap / slope_hi).min(eta);
    let late = (slope_lo > 1e-12).then(|| Duration::from_secs_f64((gap / slope_lo).min(1e9)));
    Some(EtaBand {
        eta: Duration::from_secs_f64(eta.min(1e9)),
        early: Duration::from_secs_f64(early.min(1e9)),
        late,
    })
}

/// The Little's-law self-check over one reconstructed window.
fn littles_law_check(
    window: &crate::history::Window,
    waiting_metric: &str,
    backlog_metric: &str,
    tolerance: f64,
) -> Option<LittlesLawCheck> {
    let backlog = window.histogram(backlog_metric)?;
    let waiting = window.histogram(waiting_metric)?;
    let span = window.span().as_secs_f64();
    if span <= 0.0 || waiting.count == 0 || backlog.count == 0 {
        return None;
    }
    let measured_l = backlog.mean();
    let lambda = waiting.count as f64 / span;
    let predicted_l = lambda * (waiting.mean() / 1e9);
    let scale = measured_l.max(predicted_l);
    let error = if scale > 0.0 { (measured_l - predicted_l).abs() / scale } else { 0.0 };
    let consistent = error <= tolerance || (measured_l - predicted_l).abs() < LITTLES_FLOOR;
    Some(LittlesLawCheck { measured_l, predicted_l, error, consistent })
}

/// Moment-matches a service time from measured mean and `c_var` — the
/// same construction the flow controller recalibrates with: a scaled
/// Bernoulli replication reproducing `E[R] = 1`, `E[R²] = 1 + c_var²`
/// scaled by the measured mean.
fn measured_service(mean_s: f64, cvar: f64) -> Option<ServiceTime> {
    if mean_s.is_nan() || mean_s <= 0.0 || !cvar.is_finite() {
        return None;
    }
    let replication =
        ReplicationModel::scaled_bernoulli_from_moments(1.0, 1.0 + cvar * cvar).ok()?;
    Some(ServiceTime::new(0.0, mean_s, replication))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryConfig;
    use crate::slo::{SERVICE_METRIC, WAITING_METRIC};
    use rjms_metrics::MetricsRegistry;

    const E_B_NS: u64 = 1_000_000; // 1 ms deterministic-ish service

    fn history() -> MetricHistory {
        MetricHistory::new(HistoryConfig {
            fine_interval: Duration::from_secs(1),
            fine_slots: 64,
            coarse_factor: 4,
            coarse_slots: 32,
        })
    }

    /// Drives `seconds` ticks where second `t` carries `rate(t)` messages
    /// with consistent waiting/service/backlog samples.
    fn drive(
        registry: &MetricsRegistry,
        history: &mut MetricHistory,
        seconds: u64,
        rate: impl Fn(u64) -> u64,
        waiting_ns: u64,
    ) {
        let waiting = registry.histogram(WAITING_METRIC);
        let service = registry.histogram(SERVICE_METRIC);
        let backlog = registry.histogram(BACKLOG_METRIC);
        history.record(Duration::ZERO, &registry.snapshot());
        for t in 1..=seconds {
            let n = rate(t);
            for _ in 0..n {
                waiting.record(waiting_ns);
                service.record(E_B_NS);
                // Consistent with Little's law by construction:
                // L = λ·E[W] with λ = n msg/s.
                backlog.record((n as f64 * waiting_ns as f64 / 1e9).round() as u64);
            }
            history.record(Duration::from_secs(t), &registry.snapshot());
        }
    }

    fn targets() -> BreachTargets {
        // W99 ≤ 10 ms at q=0.99; ρ ≤ 0.9.
        BreachTargets { latency: Some((0.99, 0.010)), rho_ceiling: 0.9 }
    }

    #[test]
    fn ramp_produces_breach_eta_with_band() {
        let registry = MetricsRegistry::new();
        let mut h = history();
        // λ ramps 100 → 400 msg/s over 30 s: slope ≈ 10.34 msg/s².
        drive(&registry, &mut h, 30, |t| 100 + 10 * t, 200_000);
        let f = Forecaster::new(ForecastConfig::default());
        let fc = f
            .forecast(
                &h,
                WAITING_METRIC,
                SERVICE_METRIC,
                BACKLOG_METRIC,
                &targets(),
                None,
                Duration::from_secs(30),
            )
            .expect("forecast");
        assert!(fc.lambda_slope > 8.0 && fc.lambda_slope < 12.0, "slope {}", fc.lambda_slope);
        assert!((fc.lambda_now - 400.0).abs() < 40.0, "lambda_now {}", fc.lambda_now);
        // E[B] = 1 ms → λ_sat = 900; the W99 budget dies earlier.
        assert!((fc.lambda_saturation - 900.0).abs() < 90.0, "sat {}", fc.lambda_saturation);
        let breach = fc.lambda_breach.expect("latency target");
        assert!(breach < fc.lambda_saturation, "breach {breach} vs sat {}", fc.lambda_saturation);
        let band = fc.eta_breach.expect("rising trend must project a breach");
        let expect = (breach - fc.lambda_now) / fc.lambda_slope;
        assert!((band.eta.as_secs_f64() - expect).abs() < 1.0);
        assert!(band.early <= band.eta);
        assert!(band.late.is_none_or(|l| l >= band.eta));
        assert!(fc.confidence >= Confidence::Medium, "confidence {:?}", fc.confidence);
        // Little's law holds by construction.
        let check = fc.littles_law.expect("backlog present");
        assert!(check.consistent, "error {}", check.error);
        // Saturation is further out than the latency breach.
        let sat = fc.eta_saturation.expect("saturation ETA");
        assert!(sat.eta >= band.eta);
        assert_eq!(fc.soonest().unwrap().0, "w99-breach");
    }

    #[test]
    fn flat_traffic_projects_no_breach_and_no_pending() {
        let registry = MetricsRegistry::new();
        let mut h = history();
        drive(&registry, &mut h, 30, |_| 200, 200_000);
        let config = ForecastConfig::default();
        let fc = Forecaster::new(config)
            .forecast(
                &h,
                WAITING_METRIC,
                SERVICE_METRIC,
                BACKLOG_METRIC,
                &targets(),
                None,
                Duration::from_secs(30),
            )
            .expect("forecast");
        assert!(fc.eta_breach.is_none());
        assert!(fc.eta_saturation.is_none());
        assert!(!fc.pending(&config));
    }

    #[test]
    fn pending_requires_eta_inside_horizon() {
        let registry = MetricsRegistry::new();
        let mut h = history();
        drive(&registry, &mut h, 30, |t| 100 + 10 * t, 200_000);
        let f = Forecaster::new(ForecastConfig::default());
        let fc = f
            .forecast(
                &h,
                WAITING_METRIC,
                SERVICE_METRIC,
                BACKLOG_METRIC,
                &targets(),
                None,
                Duration::from_secs(30),
            )
            .expect("forecast");
        // The ramp breaches within ~40 s — inside a 15 m horizon.
        assert!(fc.pending(f.config()));
        let tight = ForecastConfig { horizon: Duration::from_secs(5), ..ForecastConfig::default() };
        assert!(!fc.pending(&tight), "breach beyond a 5 s horizon must not page");
    }

    #[test]
    fn inconsistent_littles_law_downgrades_confidence() {
        let registry = MetricsRegistry::new();
        let mut h = history();
        let waiting = registry.histogram(WAITING_METRIC);
        let service = registry.histogram(SERVICE_METRIC);
        let backlog = registry.histogram(BACKLOG_METRIC);
        h.record(Duration::ZERO, &registry.snapshot());
        for t in 1..=30u64 {
            for _ in 0..(100 + 10 * t) {
                waiting.record(200_000);
                service.record(E_B_NS);
                // Backlog wildly larger than λ·E[W]: broken telemetry.
                backlog.record(500);
            }
            h.record(Duration::from_secs(t), &registry.snapshot());
        }
        let f = Forecaster::new(ForecastConfig::default());
        let fc = f
            .forecast(
                &h,
                WAITING_METRIC,
                SERVICE_METRIC,
                BACKLOG_METRIC,
                &targets(),
                None,
                Duration::from_secs(30),
            )
            .expect("forecast");
        let check = fc.littles_law.expect("check present");
        assert!(!check.consistent);
        // The identical clean ramp grades High (the consistent-telemetry
        // tests above); broken telemetry must land strictly below that.
        assert!(fc.confidence < Confidence::High, "got {:?}", fc.confidence);
    }

    #[test]
    fn missing_backlog_metric_skips_the_check_without_downgrade() {
        let registry = MetricsRegistry::new();
        let mut h = history();
        let waiting = registry.histogram(WAITING_METRIC);
        let service = registry.histogram(SERVICE_METRIC);
        h.record(Duration::ZERO, &registry.snapshot());
        for t in 1..=30u64 {
            for _ in 0..(100 + 10 * t) {
                waiting.record(200_000);
                service.record(E_B_NS);
            }
            h.record(Duration::from_secs(t), &registry.snapshot());
        }
        let fc = Forecaster::new(ForecastConfig::default())
            .forecast(
                &h,
                WAITING_METRIC,
                SERVICE_METRIC,
                BACKLOG_METRIC,
                &targets(),
                None,
                Duration::from_secs(30),
            )
            .expect("forecast");
        assert!(fc.littles_law.is_none());
        assert!(fc.confidence >= Confidence::Medium);
    }

    #[test]
    fn noisy_trend_grades_low() {
        let registry = MetricsRegistry::new();
        let mut h = history();
        // Sawtooth: no identifiable slope.
        drive(&registry, &mut h, 30, |t| if t % 2 == 0 { 50 } else { 400 }, 200_000);
        let fc = Forecaster::new(ForecastConfig::default())
            .forecast(
                &h,
                WAITING_METRIC,
                SERVICE_METRIC,
                BACKLOG_METRIC,
                &targets(),
                None,
                Duration::from_secs(30),
            )
            .expect("forecast");
        assert_eq!(fc.confidence, Confidence::Low);
        assert!(!fc.pending(&ForecastConfig::default()));
    }

    #[test]
    fn too_little_history_yields_no_forecast() {
        let registry = MetricsRegistry::new();
        let mut h = history();
        drive(&registry, &mut h, 3, |_| 100, 200_000);
        assert!(Forecaster::new(ForecastConfig::default())
            .forecast(
                &h,
                WAITING_METRIC,
                SERVICE_METRIC,
                BACKLOG_METRIC,
                &targets(),
                None,
                Duration::from_secs(3)
            )
            .is_none());
    }

    #[test]
    fn already_breached_eta_is_zero() {
        let registry = MetricsRegistry::new();
        let mut h = history();
        // λ = 950 msg/s at E[B] = 1 ms → ρ > ceiling already.
        drive(&registry, &mut h, 30, |t| 900 + 5 * t, 200_000);
        let fc = Forecaster::new(ForecastConfig::default())
            .forecast(
                &h,
                WAITING_METRIC,
                SERVICE_METRIC,
                BACKLOG_METRIC,
                &targets(),
                None,
                Duration::from_secs(30),
            )
            .expect("forecast");
        assert_eq!(fc.eta_saturation.expect("past ceiling").eta, Duration::ZERO);
    }

    #[test]
    fn forecast_json_is_well_formed() {
        let registry = MetricsRegistry::new();
        let mut h = history();
        drive(&registry, &mut h, 30, |t| 100 + 10 * t, 200_000);
        let fc = Forecaster::new(ForecastConfig::default())
            .forecast(
                &h,
                WAITING_METRIC,
                SERVICE_METRIC,
                BACKLOG_METRIC,
                &targets(),
                None,
                Duration::from_secs(30),
            )
            .expect("forecast");
        let json = fc.render_json();
        for key in [
            "\"lambda_now\":",
            "\"lambda_slope_per_s\":",
            "\"eta_breach\":{",
            "\"eta_ms\":",
            "\"confidence\":",
            "\"littles_law\":{",
            "\"consistent\":true",
            "\"model_residual\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let evidence = fc.evidence().expect("evidence");
        assert_eq!(evidence.target, "w99-breach");
    }

    #[test]
    fn breach_targets_extracted_from_specs() {
        let specs = SloSpec::defaults();
        let t = BreachTargets::from_specs(&specs);
        assert_eq!(t.latency, Some((0.99, 0.010)));
        assert!((t.rho_ceiling - 0.9).abs() < 1e-12);
        let t = BreachTargets::from_specs(&[]);
        assert!(t.latency.is_none());
        assert!((t.rho_ceiling - 0.999).abs() < 1e-12);
    }
}
