//! A minimal recursive-descent JSON parser.
//!
//! The operator console (`rjms-top`) polls the broker's HTTP endpoints and
//! must decode their JSON without external crates (the workspace's `serde`
//! shim is marker-traits only, and the build environment is offline). This
//! parser covers the full JSON grammar the workspace emits — objects,
//! arrays, strings with the standard escapes, numbers, booleans, null —
//! into an owned [`Value`] tree. It is a *consumer* for trusted local
//! payloads: malformed input yields an error, never a panic, but there is
//! no streaming, no span reporting, and numbers collapse to `f64`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (collapsed to `f64`).
    Number(f64),
    /// A string with escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (key order not preserved; duplicate keys keep the last).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements of an array; empty slice on other variants.
    pub fn items(&self) -> &[Value] {
        match self {
            Value::Array(items) => items,
            _ => &[],
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value truncated to u64, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse failure: a message and the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser { text: input, bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(value)
}

/// Nesting depth bound — local payloads are shallow; this stops stack
/// exhaustion on hostile input.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    /// The input as `&str`, for checked char-boundary slicing in
    /// [`Parser::string`]; `bytes` is the same buffer viewed bytewise.
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError { message, offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn literal(&mut self, text: &'static str, message: &'static str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", "expected true").map(|()| Value::Bool(true)),
            Some(b'f') => self.literal("false", "expected false").map(|()| Value::Bool(false)),
            Some(b'n') => self.literal("null", "expected null").map(|()| Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates (paired or lone) are replaced — the
                            // workspace never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar through the checked &str
                    // view. `pos` always sits on a scalar boundary here
                    // (it only ever advances by whole scalars or past
                    // ASCII bytes), so `get` never fails in practice —
                    // but a checked slice keeps any future bookkeeping
                    // bug a parse error instead of undefined behaviour.
                    let c = self
                        .text
                        .get(self.pos..)
                        .and_then(|rest| rest.chars().next())
                        .ok_or_else(|| self.err("string not on a UTF-8 boundary"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError { message: "invalid number", offset: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x","d":null},"e":true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().items()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().items()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("e"), Some(&Value::Bool(true)));
    }

    #[test]
    fn round_trips_writer_escapes() {
        use rjms_metrics::JsonWriter;
        let hostile = "a\"b\\c\nd\u{1}é";
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("s");
        w.string(hostile);
        w.end_object();
        let v = parse(&w.finish()).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some(hostile));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "{\"a\":}", "tru", "1 2", "\"\\x\"", ""] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    #[cfg_attr(miri, ignore = "200k-byte input is interpreter-slow; depth guard is UB-free logic")]
    fn rejects_deep_nesting_without_crashing() {
        let deep = "[".repeat(100_000) + &"]".repeat(100_000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("{}").unwrap(), Value::Object(BTreeMap::new()));
        assert_eq!(parse("[]").unwrap(), Value::Array(Vec::new()));
        assert_eq!(parse(" 42 ").unwrap().as_f64(), Some(42.0));
    }

    /// Regression test for the string scanner's scalar stepping: the loop
    /// once rebuilt a `&str` from the byte tail with an unchecked UTF-8
    /// conversion; it now slices the original `&str` with a checked
    /// `get`, so every multibyte advance stays on validated boundaries.
    /// This is the path the Miri CI job watches (DESIGN.md §3.14).
    #[test]
    fn multibyte_scalars_step_on_boundaries() {
        let mixed = "é中𝄞 ascii \u{7f}é";
        let doc = format!("{{\"k\":\"{mixed}\",\"tail\":[\"𝄞\",\"¢¢\"]}}");
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(mixed));
        assert_eq!(v.get("tail").unwrap().items()[0].as_str(), Some("𝄞"));
        assert_eq!(v.get("tail").unwrap().items()[1].as_str(), Some("¢¢"));
        // Multibyte content mixed with escapes still resolves correctly.
        let v = parse("\"α\\nβ\\tγ\"").unwrap();
        assert_eq!(v.as_str(), Some("α\nβ\tγ"));
    }
}
