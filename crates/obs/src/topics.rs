//! Shard-skew analysis and the rebalance advisor.
//!
//! The broker pins each topic to a shard by FNV-1a hash, which balances
//! *counts* but not *load*: one hot topic with many filters and a high
//! replication grade can saturate its shard while the others idle — the
//! blind spot the per-topic observatory exists to close. This module takes
//! the observatory's per-topic rows (`λ_t`, `E[B_t]`, current shard) and
//! computes each shard's offered load `ρ_s = Σ λ_t·E[B_t]`, flags skew
//! when the max/mean ratio exceeds a threshold, and proposes the smallest
//! greedy set of topic moves that brings the ratio back under target.
//!
//! The greedy is largest-first: repeatedly move the heaviest topic on the
//! most loaded shard to the least loaded shard, as long as the move
//! strictly shrinks the spread. Since the mean shard load is invariant
//! under moves, shrinking the maximum is exactly shrinking the max/mean
//! ratio.
//!
//! ## Example
//!
//! ```
//! use rjms_obs::topics::{analyze_skew, SkewConfig, TopicLoad};
//!
//! let topics = vec![
//!     TopicLoad { name: "hot".into(), shard: 0, arrival_rate: 900.0, mean_service_time: 1e-3 },
//!     TopicLoad { name: "warm".into(), shard: 0, arrival_rate: 300.0, mean_service_time: 1e-3 },
//!     TopicLoad { name: "cold".into(), shard: 1, arrival_rate: 100.0, mean_service_time: 1e-3 },
//! ];
//! let report = analyze_skew(&topics, &SkewConfig { shards: 2, ..SkewConfig::default() });
//! assert!(report.skewed);
//! assert_eq!(report.moves.len(), 1); // move "warm" to shard 1
//! assert!(report.post_ratio < report.max_mean_ratio);
//! ```

use serde::{Deserialize, Serialize};

/// One topic's contribution to its shard, as observed by the per-topic
/// accounting table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicLoad {
    /// Topic name.
    pub name: String,
    /// The shard the topic is currently pinned to (FNV-1a placement).
    pub shard: usize,
    /// Observed arrival rate `λ_t`, messages/s.
    pub arrival_rate: f64,
    /// Observed mean service time `E[B_t]`, seconds.
    pub mean_service_time: f64,
}

impl TopicLoad {
    /// The topic's offered load `λ_t · E[B_t]` (its share of one shard's
    /// utilization).
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate * self.mean_service_time
    }
}

/// Thresholds for the skew analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkewConfig {
    /// Number of dispatcher shards.
    pub shards: usize,
    /// Max/mean shard-load ratio above which skew is flagged.
    pub flag_ratio: f64,
    /// Ratio the advisor's moves aim to get under (should be below
    /// `flag_ratio` to give the advice hysteresis).
    pub target_ratio: f64,
}

impl Default for SkewConfig {
    fn default() -> Self {
        Self { shards: 1, flag_ratio: 1.25, target_ratio: 1.10 }
    }
}

/// One shard's slice of the total offered work.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardShare {
    /// Shard index.
    pub shard: usize,
    /// Offered load `ρ_s = Σ λ_t·E[B_t]` over the shard's topics.
    pub offered_load: f64,
    /// Fraction of the total arrival rate landing on this shard.
    pub arrival_share: f64,
    /// Fraction of the total offered load landing on this shard.
    pub load_share: f64,
    /// Topics currently pinned here.
    pub topics: usize,
}

/// One advised move.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicMove {
    /// Topic to move.
    pub topic: String,
    /// Its current shard.
    pub from: usize,
    /// The advised destination shard.
    pub to: usize,
    /// The offered load that moves with it.
    pub load: f64,
}

/// The analyzer's output: shares, verdict, and advised moves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SkewReport {
    /// Per-shard load shares, indexed by shard.
    pub shares: Vec<ShardShare>,
    /// Max/mean shard-load ratio as observed (1.0 = perfectly balanced).
    pub max_mean_ratio: f64,
    /// Whether the observed ratio exceeds the configured flag threshold.
    pub skewed: bool,
    /// Greedy largest-first moves bringing the ratio under target (empty
    /// when already under, or when no move helps).
    pub moves: Vec<TopicMove>,
    /// The max/mean ratio after applying `moves`.
    pub post_ratio: f64,
}

/// Computes per-shard load shares from the per-topic table and advises
/// rebalancing moves. See the [module docs](self) for the method.
///
/// Topics whose `shard` is out of range, and non-finite or negative loads,
/// are ignored. With `shards <= 1` the report is trivially balanced.
pub fn analyze_skew(topics: &[TopicLoad], config: &SkewConfig) -> SkewReport {
    let shards = config.shards.max(1);
    let mut load = vec![0.0f64; shards];
    let mut rate = vec![0.0f64; shards];
    let mut count = vec![0usize; shards];
    // Candidate moves: (load, index into `topics`), heaviest first.
    let mut usable: Vec<usize> = Vec::new();
    for (i, t) in topics.iter().enumerate() {
        let l = t.offered_load();
        if t.shard >= shards || !l.is_finite() || l < 0.0 || t.arrival_rate < 0.0 {
            continue;
        }
        load[t.shard] += l;
        rate[t.shard] += t.arrival_rate;
        count[t.shard] += 1;
        usable.push(i);
    }

    let total_load: f64 = load.iter().sum();
    let total_rate: f64 = rate.iter().sum();
    let mean = total_load / shards as f64;
    let ratio_of = |load: &[f64]| -> f64 {
        let max = load.iter().cloned().fold(0.0f64, f64::max);
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    };
    let max_mean_ratio = ratio_of(&load);

    let shares = (0..shards)
        .map(|s| ShardShare {
            shard: s,
            offered_load: load[s],
            arrival_share: if total_rate > 0.0 { rate[s] / total_rate } else { 0.0 },
            load_share: if total_load > 0.0 { load[s] / total_load } else { 0.0 },
            topics: count[s],
        })
        .collect();

    // Greedy largest-first advisor. Work on a copy of the shard loads and
    // a per-shard list of movable (load, topic) pairs.
    let mut moves = Vec::new();
    let mut post_ratio = max_mean_ratio;
    if shards > 1 && mean > 0.0 && max_mean_ratio > config.target_ratio {
        let mut pinned: Vec<Vec<(f64, usize)>> = vec![Vec::new(); shards];
        for &i in &usable {
            pinned[topics[i].shard].push((topics[i].offered_load(), i));
        }
        for list in &mut pinned {
            // Heaviest last, so `pop`-order scans go largest-first.
            list.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        // Each usable topic moves at most once, so this terminates.
        let target_load = config.target_ratio * mean;
        for _ in 0..usable.len() {
            if ratio_of(&load) <= config.target_ratio {
                break;
            }
            let (max_s, _) =
                load.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).expect("shards >= 1");
            let (min_s, min_l) = load
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(s, &l)| (s, l))
                .expect("shards >= 1");
            // Largest topic on the hottest shard that still fits on the
            // coldest shard without pushing *it* past the target.
            let headroom = target_load - min_l;
            let pick = pinned[max_s].iter().rposition(|&(l, _)| l > 0.0 && l <= headroom);
            let Some(pos) = pick else { break };
            let (l, idx) = pinned[max_s].remove(pos);
            load[max_s] -= l;
            load[min_s] += l;
            moves.push(TopicMove {
                topic: topics[idx].name.clone(),
                from: max_s,
                to: min_s,
                load: l,
            });
        }
        post_ratio = ratio_of(&load);
    }

    SkewReport {
        shares,
        max_mean_ratio,
        skewed: max_mean_ratio > config.flag_ratio,
        moves,
        post_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topic(name: &str, shard: usize, rate: f64, e_b: f64) -> TopicLoad {
        TopicLoad { name: name.into(), shard, arrival_rate: rate, mean_service_time: e_b }
    }

    #[test]
    fn balanced_load_is_not_skewed_and_needs_no_moves() {
        let topics = vec![
            topic("a", 0, 100.0, 1e-3),
            topic("b", 1, 100.0, 1e-3),
            topic("c", 2, 100.0, 1e-3),
        ];
        let report = analyze_skew(&topics, &SkewConfig { shards: 3, ..SkewConfig::default() });
        assert!(!report.skewed);
        assert!(report.moves.is_empty());
        assert!((report.max_mean_ratio - 1.0).abs() < 1e-12);
        assert_eq!(report.shares.len(), 3);
        for s in &report.shares {
            assert!((s.load_share - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn hot_shard_is_flagged_and_fixed_by_moves() {
        // Shard 0 carries 4× the load of shard 1.
        let topics = vec![
            topic("hot", 0, 500.0, 1e-3),
            topic("warm", 0, 300.0, 1e-3),
            topic("cool", 1, 200.0, 1e-3),
        ];
        let report = analyze_skew(&topics, &SkewConfig { shards: 2, ..SkewConfig::default() });
        assert!(report.skewed, "ratio {}", report.max_mean_ratio);
        // One move suffices: "warm" (the largest topic that fits on shard
        // 1 without overloading it) balances the pair exactly.
        assert_eq!(report.moves.len(), 1);
        assert!(report.post_ratio <= 1.10 + 1e-12, "post {}", report.post_ratio);
        assert_eq!(report.moves[0].topic, "warm");
        assert_eq!(report.moves[0].from, 0);
        assert_eq!(report.moves[0].to, 1);
    }

    #[test]
    fn advisor_is_greedy_largest_first() {
        let topics = vec![
            topic("xl", 0, 400.0, 1e-3),
            topic("l", 0, 300.0, 1e-3),
            topic("m", 0, 200.0, 1e-3),
            topic("s", 1, 50.0, 1e-3),
            topic("t", 2, 50.0, 1e-3),
        ];
        let report = analyze_skew(&topics, &SkewConfig { shards: 3, ..SkewConfig::default() });
        // "xl" alone carries 0.4 of a 0.333 mean: ratio 1.2 is the best any
        // placement can do, and the advisor gets there.
        assert!(report.post_ratio <= 1.20 + 1e-12, "post {}", report.post_ratio);
        assert!(report.post_ratio < report.max_mean_ratio);
        // Moves come out in non-increasing load order.
        for pair in report.moves.windows(2) {
            assert!(pair[0].load >= pair[1].load);
        }
    }

    #[test]
    fn unmovable_monolith_breaks_without_looping() {
        // One topic is the entire load: no move can help (moving it just
        // relocates the hot spot), the advisor must terminate empty.
        let topics = vec![topic("monolith", 0, 1000.0, 1e-3)];
        let report = analyze_skew(&topics, &SkewConfig { shards: 4, ..SkewConfig::default() });
        assert!(report.skewed);
        assert!(report.moves.is_empty());
        assert_eq!(report.post_ratio, report.max_mean_ratio);
    }

    #[test]
    fn single_shard_is_trivially_balanced() {
        let topics = vec![topic("a", 0, 100.0, 1e-3)];
        let report = analyze_skew(&topics, &SkewConfig::default());
        assert!(!report.skewed);
        assert!((report.max_mean_ratio - 1.0).abs() < 1e-12);
        assert!(report.moves.is_empty());
    }

    #[test]
    fn out_of_range_and_invalid_rows_are_ignored() {
        let topics = vec![
            topic("ok", 0, 100.0, 1e-3),
            topic("oob", 9, 100.0, 1e-3),
            topic("nan", 1, f64::NAN, 1e-3),
            topic("neg", 1, -5.0, 1e-3),
        ];
        let report = analyze_skew(&topics, &SkewConfig { shards: 2, ..SkewConfig::default() });
        assert_eq!(report.shares[0].topics, 1);
        assert_eq!(report.shares[1].topics, 0);
    }

    #[test]
    fn empty_table_yields_neutral_report() {
        let report = analyze_skew(&[], &SkewConfig { shards: 4, ..SkewConfig::default() });
        assert!(!report.skewed);
        assert_eq!(report.shares.len(), 4);
        assert!((report.max_mean_ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moves_actually_reduce_the_ratio_when_applied() {
        // Re-derive the post ratio by applying the moves to the input and
        // re-analyzing: the two must agree.
        let topics = vec![
            topic("a", 0, 700.0, 1e-3),
            topic("b", 0, 280.0, 1e-3),
            topic("c", 0, 120.0, 1e-3),
            topic("d", 1, 100.0, 1e-3),
        ];
        let config = SkewConfig { shards: 2, ..SkewConfig::default() };
        let report = analyze_skew(&topics, &config);
        let mut applied = topics.clone();
        for m in &report.moves {
            applied.iter_mut().find(|t| t.name == m.topic).unwrap().shard = m.to;
        }
        let after = analyze_skew(&applied, &config);
        assert!((after.max_mean_ratio - report.post_ratio).abs() < 1e-9);
        assert!(after.max_mean_ratio < report.max_mean_ratio);
    }
}
