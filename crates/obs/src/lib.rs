//! # rjms-obs
//!
//! The waiting-time SLO engine for the rjms broker: bounded-memory metric
//! history, declarative objectives evaluated as multi-window burn rates,
//! and an alert state machine whose firing records carry evidence —
//! the offending window's latency histogram, the analytic model's
//! prediction at the measured load, and tail-sampled trace chains.
//!
//! The paper this workspace reproduces (Menth & Henjes, ICDCS 2006)
//! argues that a JMS broker's health is its waiting-time *quantiles*:
//! W99 and W99.99 stay small right up until utilization approaches 1,
//! then explode. An average-based alert misses the onset entirely; this
//! crate alerts on exactly the quantities the paper analyzes, and uses
//! the paper's own machinery ([`rjms_core::slo::AnalyticSlo`]) to derive
//! the limits.
//!
//! Layers, bottom up:
//!
//! * [`history`] — multi-resolution delta rings over cumulative registry
//!   snapshots; any trailing window is a bucket-exact histogram merge,
//! * [`slo`] — objectives (`W99 ≤ limit`, `ρ` ceiling, model health) and
//!   their fast/slow burn-rate evaluation,
//! * [`alert`] — the ok → warning → firing → resolved state machine with
//!   hysteresis and cooldown, plus pluggable sinks (stderr, webhook,
//!   in-memory, CI exit code),
//! * [`forecast`] — the predictive layer: λ(t) trend estimation over the
//!   history rings, analytic breach-point inversion, time-to-breach ETAs
//!   with confidence bands, and the Little's-law telemetry self-check,
//! * [`engine`] — [`ObsCore`], the deterministic tick-driven engine, and
//!   [`ObsRuntime`], its production sampling thread,
//! * [`minijson`] — the dependency-free JSON parser the operator console
//!   uses to read the engine's HTTP payloads back,
//! * [`topics`] — the shard-skew analyzer and rebalance advisor over the
//!   broker's per-topic workload observatory.
//!
//! ## Quickstart
//!
//! ```
//! use rjms_metrics::MetricsRegistry;
//! use rjms_obs::{ObsConfig, ObsCore};
//! use std::time::Duration;
//!
//! let registry = MetricsRegistry::new();
//! let waiting = registry.histogram("broker.waiting_ns");
//! let mut engine = ObsCore::new(ObsConfig::default());
//! for second in 1..=5u64 {
//!     waiting.record(250_000); // healthy sub-millisecond waits
//!     engine.tick(Duration::from_secs(second), &registry.snapshot(), None);
//! }
//! let status = engine.status();
//! assert!(status.iter().all(|s| s.state.name() == "ok"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alert;
pub mod engine;
pub mod forecast;
pub mod history;
pub mod minijson;
pub mod slo;
pub mod topics;

pub use alert::{
    AlertEvent, AlertMachine, AlertPolicy, AlertSink, AlertState, Evidence, ExitCodeSink,
    ForecastEvidence, MemorySink, StderrSink, WebhookSink,
};
pub use engine::{verdict_summary, ObjectiveStatus, ObsConfig, ObsCore, ObsRuntime};
pub use forecast::{
    BreachTargets, Confidence, EtaBand, Forecast, ForecastConfig, Forecaster, LittlesLawCheck,
    BACKLOG_METRIC,
};
pub use history::{HistoryConfig, MetricHistory, Reduce, SeriesPoint, Window};
pub use slo::{evaluate_window, Objective, SloSpec, WindowBurn};
pub use topics::{analyze_skew, ShardShare, SkewConfig, SkewReport, TopicLoad, TopicMove};
