//! Fixed-memory multi-resolution metric history.
//!
//! The registry's instruments are cumulative: counters only grow and
//! histograms only accumulate. A single snapshot therefore answers "what
//! happened since boot", but SLO evaluation needs "what happened in the
//! last 5 minutes". This module keeps a bounded ring of **per-interval
//! deltas** — each slot holds the counter increments and the bucket-wise
//! histogram delta ([`HistogramSnapshot::delta`]) between two consecutive
//! cumulative snapshots — so any trailing window is reconstructed by
//! merging its slots ([`HistogramSnapshot::merge`] is exact, bucket-wise).
//!
//! Two resolutions bound memory while covering both alerting windows:
//!
//! * a **fine** ring (default 1 s × 600 slots = 10 min) feeding the fast
//!   burn-rate window and the console sparklines, and
//! * a **coarse** ring (default 10 s × 720 slots = 2 h) built by merging
//!   every `coarse_factor` fine slots — the property tests in
//!   `tests/history_prop.rs` verify the merge reproduces the coarse
//!   counts and quantile bounds exactly.
//!
//! Memory is `O(slots × live series)` and independent of uptime; slots
//! store only non-empty deltas.

use rjms_metrics::{HistogramSnapshot, RegistrySnapshot};
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// Ring geometry. The defaults give 10 minutes at 1 s and 2 hours at 10 s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryConfig {
    /// Width of one fine slot (the sampling interval).
    pub fine_interval: Duration,
    /// Number of fine slots retained.
    pub fine_slots: usize,
    /// Fine slots merged into one coarse slot.
    pub coarse_factor: usize,
    /// Number of coarse slots retained.
    pub coarse_slots: usize,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        Self {
            fine_interval: Duration::from_secs(1),
            fine_slots: 600,
            coarse_factor: 10,
            coarse_slots: 720,
        }
    }
}

impl HistoryConfig {
    /// Total span the fine ring covers.
    pub fn fine_span(&self) -> Duration {
        self.fine_interval * self.fine_slots as u32
    }

    /// Total span the coarse ring covers.
    pub fn coarse_span(&self) -> Duration {
        self.fine_interval * (self.coarse_factor * self.coarse_slots) as u32
    }
}

/// One interval's worth of activity: deltas for counters and histograms,
/// the last observed value for gauges (gauges are levels, not flows).
#[derive(Debug, Clone, Default)]
pub struct HistorySlot {
    /// Elapsed time at the slot's start (relative to the history's epoch).
    pub start: Duration,
    /// Elapsed time at the slot's end.
    pub end: Duration,
    /// Counter increments within the slot (absent = zero).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at the slot's end.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram sample deltas within the slot (absent = no samples).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl HistorySlot {
    /// Folds another slot into this one (interval concatenation).
    fn absorb(&mut self, other: &HistorySlot) {
        self.end = other.end.max(self.end);
        for (name, v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .and_modify(|acc| acc.merge(h))
                .or_insert_with(|| h.clone());
        }
    }
}

/// A trailing window reconstructed from the rings: merged deltas plus the
/// actual span covered (which may be shorter than requested while the
/// history warms up).
#[derive(Debug, Clone, Default)]
pub struct Window {
    /// Elapsed time at the window's start.
    pub start: Duration,
    /// Elapsed time at the window's end (the most recent sample).
    pub end: Duration,
    /// Number of slots merged.
    pub slots: usize,
    /// Summed counter increments.
    pub counters: BTreeMap<String, u64>,
    /// Most recent gauge values.
    pub gauges: BTreeMap<String, i64>,
    /// Merged histogram deltas.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Window {
    /// The wall-clock span actually covered.
    pub fn span(&self) -> Duration {
        self.end.saturating_sub(self.start)
    }

    /// Per-second rate of a counter over the window (0 when absent or the
    /// window is empty).
    pub fn rate(&self, counter: &str) -> f64 {
        let span = self.span().as_secs_f64();
        if span <= 0.0 {
            return 0.0;
        }
        *self.counters.get(counter).unwrap_or(&0) as f64 / span
    }

    /// The merged histogram delta for an instrument, if it saw samples.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }
}

/// One point of a [`MetricHistory::series`] readout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeriesPoint {
    /// Elapsed time at the slot's end, milliseconds.
    pub elapsed_ms: u64,
    /// The slot's value under the requested reduction.
    pub value: f64,
}

/// How to reduce one slot of a metric to a scalar for [`MetricHistory::series`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Reduce {
    /// Counter increments per second within the slot.
    Rate,
    /// Gauge level at the slot's end.
    Level,
    /// Histogram quantile (nanoseconds) of the slot's samples; 0 when the
    /// slot saw none.
    Quantile(f64),
    /// Histogram sample count within the slot.
    Count,
    /// Histogram sample mean within the slot; 0 when the slot saw none.
    /// For the backlog instrument this is the slot's average observed
    /// queue length — the measured `L` of the Little's-law check.
    Mean,
}

/// The multi-resolution delta ring. See the [module docs](self).
#[derive(Debug)]
pub struct MetricHistory {
    config: HistoryConfig,
    /// Last cumulative snapshot, the subtrahend for the next delta.
    last: Option<(Duration, RegistrySnapshot)>,
    fine: VecDeque<HistorySlot>,
    /// Fine slots accumulated toward the next coarse slot.
    pending_coarse: Option<HistorySlot>,
    pending_count: usize,
    coarse: VecDeque<HistorySlot>,
    samples: u64,
}

impl MetricHistory {
    /// Creates an empty history with the given geometry.
    pub fn new(config: HistoryConfig) -> Self {
        assert!(config.fine_slots > 0 && config.coarse_slots > 0 && config.coarse_factor > 0);
        Self {
            config,
            last: None,
            fine: VecDeque::with_capacity(config.fine_slots),
            pending_coarse: None,
            pending_count: 0,
            coarse: VecDeque::with_capacity(config.coarse_slots),
            samples: 0,
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> &HistoryConfig {
        &self.config
    }

    /// Cumulative snapshots recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Records one cumulative snapshot taken at `elapsed` (monotonic time
    /// since an arbitrary epoch, e.g. process start).
    ///
    /// The first call only establishes the baseline; each subsequent call
    /// appends one fine slot holding the delta since the previous call.
    /// Out-of-order calls (`elapsed` not after the previous) are ignored.
    pub fn record(&mut self, elapsed: Duration, snapshot: &RegistrySnapshot) {
        self.samples += 1;
        let Some((prev_elapsed, prev)) = self.last.replace((elapsed, snapshot.clone())) else {
            return;
        };
        if elapsed <= prev_elapsed {
            // Restore the newer baseline semantics: keep the latest
            // snapshot but drop the nonsensical interval.
            return;
        }
        let slot = delta_slot(prev_elapsed, elapsed, &prev, snapshot);
        self.push_fine(slot);
    }

    fn push_fine(&mut self, slot: HistorySlot) {
        match &mut self.pending_coarse {
            Some(pending) => pending.absorb(&slot),
            None => self.pending_coarse = Some(slot.clone()),
        }
        self.pending_count += 1;
        if self.pending_count >= self.config.coarse_factor {
            let coarse = self.pending_coarse.take().expect("pending tracked with count");
            self.pending_count = 0;
            if self.coarse.len() == self.config.coarse_slots {
                self.coarse.pop_front();
            }
            self.coarse.push_back(coarse);
        }
        if self.fine.len() == self.config.fine_slots {
            self.fine.pop_front();
        }
        self.fine.push_back(slot);
    }

    /// The most recent recorded elapsed time, if any.
    pub fn latest(&self) -> Option<Duration> {
        self.last.as_ref().map(|(t, _)| *t)
    }

    /// Reconstructs the trailing window of length `span` by merging ring
    /// slots: the fine ring when it covers the span, the coarse ring plus
    /// the still-pending fine tail otherwise. Returns an empty window when
    /// nothing has been recorded.
    pub fn window(&self, span: Duration) -> Window {
        let Some(end) = self.fine.back().map(|s| s.end) else {
            return Window::default();
        };
        let cutoff = end.saturating_sub(span);
        let fine_covers = self.fine.front().map(|s| s.start <= cutoff).unwrap_or(false);
        let mut out = Window { start: end, end, ..Window::default() };
        let mut absorb = |slot: &HistorySlot| {
            if slot.end <= cutoff {
                return;
            }
            out.start = out.start.min(slot.start.max(cutoff));
            out.slots += 1;
            for (name, v) in &slot.counters {
                *out.counters.entry(name.clone()).or_insert(0) += v;
            }
            for (name, v) in &slot.gauges {
                out.gauges.insert(name.clone(), *v);
            }
            for (name, h) in &slot.histograms {
                out.histograms
                    .entry(name.clone())
                    .and_modify(|acc| acc.merge(h))
                    .or_insert_with(|| h.clone());
            }
        };
        if fine_covers || self.coarse.is_empty() {
            for slot in &self.fine {
                absorb(slot);
            }
        } else {
            // Coarse ring for the deep past, plus the fine slots newer than
            // the last completed coarse slot (the pending tail).
            let coarse_end = self.coarse.back().map(|s| s.end).unwrap_or(Duration::ZERO);
            for slot in &self.coarse {
                absorb(slot);
            }
            for slot in self.fine.iter().filter(|s| s.start >= coarse_end) {
                absorb(slot);
            }
        }
        out
    }

    /// Per-slot scalar readout of one metric over the trailing `span`,
    /// oldest first — the console's sparkline feed. Slots come from the
    /// fine ring when it covers the span; otherwise the coarse ring for
    /// the deep past plus the still-pending fine tail, mirroring
    /// [`MetricHistory::window`].
    pub fn series(&self, metric: &str, span: Duration, reduce: Reduce) -> Vec<SeriesPoint> {
        let Some(end) = self.fine.back().map(|s| s.end) else {
            return Vec::new();
        };
        let cutoff = end.saturating_sub(span);
        let fine_covers = self.fine.front().map(|s| s.start <= cutoff).unwrap_or(false);
        let mut slots: Vec<&HistorySlot> = Vec::new();
        if fine_covers || self.coarse.is_empty() {
            slots.extend(self.fine.iter());
        } else {
            let coarse_end = self.coarse.back().map(|s| s.end).unwrap_or(Duration::ZERO);
            slots.extend(self.coarse.iter());
            slots.extend(self.fine.iter().filter(|s| s.start >= coarse_end));
        }
        slots
            .into_iter()
            .filter(|s| s.end > cutoff)
            .map(|slot| {
                let value = match reduce {
                    Reduce::Rate => {
                        let width = slot.end.saturating_sub(slot.start).as_secs_f64();
                        if width > 0.0 {
                            *slot.counters.get(metric).unwrap_or(&0) as f64 / width
                        } else {
                            0.0
                        }
                    }
                    Reduce::Level => *slot.gauges.get(metric).unwrap_or(&0) as f64,
                    Reduce::Quantile(p) => {
                        slot.histograms.get(metric).and_then(|h| h.quantile(p)).unwrap_or(0) as f64
                    }
                    Reduce::Count => {
                        slot.histograms.get(metric).map(|h| h.count).unwrap_or(0) as f64
                    }
                    Reduce::Mean => slot.histograms.get(metric).map(|h| h.mean()).unwrap_or(0.0),
                };
                SeriesPoint { elapsed_ms: slot.end.as_millis() as u64, value }
            })
            .collect()
    }
}

/// Builds one slot from two consecutive cumulative snapshots.
fn delta_slot(
    start: Duration,
    end: Duration,
    prev: &RegistrySnapshot,
    next: &RegistrySnapshot,
) -> HistorySlot {
    let mut slot = HistorySlot { start, end, ..HistorySlot::default() };
    for (name, value) in &next.counters {
        let before = prev.counters.get(name).copied().unwrap_or(0);
        let delta = value.saturating_sub(before);
        if delta > 0 {
            slot.counters.insert(name.clone(), delta);
        }
    }
    slot.gauges = next.gauges.clone();
    for (name, h) in &next.histograms {
        let window = match prev.histograms.get(name) {
            Some(before) => h.delta(before),
            None => h.clone(),
        };
        if window.count > 0 {
            slot.histograms.insert(name.clone(), window);
        }
    }
    slot
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjms_metrics::MetricsRegistry;

    fn cfg(fine_slots: usize, factor: usize, coarse_slots: usize) -> HistoryConfig {
        HistoryConfig {
            fine_interval: Duration::from_secs(1),
            fine_slots,
            coarse_factor: factor,
            coarse_slots,
        }
    }

    #[test]
    fn series_spanning_past_the_fine_ring_appends_the_pending_tail() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("msgs");
        // Fine ring holds 4 slots; coarse slots are 2 fine slots wide.
        let mut history = MetricHistory::new(cfg(4, 2, 10));
        for t in 0..=7u64 {
            c.add(100);
            history.record(Duration::from_secs(t), &registry.snapshot());
        }
        // Requesting more than the fine ring covers must not drop the
        // fine slots newer than the last completed coarse slot.
        let points = history.series("msgs", Duration::from_secs(60), Reduce::Rate);
        // Coarse slots 0-2, 2-4, 4-6 for the deep past, then the pending
        // fine slot 6-7: complete coverage, nothing double counted.
        let ends: Vec<u64> = points.iter().map(|p| p.elapsed_ms).collect();
        assert_eq!(ends, vec![2_000, 4_000, 6_000, 7_000], "{points:?}");
        assert!(points.iter().all(|p| (p.value - 100.0).abs() < 1e-9), "{points:?}");
    }

    #[test]
    fn window_recovers_counter_deltas_and_rates() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("msgs");
        let mut history = MetricHistory::new(cfg(10, 2, 10));
        for t in 0..=6u64 {
            c.add(100);
            history.record(Duration::from_secs(t), &registry.snapshot());
        }
        // Baseline at t=0, six slots of +100 each afterwards.
        let w = history.window(Duration::from_secs(3));
        assert_eq!(w.counters.get("msgs"), Some(&300));
        assert!((w.rate("msgs") - 100.0).abs() < 1e-9);
        let all = history.window(Duration::from_secs(60));
        assert_eq!(all.counters.get("msgs"), Some(&600));
    }

    #[test]
    fn window_merges_histogram_deltas() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("lat_ns");
        let mut history = MetricHistory::new(cfg(10, 5, 10));
        history.record(Duration::from_secs(0), &registry.snapshot());
        h.record(1_000);
        history.record(Duration::from_secs(1), &registry.snapshot());
        h.record(1_000_000);
        history.record(Duration::from_secs(2), &registry.snapshot());
        let last = history.window(Duration::from_secs(1));
        assert_eq!(last.histogram("lat_ns").unwrap().count, 1);
        let q = last.histogram("lat_ns").unwrap().quantile(0.5).unwrap();
        assert!((1_000_000..=1_050_000).contains(&q), "q {q}");
        let both = history.window(Duration::from_secs(2));
        assert_eq!(both.histogram("lat_ns").unwrap().count, 2);
    }

    #[test]
    fn fine_ring_evicts_but_coarse_retains() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("msgs");
        // Fine: 4 slots of 1 s; coarse: 2-slot aggregation, 8 retained.
        let mut history = MetricHistory::new(cfg(4, 2, 8));
        for t in 0..=12u64 {
            c.add(10);
            history.record(Duration::from_secs(t), &registry.snapshot());
        }
        // 12 slots recorded; the fine ring holds only the last 4, but a
        // 10 s window is still answerable from the coarse ring.
        let deep = history.window(Duration::from_secs(10));
        assert_eq!(deep.counters.get("msgs"), Some(&100), "slots {}", deep.slots);
    }

    #[test]
    fn series_reports_per_slot_rates_oldest_first() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("msgs");
        let mut history = MetricHistory::new(cfg(10, 5, 10));
        history.record(Duration::from_secs(0), &registry.snapshot());
        for t in 1..=3u64 {
            c.add(t * 10);
            history.record(Duration::from_secs(t), &registry.snapshot());
        }
        let pts = history.series("msgs", Duration::from_secs(10), Reduce::Rate);
        assert_eq!(pts.len(), 3);
        let values: Vec<f64> = pts.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![10.0, 20.0, 30.0]);
        assert!(pts.windows(2).all(|w| w[0].elapsed_ms < w[1].elapsed_ms));
    }

    #[test]
    fn mean_reduce_is_per_slot_sample_mean() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("broker.backlog");
        let mut history = MetricHistory::new(cfg(10, 5, 10));
        history.record(Duration::from_secs(0), &registry.snapshot());
        // Slot 1: samples {2, 4} → mean 3; slot 2: none → 0; slot 3: {9}.
        h.record(2);
        h.record(4);
        history.record(Duration::from_secs(1), &registry.snapshot());
        history.record(Duration::from_secs(2), &registry.snapshot());
        h.record(9);
        history.record(Duration::from_secs(3), &registry.snapshot());
        let pts = history.series("broker.backlog", Duration::from_secs(10), Reduce::Mean);
        let values: Vec<f64> = pts.iter().map(|p| p.value).collect();
        assert_eq!(values, vec![3.0, 0.0, 9.0]);
    }

    #[test]
    fn out_of_order_snapshots_are_dropped() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("msgs");
        let mut history = MetricHistory::new(cfg(10, 2, 10));
        history.record(Duration::from_secs(5), &registry.snapshot());
        c.add(7);
        history.record(Duration::from_secs(5), &registry.snapshot());
        assert_eq!(history.window(Duration::from_secs(60)).slots, 0);
        c.add(3);
        history.record(Duration::from_secs(6), &registry.snapshot());
        // The delta is taken against the *latest* baseline (t=5 snapshot,
        // counter already at 7), so only the +3 lands in the slot.
        let w = history.window(Duration::from_secs(60));
        assert_eq!(w.counters.get("msgs"), Some(&3));
    }

    #[test]
    fn warmup_window_reports_actual_span() {
        let registry = MetricsRegistry::new();
        registry.counter("msgs").add(1);
        let mut history = MetricHistory::new(cfg(600, 10, 720));
        history.record(Duration::from_secs(0), &registry.snapshot());
        registry.counter("msgs").add(1);
        history.record(Duration::from_secs(1), &registry.snapshot());
        let w = history.window(Duration::from_secs(300));
        assert_eq!(w.span(), Duration::from_secs(1));
        assert_eq!(w.slots, 1);
    }

    #[test]
    fn gauges_report_latest_level() {
        let registry = MetricsRegistry::new();
        let g = registry.gauge("depth");
        let mut history = MetricHistory::new(cfg(10, 2, 10));
        g.set(5);
        history.record(Duration::from_secs(0), &registry.snapshot());
        g.set(9);
        history.record(Duration::from_secs(1), &registry.snapshot());
        g.set(2);
        history.record(Duration::from_secs(2), &registry.snapshot());
        let w = history.window(Duration::from_secs(10));
        assert_eq!(w.gauges.get("depth"), Some(&2));
    }
}
