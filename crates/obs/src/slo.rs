//! Declarative service-level objectives evaluated as multi-window burn
//! rates.
//!
//! An objective defines what "bad" means for one guarded quantity; the
//! engine evaluates it over a **fast** and a **slow** trailing window
//! (classic multi-window burn-rate alerting: the fast window catches
//! onset quickly, the slow window suppresses blips). For a latency
//! quantile objective `W_q ≤ limit`, the error budget is `1 − q` and the
//! burn rate over a window is
//!
//! ```text
//! burn = P(W > limit within the window) / (1 − q)
//! ```
//!
//! so `burn = 1` consumes the budget exactly as fast as the objective
//! allows, and `burn ≥ threshold` (default 2) on **both** windows means
//! the objective is being violated persistently, not transiently.
//! Utilization and drift objectives reuse the same scale: their "burn" is
//! the ratio of measured pressure to the allowed ceiling.
//!
//! Default objectives come straight from the paper's headline numbers —
//! `W99 ≤ 10 ms`, `W99.99 ≤ 100 ms` (§IV-B reports sub-second 99.99%
//! quantiles for 20 ms service times; a 10 ms W99 target matches the
//! Fig. 12 operating regime) — or analytically from
//! [`rjms_core::slo::AnalyticSlo`] via [`SloSpec::from_analytic`].

use crate::history::Window;
use rjms_core::slo::AnalyticSlo;
use std::time::Duration;

/// Default instrument guarded by latency objectives.
pub const WAITING_METRIC: &str = "broker.waiting_ns";
/// Instrument used for the measured service time (utilization objective).
pub const SERVICE_METRIC: &str = "broker.service_ns";

/// What one objective guards.
#[derive(Debug, Clone, PartialEq)]
pub enum Objective {
    /// `quantile` of the named nanosecond histogram must stay at or below
    /// `limit_ns`: burn = fraction of window samples above the limit,
    /// divided by the `1 − quantile` budget.
    LatencyQuantile {
        /// Registry histogram name (nanosecond samples).
        metric: String,
        /// The guarded quantile in `(0, 1)`, e.g. `0.99`.
        quantile: f64,
        /// The limit in nanoseconds.
        limit_ns: u64,
    },
    /// Measured utilization `ρ = λ·E[B]` (from the window's waiting/service
    /// instruments) must stay below `ceiling`: burn = ρ / ceiling.
    UtilizationCeiling {
        /// The utilization ceiling in `(0, 1]`.
        ceiling: f64,
    },
    /// The live analytic-model comparison must not report drift or
    /// overload: burn = `threshold` when the latest verdict is red, 0
    /// otherwise (binary — the verdict already embeds its own tolerance).
    DriftHealth,
}

/// One declarative objective plus its evaluation windows.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective name, unique within the engine (alert identity).
    pub name: String,
    /// The guarded quantity.
    pub objective: Objective,
    /// Fast window (onset detection). Default 5 minutes.
    pub fast_window: Duration,
    /// Slow window (persistence check). Default 1 hour.
    pub slow_window: Duration,
    /// Burn-rate threshold; both windows at or above it → firing.
    pub burn_threshold: f64,
}

impl SloSpec {
    /// A latency-quantile objective with the default 5 m / 1 h windows and
    /// a burn threshold of 2 (budget consumed twice as fast as allowed).
    pub fn latency(name: &str, metric: &str, quantile: f64, limit_ns: u64) -> Self {
        assert!((0.0..1.0).contains(&quantile) && quantile > 0.0, "quantile in (0,1)");
        Self {
            name: name.to_string(),
            objective: Objective::LatencyQuantile {
                metric: metric.to_string(),
                quantile,
                limit_ns,
            },
            fast_window: Duration::from_secs(300),
            slow_window: Duration::from_secs(3600),
            burn_threshold: 2.0,
        }
    }

    /// A utilization-ceiling objective with default windows; fires when
    /// measured `ρ` exceeds the ceiling on both windows.
    pub fn utilization(name: &str, ceiling: f64) -> Self {
        assert!(ceiling > 0.0 && ceiling <= 1.0, "ceiling in (0,1]");
        Self {
            name: name.to_string(),
            objective: Objective::UtilizationCeiling { ceiling },
            fast_window: Duration::from_secs(300),
            slow_window: Duration::from_secs(3600),
            burn_threshold: 1.0,
        }
    }

    /// A model-drift health objective with default windows.
    pub fn drift_health(name: &str) -> Self {
        Self {
            name: name.to_string(),
            objective: Objective::DriftHealth,
            fast_window: Duration::from_secs(300),
            slow_window: Duration::from_secs(3600),
            burn_threshold: 1.0,
        }
    }

    /// Overrides the evaluation windows.
    pub fn windows(mut self, fast: Duration, slow: Duration) -> Self {
        assert!(fast <= slow, "fast window must not exceed slow window");
        self.fast_window = fast;
        self.slow_window = slow;
        self
    }

    /// Overrides the burn threshold.
    pub fn threshold(mut self, burn: f64) -> Self {
        assert!(burn > 0.0);
        self.burn_threshold = burn;
        self
    }

    /// The paper-default objective set: `W99 ≤ 10 ms`, `W99.99 ≤ 100 ms`,
    /// `ρ ≤ 0.9`, and analytic-model health.
    pub fn defaults() -> Vec<SloSpec> {
        vec![
            SloSpec::latency("w99", WAITING_METRIC, 0.99, 10_000_000),
            SloSpec::latency("w9999", WAITING_METRIC, 0.9999, 100_000_000),
            SloSpec::utilization("rho", 0.9),
            SloSpec::drift_health("model"),
        ]
    }

    /// Objectives derived from the analytic model's predictions
    /// ([`AnalyticSlo`]): latency limits at the model's predicted
    /// quantiles (with the analytic headroom already applied) and the
    /// utilization ceiling where the latency budget is exhausted.
    pub fn from_analytic(slo: &AnalyticSlo) -> Vec<SloSpec> {
        vec![
            SloSpec::latency("w99", WAITING_METRIC, 0.99, (slo.w99_limit * 1e9) as u64),
            SloSpec::latency("w9999", WAITING_METRIC, 0.9999, (slo.w9999_limit * 1e9) as u64),
            SloSpec::utilization("rho", slo.rho_ceiling.clamp(1e-6, 1.0)),
            SloSpec::drift_health("model"),
        ]
    }
}

/// One window's evaluation of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WindowBurn {
    /// The burn rate (see module docs).
    pub burn: f64,
    /// Samples the evaluation was based on.
    pub samples: u64,
    /// "Bad" events within the window (limit violations).
    pub bad: u64,
}

/// Evaluates one objective over one reconstructed window.
///
/// `drift_red` carries the latest model-health verdict for
/// [`Objective::DriftHealth`] (the objective is windowless — the monitor
/// already aggregates).
pub fn evaluate_window(objective: &Objective, window: &Window, drift_red: bool) -> WindowBurn {
    match objective {
        Objective::LatencyQuantile { metric, quantile, limit_ns } => {
            let Some(h) = window.histogram(metric) else {
                return WindowBurn::default();
            };
            let bad = h.count_above(*limit_ns);
            let budget = 1.0 - quantile;
            let bad_fraction = if h.count > 0 { bad as f64 / h.count as f64 } else { 0.0 };
            WindowBurn { burn: bad_fraction / budget, samples: h.count, bad }
        }
        Objective::UtilizationCeiling { ceiling } => {
            let Some(service) = window.histogram(SERVICE_METRIC) else {
                return WindowBurn::default();
            };
            let span = window.span().as_secs_f64();
            if span <= 0.0 || service.count == 0 {
                return WindowBurn::default();
            }
            let arrival_rate = service.count as f64 / span;
            let rho = arrival_rate * (service.mean() / 1e9);
            WindowBurn { burn: rho / ceiling, samples: service.count, bad: 0 }
        }
        Objective::DriftHealth => WindowBurn {
            burn: if drift_red { 1.0 } else { 0.0 },
            samples: u64::from(drift_red),
            bad: u64::from(drift_red),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjms_metrics::MetricsRegistry;

    fn window_with(metric: &str, samples_ns: &[u64], span: Duration) -> Window {
        let registry = MetricsRegistry::new();
        let h = registry.histogram(metric);
        for &v in samples_ns {
            h.record(v);
        }
        let snap = registry.snapshot();
        let mut w = Window { start: Duration::ZERO, end: span, ..Window::default() };
        w.histograms.insert(metric.to_string(), snap.histograms[metric].clone());
        w
    }

    #[test]
    fn latency_burn_is_bad_fraction_over_budget() {
        // 100 samples, 3 above the 1 ms limit, q = 0.99 → budget 0.01,
        // bad fraction 0.03, burn 3.
        let mut samples = vec![100_000u64; 97];
        samples.extend([5_000_000, 5_000_000, 5_000_000]);
        let w = window_with("lat_ns", &samples, Duration::from_secs(10));
        let spec = SloSpec::latency("w99", "lat_ns", 0.99, 1_000_000);
        let burn = evaluate_window(&spec.objective, &w, false);
        assert_eq!(burn.samples, 100);
        assert_eq!(burn.bad, 3);
        assert!((burn.burn - 3.0).abs() < 1e-9, "burn {}", burn.burn);
    }

    #[test]
    fn empty_window_burns_nothing() {
        let w = Window::default();
        let spec = SloSpec::latency("w99", "lat_ns", 0.99, 1_000_000);
        assert_eq!(evaluate_window(&spec.objective, &w, false).burn, 0.0);
    }

    #[test]
    fn utilization_burn_is_rho_over_ceiling() {
        // 1000 services of 4.5 ms over 10 s: λ = 100/s, E[B] = 4.5 ms,
        // ρ = 0.45; ceiling 0.9 → burn 0.5.
        let samples = vec![4_500_000u64; 1000];
        let w = window_with(SERVICE_METRIC, &samples, Duration::from_secs(10));
        let spec = SloSpec::utilization("rho", 0.9);
        let burn = evaluate_window(&spec.objective, &w, false);
        assert!((burn.burn - 0.5).abs() < 0.05, "burn {}", burn.burn);
    }

    #[test]
    fn drift_health_is_binary() {
        let w = Window::default();
        let spec = SloSpec::drift_health("model");
        assert_eq!(evaluate_window(&spec.objective, &w, false).burn, 0.0);
        assert_eq!(evaluate_window(&spec.objective, &w, true).burn, 1.0);
    }

    #[test]
    fn analytic_targets_translate_to_specs() {
        use rjms_core::params::CostParams;
        use rjms_core::{AnalyticSlo, ReplicationModel, ServerModel};
        let model = ServerModel::new(CostParams::CORRELATION_ID, 50);
        let analytic =
            AnalyticSlo::derive(&model, ReplicationModel::binomial(50.0, 0.2), 0.9, 1.5).unwrap();
        let specs = SloSpec::from_analytic(&analytic);
        let w99 = specs.iter().find(|s| s.name == "w99").unwrap();
        match &w99.objective {
            Objective::LatencyQuantile { limit_ns, .. } => {
                assert!(*limit_ns > 0);
                assert_eq!(*limit_ns, (analytic.w99_limit * 1e9) as u64);
            }
            other => panic!("unexpected objective {other:?}"),
        }
        let rho = specs.iter().find(|s| s.name == "rho").unwrap();
        match &rho.objective {
            Objective::UtilizationCeiling { ceiling } => {
                assert!((*ceiling - analytic.rho_ceiling).abs() < 1e-12)
            }
            other => panic!("unexpected objective {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "fast window must not exceed")]
    fn window_order_enforced() {
        SloSpec::latency("w99", "m", 0.99, 1)
            .windows(Duration::from_secs(600), Duration::from_secs(60));
    }
}
