//! The SLO engine: deterministic core plus a production runtime thread.
//!
//! [`ObsCore`] is intentionally free of clocks and threads: every
//! evaluation is an explicit [`ObsCore::tick`] with a caller-supplied
//! elapsed time, a cumulative registry snapshot, and (optionally) the
//! flight recorder for trace evidence. That makes the whole engine —
//! history, burn rates, state machines, evidence capture — drivable from
//! tests at simulated time, which is how the overload integration test
//! walks an alert through ok → firing → resolved in milliseconds.
//!
//! [`ObsRuntime`] wraps the core in a sampling thread for production: one
//! registry snapshot per interval, one tick, sinks notified on
//! transitions, and the shared core handed to the HTTP layer for the
//! `/history`, `/slo` and `/alerts` endpoints.

use crate::alert::{AlertEvent, AlertMachine, AlertPolicy, AlertSink, AlertState, Evidence};
use crate::forecast::{BreachTargets, Forecast, ForecastConfig, Forecaster, BACKLOG_METRIC};
use crate::history::{HistoryConfig, MetricHistory, Reduce, Window};
use crate::slo::{evaluate_window, Objective, SloSpec, WindowBurn, SERVICE_METRIC, WAITING_METRIC};
use rjms_core::{ModelMonitor, ModelVerdict};
use rjms_metrics::{JsonWriter, MetricsRegistry, RegistrySnapshot};
use rjms_trace::{group_chains, FlightRecorder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Events retained for the `/alerts` feed.
const EVENT_RING: usize = 256;
/// Trace chains attached to one piece of firing evidence.
const EVIDENCE_TRACES: usize = 8;

/// Engine configuration.
#[derive(Debug)]
pub struct ObsConfig {
    /// History ring geometry.
    pub history: HistoryConfig,
    /// The objectives to evaluate.
    pub slos: Vec<SloSpec>,
    /// Shared hysteresis/pacing policy.
    pub policy: AlertPolicy,
    /// Predictive forecasting knobs (trend window, horizon, confidence
    /// gate). Forecasting is on by default; set `forecast.enabled =
    /// false` to run the engine purely reactively.
    pub forecast: ForecastConfig,
}

impl Default for ObsConfig {
    fn default() -> Self {
        Self {
            history: HistoryConfig::default(),
            slos: SloSpec::defaults(),
            policy: AlertPolicy::default(),
            forecast: ForecastConfig::default(),
        }
    }
}

/// Point-in-time status of one objective (the `/slo` payload row).
#[derive(Debug, Clone)]
pub struct ObjectiveStatus {
    /// Objective name.
    pub name: String,
    /// Current alert state.
    pub state: AlertState,
    /// When the state was entered.
    pub since: Duration,
    /// Latest fast-window evaluation.
    pub fast: WindowBurn,
    /// Latest slow-window evaluation.
    pub slow: WindowBurn,
    /// The firing threshold.
    pub threshold: f64,
    /// Remaining error budget in the slow window, as a fraction of the
    /// budget (1 = untouched, 0 = exhausted, negative = overspent).
    pub budget_remaining: f64,
}

/// The deterministic SLO engine. See the [module docs](self).
pub struct ObsCore {
    history: MetricHistory,
    specs: Vec<SloSpec>,
    machines: Vec<AlertMachine>,
    monitor: Option<ModelMonitor>,
    forecaster: Forecaster,
    targets: BreachTargets,
    latest_verdict: Option<ModelVerdict>,
    latest_forecast: Option<Forecast>,
    latest_status: Vec<ObjectiveStatus>,
    events: std::collections::VecDeque<AlertEvent>,
    sinks: Vec<Box<dyn AlertSink>>,
}

impl std::fmt::Debug for ObsCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsCore")
            .field("specs", &self.specs.len())
            .field("samples", &self.history.samples())
            .field("events", &self.events.len())
            .finish()
    }
}

impl ObsCore {
    /// Builds an engine from a configuration.
    pub fn new(config: ObsConfig) -> Self {
        let machines = config
            .slos
            .iter()
            .map(|s| AlertMachine::new(&s.name, s.burn_threshold, config.policy))
            .collect();
        let targets = BreachTargets::from_specs(&config.slos);
        Self {
            history: MetricHistory::new(config.history),
            specs: config.slos,
            machines,
            monitor: None,
            forecaster: Forecaster::new(config.forecast),
            targets,
            latest_verdict: None,
            latest_forecast: None,
            latest_status: Vec::new(),
            events: std::collections::VecDeque::with_capacity(EVENT_RING),
            sinks: Vec::new(),
        }
    }

    /// Attaches the analytic model monitor: firing evidence gains the
    /// model's prediction and the drift-health objective becomes live.
    pub fn with_monitor(mut self, monitor: ModelMonitor) -> Self {
        self.monitor = Some(monitor);
        self
    }

    /// Replaces the model monitor at runtime. The measured operating point
    /// (filters per message, replication grade) is only observable once
    /// traffic flows, so hosts refresh the monitor as topology data
    /// arrives.
    pub fn set_monitor(&mut self, monitor: ModelMonitor) {
        self.monitor = Some(monitor);
    }

    /// Adds a notification sink.
    pub fn add_sink(&mut self, sink: Box<dyn AlertSink>) {
        self.sinks.push(sink);
    }

    /// The metric history (for `/history` readouts).
    pub fn history(&self) -> &MetricHistory {
        &self.history
    }

    /// The latest per-objective status (recomputed by each tick).
    pub fn status(&self) -> &[ObjectiveStatus] {
        &self.latest_status
    }

    /// Recent alert transitions, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &AlertEvent> {
        self.events.iter()
    }

    /// The latest model verdict, when a monitor is attached and has seen
    /// enough samples.
    pub fn latest_verdict(&self) -> Option<&ModelVerdict> {
        self.latest_verdict.as_ref()
    }

    /// The latest saturation forecast (recomputed by each tick when
    /// forecasting is enabled and trend data suffices).
    pub fn latest_forecast(&self) -> Option<&Forecast> {
        self.latest_forecast.as_ref()
    }

    /// The forecaster's knobs.
    pub fn forecast_config(&self) -> &ForecastConfig {
        self.forecaster.config()
    }

    /// Computes a forecast over arbitrary instrument names — the HTTP
    /// layer uses this for per-shard forecasts over the labeled twins
    /// (`broker.waiting_ns{shard="i"}` etc). The shard's own service
    /// histogram is moment-matched rather than the aggregate monitor's
    /// calibration, so each shard is judged at its own operating point.
    pub fn forecast_for(
        &self,
        waiting_metric: &str,
        service_metric: &str,
        backlog_metric: &str,
    ) -> Option<Forecast> {
        if !self.forecaster.config().enabled {
            return None;
        }
        self.forecaster.forecast(
            &self.history,
            waiting_metric,
            service_metric,
            backlog_metric,
            &self.targets,
            None,
            self.history.latest().unwrap_or(Duration::ZERO),
        )
    }

    /// Ingests one cumulative snapshot and evaluates every objective.
    /// Returns the transitions that occurred (already delivered to sinks).
    pub fn tick(
        &mut self,
        elapsed: Duration,
        snapshot: &RegistrySnapshot,
        recorder: Option<&FlightRecorder>,
    ) -> Vec<AlertEvent> {
        self.history.record(elapsed, snapshot);

        // Model assessment over the fast window of the first latency
        // objective (they share the default 5 m onset horizon).
        let assess_span =
            self.specs.first().map(|s| s.fast_window).unwrap_or(Duration::from_secs(300));
        let assess_window = self.history.window(assess_span);
        self.latest_verdict = self.monitor.as_ref().and_then(|m| {
            let waiting = assess_window.histogram(WAITING_METRIC)?;
            let service = assess_window.histogram(SERVICE_METRIC)?;
            Some(m.assess(waiting, service, assess_window.span()))
        });
        let drift_red = matches!(
            self.latest_verdict,
            Some(ModelVerdict::Drift(_) | ModelVerdict::Overloaded { .. })
        );

        // Predictive pass: fit the λ(t) trend and project time-to-breach
        // before any burn evaluation, so a clean-but-climbing system can
        // enter Pending this very tick.
        let forecast_config = *self.forecaster.config();
        let forecast = forecast_config.enabled.then(|| {
            self.forecaster.forecast(
                &self.history,
                WAITING_METRIC,
                SERVICE_METRIC,
                BACKLOG_METRIC,
                &self.targets,
                self.latest_verdict.as_ref(),
                elapsed,
            )
        });
        let forecast = forecast.flatten();

        let mut transitions = Vec::new();
        let mut status = Vec::with_capacity(self.specs.len());
        for (spec, machine) in self.specs.iter().zip(self.machines.iter_mut()) {
            let fast_window = self.history.window(spec.fast_window);
            let slow_window = self.history.window(spec.slow_window);
            let fast = evaluate_window(&spec.objective, &fast_window, drift_red);
            let slow = evaluate_window(&spec.objective, &slow_window, drift_red);
            let hint = pending_hint(forecast.as_ref(), &forecast_config, &spec.objective);
            let event = machine.step_with_forecast(elapsed, fast, slow, hint, || {
                build_evidence(
                    spec,
                    &fast_window,
                    self.latest_verdict.as_ref(),
                    forecast.as_ref(),
                    recorder,
                )
            });
            if let Some(event) = event {
                transitions.push(event);
            }
            status.push(ObjectiveStatus {
                name: spec.name.clone(),
                state: machine.state(),
                since: machine.since(),
                fast,
                slow,
                threshold: spec.burn_threshold,
                budget_remaining: budget_remaining(&spec.objective, slow),
            });
        }
        self.latest_forecast = forecast;
        self.latest_status = status;
        for event in &transitions {
            if self.events.len() == EVENT_RING {
                self.events.pop_front();
            }
            self.events.push_back(event.clone());
            for sink in &mut self.sinks {
                sink.emit(event);
            }
        }
        transitions
    }

    /// Renders the `/slo` JSON payload.
    pub fn render_slo_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("elapsed_ms");
        w.uint(self.history.latest().map(|t| t.as_millis() as u64).unwrap_or(0));
        w.key("model_verdict");
        match &self.latest_verdict {
            Some(v) => w.string(&verdict_summary(v)),
            None => w.null(),
        }
        w.key("objectives");
        w.begin_array();
        for s in &self.latest_status {
            w.begin_object();
            w.key("name");
            w.string(&s.name);
            w.key("state");
            w.string(s.state.name());
            w.key("since_ms");
            w.uint(s.since.as_millis() as u64);
            w.key("threshold");
            w.float(s.threshold);
            w.key("fast_burn");
            w.float(s.fast.burn);
            w.key("slow_burn");
            w.float(s.slow.burn);
            w.key("fast_samples");
            w.uint(s.fast.samples);
            w.key("slow_samples");
            w.uint(s.slow.samples);
            w.key("fast_bad");
            w.uint(s.fast.bad);
            w.key("slow_bad");
            w.uint(s.slow.bad);
            w.key("budget_remaining");
            w.float(s.budget_remaining);
            w.end_object();
        }
        w.end_array();
        w.key("forecast");
        match &self.latest_forecast {
            Some(f) => w.raw(&f.render_json()),
            None => w.null(),
        }
        w.end_object();
        w.finish()
    }

    /// Renders the `/forecast` JSON payload: the aggregate forecast plus
    /// the knobs it was computed under.
    pub fn render_forecast_json(&self) -> String {
        let config = self.forecaster.config();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("elapsed_ms");
        w.uint(self.history.latest().map(|t| t.as_millis() as u64).unwrap_or(0));
        w.key("enabled");
        w.bool(config.enabled);
        w.key("horizon_ms");
        w.uint(config.horizon.as_millis() as u64);
        w.key("trend_window_ms");
        w.uint(config.trend_window.as_millis() as u64);
        w.key("min_confidence");
        w.string(config.min_confidence.name());
        w.key("forecast");
        match &self.latest_forecast {
            Some(f) => w.raw(&f.render_json()),
            None => w.null(),
        }
        w.end_object();
        w.finish()
    }

    /// Renders the `/alerts` JSON payload: current per-objective states
    /// plus the recent transition feed (newest last), evidence included.
    pub fn render_alerts_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("active");
        w.begin_array();
        for s in &self.latest_status {
            w.begin_object();
            w.key("name");
            w.string(&s.name);
            w.key("state");
            w.string(s.state.name());
            w.key("since_ms");
            w.uint(s.since.as_millis() as u64);
            w.end_object();
        }
        w.end_array();
        w.key("events");
        w.begin_array();
        for event in &self.events {
            w.raw(&event.render_json());
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    /// Renders the `/history` JSON payload for one metric: the per-slot
    /// series over `span` under `reduce`, plus the merged-window summary.
    pub fn render_history_json(&self, metric: &str, span: Duration, reduce: Reduce) -> String {
        let points = self.history.series(metric, span, reduce);
        let window = self.history.window(span);
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("metric");
        w.string(metric);
        w.key("window_ms");
        w.uint(span.as_millis() as u64);
        w.key("covered_ms");
        w.uint(window.span().as_millis() as u64);
        w.key("reduce");
        w.string(match reduce {
            Reduce::Rate => "rate",
            Reduce::Level => "level",
            Reduce::Quantile(_) => "quantile",
            Reduce::Count => "count",
            Reduce::Mean => "mean",
        });
        w.key("points");
        w.begin_array();
        for p in &points {
            w.begin_object();
            w.key("t_ms");
            w.uint(p.elapsed_ms);
            w.key("v");
            w.float(p.value);
            w.end_object();
        }
        w.end_array();
        w.key("summary");
        match window.histogram(metric) {
            Some(h) => {
                w.begin_object();
                w.key("count");
                w.uint(h.count);
                w.key("q50_ns");
                w.uint(h.quantile(0.50).unwrap_or(0));
                w.key("q99_ns");
                w.uint(h.quantile(0.99).unwrap_or(0));
                w.key("q9999_ns");
                w.uint(h.quantile(0.9999).unwrap_or(0));
                w.key("mean_ns");
                w.float(h.mean());
                w.end_object();
            }
            None => {
                let total = window.counters.get(metric).copied();
                match total {
                    Some(total) => {
                        w.begin_object();
                        w.key("total");
                        w.uint(total);
                        w.key("rate");
                        w.float(window.rate(metric));
                        w.end_object();
                    }
                    None => w.null(),
                }
            }
        }
        w.end_object();
        w.finish()
    }
}

/// Slow-window error budget remaining, as a fraction of the budget.
fn budget_remaining(objective: &Objective, slow: WindowBurn) -> f64 {
    match objective {
        Objective::LatencyQuantile { .. } => 1.0 - slow.burn,
        Objective::UtilizationCeiling { .. } => 1.0 - slow.burn,
        Objective::DriftHealth => 1.0 - slow.burn,
    }
}

/// One-line human summary of a model verdict.
pub fn verdict_summary(verdict: &ModelVerdict) -> String {
    match verdict {
        ModelVerdict::Insufficient { samples, required } => {
            format!("insufficient: {samples}/{required} samples")
        }
        ModelVerdict::Overloaded { utilization } => {
            format!("overloaded: rho = {utilization:.3} >= 1")
        }
        ModelVerdict::Calibrated(_) => "calibrated".to_string(),
        ModelVerdict::Drift(report) => {
            let quantities: Vec<&str> = report.violations.iter().map(|v| v.quantity).collect();
            format!("drift: {}", quantities.join(", "))
        }
        _ => "unknown".to_string(),
    }
}

/// Whether the forecast justifies the proactive `Pending` state for one
/// objective: latency objectives pend on the projected quantile breach,
/// the utilization ceiling pends on projected saturation, and drift
/// health (a model-consistency signal, not a load signal) never pends.
fn pending_hint(
    forecast: Option<&Forecast>,
    config: &ForecastConfig,
    objective: &Objective,
) -> bool {
    let Some(f) = forecast else { return false };
    if f.confidence < config.min_confidence.max(crate::forecast::Confidence::Low) {
        return false;
    }
    let band = match objective {
        Objective::LatencyQuantile { .. } => f.eta_breach,
        Objective::UtilizationCeiling { .. } => f.eta_saturation,
        Objective::DriftHealth => None,
    };
    band.is_some_and(|b| b.eta <= config.horizon)
}

/// Builds firing evidence for one objective from the offending fast
/// window, the latest model verdict, the active forecast, and the flight
/// recorder's current tail-sampled chains.
fn build_evidence(
    spec: &SloSpec,
    fast_window: &Window,
    verdict: Option<&ModelVerdict>,
    forecast: Option<&Forecast>,
    recorder: Option<&FlightRecorder>,
) -> Evidence {
    let metric = match &spec.objective {
        Objective::LatencyQuantile { metric, .. } => metric.as_str(),
        Objective::UtilizationCeiling { .. } => SERVICE_METRIC,
        Objective::DriftHealth => WAITING_METRIC,
    };
    let trace_ids = recorder
        .map(|r| {
            let chains = group_chains(r.snapshot().events);
            let mut ids: Vec<u64> =
                chains.iter().filter(|c| c.is_complete()).map(|c| c.trace_id).collect();
            // Newest chains carry the incident; keep the tail.
            if ids.len() > EVIDENCE_TRACES {
                ids.drain(..ids.len() - EVIDENCE_TRACES);
            }
            ids
        })
        .unwrap_or_default();
    Evidence {
        window_histogram: fast_window.histogram(metric).cloned(),
        prediction: verdict.and_then(|v| v.report()).map(|r| r.predicted),
        model_verdict: verdict.map(verdict_summary),
        forecast: forecast.and_then(|f| f.evidence()),
        trace_ids,
    }
}

/// Production wrapper: samples the registry on an interval and drives a
/// shared [`ObsCore`] from a background thread.
pub struct ObsRuntime {
    core: Arc<Mutex<ObsCore>>,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for ObsRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObsRuntime").finish_non_exhaustive()
    }
}

impl ObsRuntime {
    /// Starts the sampling thread: one `registry.snapshot()` and one
    /// [`ObsCore::tick`] every `interval` until [`ObsRuntime::stop`].
    pub fn start(
        core: ObsCore,
        registry: MetricsRegistry,
        recorder: Option<Arc<FlightRecorder>>,
        interval: Duration,
    ) -> Self {
        let core = Arc::new(Mutex::new(core));
        let stop = Arc::new(AtomicBool::new(false));
        let thread_core = Arc::clone(&core);
        let thread_stop = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("rjms-obs".into())
            .spawn(move || {
                let epoch = Instant::now();
                while !thread_stop.load(Ordering::Relaxed) {
                    thread::sleep(interval);
                    let snapshot = registry.snapshot();
                    let elapsed = epoch.elapsed();
                    let mut core = thread_core.lock().expect("obs core lock");
                    core.tick(elapsed, &snapshot, recorder.as_deref());
                }
            })
            .expect("spawn obs thread");
        Self { core, stop, handle: Some(handle) }
    }

    /// The shared core, for HTTP handlers and shutdown-time inspection.
    pub fn core(&self) -> Arc<Mutex<ObsCore>> {
        Arc::clone(&self.core)
    }

    /// Stops the sampling thread and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ObsRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::MemorySink;
    use rjms_metrics::MetricsRegistry;

    fn quick_specs() -> Vec<SloSpec> {
        vec![SloSpec::latency("w99", WAITING_METRIC, 0.99, 1_000_000)
            .windows(Duration::from_secs(4), Duration::from_secs(8))]
    }

    fn quick_policy() -> AlertPolicy {
        AlertPolicy {
            resolve_ratio: 0.9,
            resolve_after: Duration::from_secs(2),
            cooldown: Duration::from_secs(4),
        }
    }

    #[test]
    fn tick_drives_alert_through_overload_and_back() {
        let registry = MetricsRegistry::new();
        let waiting = registry.histogram(WAITING_METRIC);
        let config = ObsConfig {
            history: HistoryConfig {
                fine_interval: Duration::from_secs(1),
                fine_slots: 32,
                coarse_factor: 4,
                coarse_slots: 16,
            },
            slos: quick_specs(),
            policy: quick_policy(),
            forecast: ForecastConfig::default(),
        };
        let mut core = ObsCore::new(config);
        let sink = MemorySink::new();
        core.add_sink(Box::new(sink.clone()));

        let mut t = 0u64;
        let step = |core: &mut ObsCore, violating: bool, t: &mut u64| {
            for _ in 0..100 {
                waiting.record(if violating { 50_000_000 } else { 100_000 });
            }
            *t += 1;
            core.tick(Duration::from_secs(*t), &registry.snapshot(), None);
        };
        // Healthy warm-up fills both windows with good samples.
        for _ in 0..9 {
            step(&mut core, false, &mut t);
        }
        assert_eq!(core.status()[0].state, AlertState::Ok);
        // Saturate: every sample violates the 1 ms limit.
        for _ in 0..9 {
            step(&mut core, true, &mut t);
        }
        assert_eq!(core.status()[0].state, AlertState::Firing);
        // Recover; resolve_after = 2 s then cooldown back to Ok.
        for _ in 0..16 {
            step(&mut core, false, &mut t);
        }
        assert_eq!(core.status()[0].state, AlertState::Ok);
        let states: Vec<AlertState> = sink.events().iter().map(|e| e.to).collect();
        assert!(states.contains(&AlertState::Firing));
        assert!(states.contains(&AlertState::Resolved));
        assert!(states.contains(&AlertState::Ok));
    }

    #[test]
    fn firing_event_carries_window_evidence() {
        let registry = MetricsRegistry::new();
        let waiting = registry.histogram(WAITING_METRIC);
        let config = ObsConfig {
            history: HistoryConfig {
                fine_interval: Duration::from_secs(1),
                fine_slots: 32,
                coarse_factor: 4,
                coarse_slots: 16,
            },
            slos: quick_specs(),
            policy: quick_policy(),
            forecast: ForecastConfig::default(),
        };
        let mut core = ObsCore::new(config);
        let mut transitions = Vec::new();
        for t in 1..=8u64 {
            for _ in 0..50 {
                waiting.record(80_000_000);
            }
            transitions.extend(core.tick(Duration::from_secs(t), &registry.snapshot(), None));
        }
        let firing = transitions.iter().find(|e| e.to == AlertState::Firing).unwrap();
        let evidence = firing.evidence.as_ref().unwrap();
        let h = evidence.window_histogram.as_ref().unwrap();
        assert!(h.count > 0);
        assert!(h.quantile(0.99).unwrap() > 1_000_000);
    }

    #[test]
    fn json_payloads_are_well_formed() {
        let registry = MetricsRegistry::new();
        let waiting = registry.histogram(WAITING_METRIC);
        registry.counter("broker.messages.received").add(5);
        let mut core = ObsCore::new(ObsConfig { slos: quick_specs(), ..ObsConfig::default() });
        for t in 1..=3u64 {
            waiting.record(500_000);
            registry.counter("broker.messages.received").add(10);
            core.tick(Duration::from_secs(t), &registry.snapshot(), None);
        }
        let slo = core.render_slo_json();
        assert!(slo.contains("\"objectives\":["));
        assert!(slo.contains("\"name\":\"w99\""));
        let alerts = core.render_alerts_json();
        assert!(alerts.contains("\"active\":["));
        assert!(alerts.contains("\"events\":["));
        let hist = core.render_history_json(
            WAITING_METRIC,
            Duration::from_secs(60),
            Reduce::Quantile(0.99),
        );
        assert!(hist.contains("\"points\":["));
        assert!(hist.contains("\"summary\":{"));
        let counter_hist = core.render_history_json(
            "broker.messages.received",
            Duration::from_secs(60),
            Reduce::Rate,
        );
        assert!(counter_hist.contains("\"total\":"));
    }

    #[test]
    fn ramp_raises_pending_before_firing_with_forecast_evidence() {
        let registry = MetricsRegistry::new();
        let waiting = registry.histogram(WAITING_METRIC);
        let service = registry.histogram(SERVICE_METRIC);
        let backlog = registry.histogram(BACKLOG_METRIC);
        let config = ObsConfig {
            history: HistoryConfig {
                fine_interval: Duration::from_secs(1),
                fine_slots: 64,
                coarse_factor: 4,
                coarse_slots: 32,
            },
            slos: vec![SloSpec::latency("w99", WAITING_METRIC, 0.99, 10_000_000)
                .windows(Duration::from_secs(8), Duration::from_secs(16))],
            policy: quick_policy(),
            forecast: ForecastConfig {
                trend_window: Duration::from_secs(20),
                horizon: Duration::from_secs(300),
                ..ForecastConfig::default()
            },
        };
        let mut core = ObsCore::new(config);
        let mut transitions = Vec::new();
        let mut t = 0u64;
        // Healthy waits, 1 ms service, arrival rate ramping linearly:
        // burn rates stay clean while the trend points at saturation.
        for step in 1..=20u64 {
            let n = 50 + 25 * step;
            for _ in 0..n {
                waiting.record(500_000);
                service.record(1_000_000);
                backlog.record((n as f64 * 0.0005).round() as u64);
            }
            t += 1;
            transitions.extend(core.tick(Duration::from_secs(t), &registry.snapshot(), None));
        }
        assert_eq!(core.status()[0].state, AlertState::Pending, "clean ramp must pend");
        let pending = transitions.iter().find(|e| e.to == AlertState::Pending).unwrap();
        let evidence = pending.evidence.as_ref().unwrap();
        let forecast = evidence.forecast.as_ref().expect("pending carries the forecast");
        assert_eq!(forecast.target, "w99-breach");
        assert!(forecast.eta > Duration::ZERO);
        assert!(core.render_forecast_json().contains("\"eta_breach\":{"));
        assert!(core.render_slo_json().contains("\"forecast\":{"));
        // The predicted breach arrives: violating samples drive the same
        // machine through Warning into Firing.
        for _ in 0..9 {
            for _ in 0..600 {
                waiting.record(50_000_000);
                service.record(1_000_000);
                backlog.record(30);
            }
            t += 1;
            transitions.extend(core.tick(Duration::from_secs(t), &registry.snapshot(), None));
        }
        assert_eq!(core.status()[0].state, AlertState::Firing);
        let pending_at = transitions.iter().position(|e| e.to == AlertState::Pending).unwrap();
        let firing_at = transitions.iter().position(|e| e.to == AlertState::Firing).unwrap();
        assert!(pending_at < firing_at, "forecast must precede the burn alert");
    }

    #[test]
    fn forecast_disabled_never_pends() {
        let registry = MetricsRegistry::new();
        let waiting = registry.histogram(WAITING_METRIC);
        let service = registry.histogram(SERVICE_METRIC);
        let config = ObsConfig {
            slos: quick_specs(),
            forecast: ForecastConfig { enabled: false, ..ForecastConfig::default() },
            ..ObsConfig::default()
        };
        let mut core = ObsCore::new(config);
        for t in 1..=20u64 {
            for _ in 0..(50 + 25 * t) {
                waiting.record(100_000);
                service.record(1_000_000);
            }
            core.tick(Duration::from_secs(t), &registry.snapshot(), None);
        }
        assert_eq!(core.status()[0].state, AlertState::Ok);
        assert!(core.latest_forecast().is_none());
        assert!(core.render_forecast_json().contains("\"enabled\":false"));
        assert!(core.forecast_for(WAITING_METRIC, SERVICE_METRIC, BACKLOG_METRIC).is_none());
    }

    #[test]
    fn runtime_thread_ticks_and_stops() {
        let registry = MetricsRegistry::new();
        let waiting = registry.histogram(WAITING_METRIC);
        waiting.record(1_000);
        let core = ObsCore::new(ObsConfig { slos: quick_specs(), ..ObsConfig::default() });
        let runtime = ObsRuntime::start(core, registry, None, Duration::from_millis(5));
        let shared = runtime.core();
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            if shared.lock().unwrap().history().samples() >= 3 {
                break;
            }
            assert!(Instant::now() < deadline, "runtime never ticked");
            thread::sleep(Duration::from_millis(5));
        }
        runtime.stop();
    }
}
