//! Alert state machine and notification sinks.
//!
//! Each objective owns one state machine:
//!
//! ```text
//!        fast ≥ thr                 fast ∧ slow ≥ thr
//!   Ok ────────────▶ Warning ───────────────────────▶ Firing
//!   ▲ ▲▼ forecast       │ fast < resolve·thr            │
//!   │ Pending           ▼                               │ fast ∧ slow <
//!   │ cooldown         Ok                               │ resolve·thr for
//!   │                                                   ▼ `resolve_after`
//!   └────────────────────────────────────────────── Resolved
//! ```
//!
//! Hysteresis: leaving Firing requires the burn to drop below
//! `resolve_ratio · threshold` (default 0.9×) and *stay* there for
//! `resolve_after`, so an alert flapping around the threshold does not
//! spam transitions. After resolving, a per-alert `cooldown` must elapse
//! before the machine returns to Ok and may fire again.
//!
//! The proactive [`AlertState::Pending`] state sits *before* the burn
//! windows can see anything: the saturation forecaster
//! (`crate::forecast`) projects the arrival-rate trend through the
//! analytic model and, when a breach ETA lands inside the configured
//! horizon with enough confidence, the machine leaves Ok for Pending —
//! carrying the forecast as [`ForecastEvidence`] — so operators get the
//! alert while the objective is still healthy. Pending escalates through
//! the normal Warning/Firing logic and falls back to Ok when the
//! forecast clears.
//!
//! Transitions are emitted as [`AlertEvent`]s to a pluggable
//! [`AlertSink`]; a firing event carries [`Evidence`]: the offending
//! window's histogram, the latest analytic model prediction, the ids
//! of tail-sampled trace chains from the incident window and, on
//! forecast-driven transitions, the forecast itself.

use crate::slo::WindowBurn;
use rjms_core::WaitingTimeReport;
use rjms_metrics::{HistogramSnapshot, JsonWriter};
use std::io::Write as IoWrite;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The alert lifecycle states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// Objective healthy.
    Ok,
    /// Objective still healthy, but the forecaster projects a breach
    /// inside the horizon: proactive heads-up, fires before any burn.
    Pending,
    /// Fast window burning, slow window still fine (onset or blip).
    Warning,
    /// Both windows burning: the objective is being violated.
    Firing,
    /// Recently stopped firing; in the post-incident cooldown.
    Resolved,
}

impl AlertState {
    /// Stable lowercase name used in JSON and log lines.
    pub fn name(self) -> &'static str {
        match self {
            AlertState::Ok => "ok",
            AlertState::Pending => "pending",
            AlertState::Warning => "warning",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

/// A breach forecast attached to proactive transitions: what the trend
/// projection says, frozen at the moment the machine left Ok.
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastEvidence {
    /// What is forecast to be breached: `"w99-breach"` or `"saturation"`.
    pub target: String,
    /// Projected time from the event until the breach.
    pub eta: Duration,
    /// Optimistic band edge (steeper plausible trend → earlier breach).
    pub eta_early: Duration,
    /// Pessimistic band edge; `None` when the flatter plausible trend
    /// never reaches the breach point.
    pub eta_late: Option<Duration>,
    /// Measured arrival rate (messages/s) at the event.
    pub lambda_now: f64,
    /// Fitted arrival-rate trend (messages/s per second).
    pub lambda_slope: f64,
    /// Forecast confidence tag (`"low"`, `"medium"`, `"high"`).
    pub confidence: String,
}

/// Supporting data attached to a firing alert.
#[derive(Debug, Clone, Default)]
pub struct Evidence {
    /// The offending fast window's histogram delta (nanoseconds).
    pub window_histogram: Option<HistogramSnapshot>,
    /// The analytic model's latest prediction at the measured load, when
    /// the monitor produced one.
    pub prediction: Option<WaitingTimeReport>,
    /// One-line summary of the latest model verdict.
    pub model_verdict: Option<String>,
    /// Trace ids of tail-sampled chains captured during the window.
    pub trace_ids: Vec<u64>,
    /// The breach forecast, populated on forecast-driven (Pending)
    /// transitions and on firings that had an active forecast.
    pub forecast: Option<ForecastEvidence>,
}

/// One state transition, as delivered to sinks.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    /// Objective name.
    pub name: String,
    /// State before the transition.
    pub from: AlertState,
    /// State after the transition.
    pub to: AlertState,
    /// Elapsed time (history epoch) at the transition.
    pub at: Duration,
    /// Fast-window burn at the transition.
    pub fast_burn: f64,
    /// Slow-window burn at the transition.
    pub slow_burn: f64,
    /// Evidence, populated on transitions into [`AlertState::Firing`]
    /// and [`AlertState::Pending`].
    pub evidence: Option<Evidence>,
}

impl AlertEvent {
    /// Renders the event as a single log line.
    pub fn render_line(&self) -> String {
        let mut line = format!(
            "[slo] {} {} -> {} at {:.1}s fast_burn={:.2} slow_burn={:.2}",
            self.name,
            self.from.name(),
            self.to.name(),
            self.at.as_secs_f64(),
            self.fast_burn,
            self.slow_burn,
        );
        if let Some(e) = &self.evidence {
            if let Some(h) = &e.window_histogram {
                let q99 = h.quantile(0.99).unwrap_or(0);
                line.push_str(&format!(" window_samples={} window_q99_ns={q99}", h.count));
            }
            if let Some(p) = &e.prediction {
                line.push_str(&format!(
                    " predicted_q99_s={:.6} predicted_rho={:.3}",
                    p.q99, p.utilization
                ));
            }
            if !e.trace_ids.is_empty() {
                line.push_str(&format!(" traces={}", e.trace_ids.len()));
            }
            if let Some(f) = &e.forecast {
                line.push_str(&format!(
                    " forecast={} eta_s={:.0} confidence={}",
                    f.target,
                    f.eta.as_secs_f64(),
                    f.confidence
                ));
            }
        }
        line
    }

    /// Renders the event as a self-contained JSON object (webhook payload
    /// and `/alerts` feed entry).
    pub fn render_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.string(&self.name);
        w.key("from");
        w.string(self.from.name());
        w.key("to");
        w.string(self.to.name());
        w.key("at_ms");
        w.uint(self.at.as_millis() as u64);
        w.key("fast_burn");
        w.float(self.fast_burn);
        w.key("slow_burn");
        w.float(self.slow_burn);
        match &self.evidence {
            None => {
                w.key("evidence");
                w.null();
            }
            Some(e) => {
                w.key("evidence");
                w.begin_object();
                match &e.window_histogram {
                    None => {
                        w.key("window");
                        w.null();
                    }
                    Some(h) => {
                        w.key("window");
                        w.begin_object();
                        w.key("count");
                        w.uint(h.count);
                        w.key("q50_ns");
                        w.uint(h.quantile(0.50).unwrap_or(0));
                        w.key("q99_ns");
                        w.uint(h.quantile(0.99).unwrap_or(0));
                        w.key("q9999_ns");
                        w.uint(h.quantile(0.9999).unwrap_or(0));
                        w.key("max_ns");
                        w.uint(h.max);
                        w.end_object();
                    }
                }
                match &e.prediction {
                    None => {
                        w.key("prediction");
                        w.null();
                    }
                    Some(p) => {
                        w.key("prediction");
                        w.begin_object();
                        w.key("utilization");
                        w.float(p.utilization);
                        w.key("mean_waiting_s");
                        w.float(p.mean_waiting_time);
                        w.key("q99_s");
                        w.float(p.q99);
                        w.key("q9999_s");
                        w.float(p.q9999);
                        w.end_object();
                    }
                }
                w.key("model_verdict");
                match &e.model_verdict {
                    Some(v) => w.string(v),
                    None => w.null(),
                }
                w.key("trace_ids");
                w.begin_array();
                for id in &e.trace_ids {
                    w.uint(*id);
                }
                w.end_array();
                match &e.forecast {
                    None => {
                        w.key("forecast");
                        w.null();
                    }
                    Some(f) => {
                        w.key("forecast");
                        w.begin_object();
                        w.key("target");
                        w.string(&f.target);
                        w.key("eta_ms");
                        w.uint(f.eta.as_millis() as u64);
                        w.key("eta_early_ms");
                        w.uint(f.eta_early.as_millis() as u64);
                        w.key("eta_late_ms");
                        match f.eta_late {
                            Some(late) => w.uint(late.as_millis() as u64),
                            None => w.null(),
                        }
                        w.key("lambda_now");
                        w.float(f.lambda_now);
                        w.key("lambda_slope_per_s");
                        w.float(f.lambda_slope);
                        w.key("confidence");
                        w.string(&f.confidence);
                        w.end_object();
                    }
                }
                w.end_object();
            }
        }
        w.end_object();
        w.finish()
    }
}

/// Hysteresis and pacing knobs shared by all machines in an engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlertPolicy {
    /// Burn must stay below `resolve_ratio × threshold` for
    /// `resolve_after` before a firing alert resolves.
    pub resolve_ratio: f64,
    /// How long the burn must stay low to resolve.
    pub resolve_after: Duration,
    /// Dwell time in Resolved before returning to Ok.
    pub cooldown: Duration,
}

impl Default for AlertPolicy {
    fn default() -> Self {
        Self {
            resolve_ratio: 0.9,
            resolve_after: Duration::from_secs(60),
            cooldown: Duration::from_secs(120),
        }
    }
}

/// The per-objective state machine.
#[derive(Debug)]
pub struct AlertMachine {
    name: String,
    threshold: f64,
    policy: AlertPolicy,
    state: AlertState,
    /// When the current state was entered.
    since: Duration,
    /// Start of the contiguous below-resolve-threshold stretch while
    /// firing, if one is in progress.
    quiet_since: Option<Duration>,
}

impl AlertMachine {
    /// Creates a machine in [`AlertState::Ok`].
    pub fn new(name: &str, threshold: f64, policy: AlertPolicy) -> Self {
        Self {
            name: name.to_string(),
            threshold,
            policy,
            state: AlertState::Ok,
            since: Duration::ZERO,
            quiet_since: None,
        }
    }

    /// The current state.
    pub fn state(&self) -> AlertState {
        self.state
    }

    /// When the current state was entered (history-epoch elapsed time).
    pub fn since(&self) -> Duration {
        self.since
    }

    /// Feeds one evaluation; returns the transition event if the state
    /// changed. `evidence` is only consulted when the machine fires.
    pub fn step(
        &mut self,
        now: Duration,
        fast: WindowBurn,
        slow: WindowBurn,
        evidence: impl FnOnce() -> Evidence,
    ) -> Option<AlertEvent> {
        self.step_with_forecast(now, fast, slow, false, evidence)
    }

    /// [`AlertMachine::step`] plus the forecaster's verdict: when
    /// `breach_forecast` is true and the burn windows are still clean, the
    /// machine raises the proactive [`AlertState::Pending`] instead of
    /// sitting in Ok. Evidence is consulted on transitions into Firing
    /// *and* Pending (a pending event should carry the forecast that
    /// caused it).
    pub fn step_with_forecast(
        &mut self,
        now: Duration,
        fast: WindowBurn,
        slow: WindowBurn,
        breach_forecast: bool,
        evidence: impl FnOnce() -> Evidence,
    ) -> Option<AlertEvent> {
        let fast_hot = fast.burn >= self.threshold;
        let slow_hot = slow.burn >= self.threshold;
        let quiet_level = self.policy.resolve_ratio * self.threshold;
        let quiet = fast.burn < quiet_level && slow.burn < quiet_level;
        let calm = if breach_forecast { AlertState::Pending } else { AlertState::Ok };
        let next = match self.state {
            AlertState::Ok | AlertState::Pending => {
                if fast_hot && slow_hot {
                    AlertState::Firing
                } else if fast_hot {
                    AlertState::Warning
                } else {
                    calm
                }
            }
            AlertState::Warning => {
                if fast_hot && slow_hot {
                    AlertState::Firing
                } else if fast.burn < quiet_level {
                    calm
                } else {
                    AlertState::Warning
                }
            }
            AlertState::Firing => {
                if quiet {
                    let start = *self.quiet_since.get_or_insert(now);
                    if now.saturating_sub(start) >= self.policy.resolve_after {
                        AlertState::Resolved
                    } else {
                        AlertState::Firing
                    }
                } else {
                    self.quiet_since = None;
                    AlertState::Firing
                }
            }
            AlertState::Resolved => {
                if fast_hot && slow_hot {
                    // Re-fire immediately: the incident came back.
                    AlertState::Firing
                } else if now.saturating_sub(self.since) >= self.policy.cooldown {
                    AlertState::Ok
                } else {
                    AlertState::Resolved
                }
            }
        };
        if next == self.state {
            return None;
        }
        let from = self.state;
        self.state = next;
        self.since = now;
        self.quiet_since = None;
        Some(AlertEvent {
            name: self.name.clone(),
            from,
            to: next,
            at: now,
            fast_burn: fast.burn,
            slow_burn: slow.burn,
            evidence: matches!(next, AlertState::Firing | AlertState::Pending).then(evidence),
        })
    }
}

/// Destination for alert transitions.
pub trait AlertSink: Send {
    /// Delivers one transition. Implementations must not block the
    /// evaluation loop for long; failures are swallowed (alerting must
    /// never take the broker down).
    fn emit(&mut self, event: &AlertEvent);
}

/// Writes one line per transition to stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl AlertSink for StderrSink {
    fn emit(&mut self, event: &AlertEvent) {
        eprintln!("{}", event.render_line());
    }
}

/// POSTs the JSON payload to a webhook-style HTTP endpoint over a fresh
/// blocking connection per event (fire-and-forget; send errors are
/// dropped).
#[derive(Debug, Clone)]
pub struct WebhookSink {
    /// `host:port` to connect to.
    pub addr: String,
    /// Request path, e.g. `/hooks/slo`.
    pub path: String,
}

impl AlertSink for WebhookSink {
    fn emit(&mut self, event: &AlertEvent) {
        let body = event.render_json();
        let request = format!(
            "POST {} HTTP/1.1\r\nHost: {}\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.path,
            self.addr,
            body.len(),
            body
        );
        let attempt = (|| -> std::io::Result<()> {
            let mut stream = std::net::TcpStream::connect(&self.addr)?;
            stream.set_write_timeout(Some(Duration::from_secs(2)))?;
            stream.write_all(request.as_bytes())
        })();
        let _ = attempt;
    }
}

/// Retains events in memory — the `/alerts` feed and the test harness.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<AlertEvent>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything emitted so far.
    pub fn events(&self) -> Vec<AlertEvent> {
        self.events.lock().expect("sink lock").clone()
    }
}

impl AlertSink for MemorySink {
    fn emit(&mut self, event: &AlertEvent) {
        self.events.lock().expect("sink lock").push(event.clone());
    }
}

/// Tracks the worst state seen, for CI gating via process exit code
/// (`0` ok, `1` warning or forecast-pending seen, `2` firing seen).
#[derive(Debug, Clone, Default)]
pub struct ExitCodeSink {
    worst: Arc<Mutex<u8>>,
}

impl ExitCodeSink {
    /// Creates a sink with a clean slate.
    pub fn new() -> Self {
        Self::default()
    }

    /// The exit code implied by the worst transition seen.
    pub fn code(&self) -> u8 {
        *self.worst.lock().expect("sink lock")
    }
}

impl AlertSink for ExitCodeSink {
    fn emit(&mut self, event: &AlertEvent) {
        let severity = match event.to {
            AlertState::Firing => 2,
            AlertState::Warning | AlertState::Pending => 1,
            AlertState::Ok | AlertState::Resolved => 0,
        };
        let mut worst = self.worst.lock().expect("sink lock");
        *worst = (*worst).max(severity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn burn(b: f64) -> WindowBurn {
        WindowBurn { burn: b, samples: 100, bad: 0 }
    }

    fn policy() -> AlertPolicy {
        AlertPolicy {
            resolve_ratio: 0.9,
            resolve_after: Duration::from_secs(10),
            cooldown: Duration::from_secs(20),
        }
    }

    fn step_at(m: &mut AlertMachine, t: u64, fast: f64, slow: f64) -> Option<AlertEvent> {
        m.step(Duration::from_secs(t), burn(fast), burn(slow), Evidence::default)
    }

    #[test]
    fn full_lifecycle_ok_warning_firing_resolved_ok() {
        let mut m = AlertMachine::new("w99", 2.0, policy());
        assert!(step_at(&mut m, 1, 0.1, 0.1).is_none());
        // Fast hot only → Warning.
        let e = step_at(&mut m, 2, 3.0, 0.5).unwrap();
        assert_eq!((e.from, e.to), (AlertState::Ok, AlertState::Warning));
        // Both hot → Firing, with evidence attached.
        let e = step_at(&mut m, 3, 3.0, 2.5).unwrap();
        assert_eq!(e.to, AlertState::Firing);
        assert!(e.evidence.is_some());
        // Burn drops; must stay quiet for resolve_after (10 s).
        assert!(step_at(&mut m, 4, 0.2, 0.2).is_none());
        assert!(step_at(&mut m, 9, 0.2, 0.2).is_none());
        let e = step_at(&mut m, 14, 0.2, 0.2).unwrap();
        assert_eq!(e.to, AlertState::Resolved);
        assert!(e.evidence.is_none());
        // Cooldown (20 s) before returning to Ok.
        assert!(step_at(&mut m, 20, 0.1, 0.1).is_none());
        let e = step_at(&mut m, 35, 0.1, 0.1).unwrap();
        assert_eq!(e.to, AlertState::Ok);
    }

    #[test]
    fn flapping_burn_resets_the_resolve_clock() {
        let mut m = AlertMachine::new("w99", 2.0, policy());
        step_at(&mut m, 1, 3.0, 3.0).unwrap();
        assert_eq!(m.state(), AlertState::Firing);
        assert!(step_at(&mut m, 5, 0.2, 0.2).is_none());
        // Burn spikes again: quiet stretch restarts.
        assert!(step_at(&mut m, 8, 3.0, 3.0).is_none());
        assert!(step_at(&mut m, 12, 0.2, 0.2).is_none());
        // 10 s after the *second* quiet start, not the first.
        assert!(step_at(&mut m, 18, 0.2, 0.2).is_none());
        let e = step_at(&mut m, 22, 0.2, 0.2).unwrap();
        assert_eq!(e.to, AlertState::Resolved);
    }

    #[test]
    fn hysteresis_blocks_resolution_near_threshold() {
        let mut m = AlertMachine::new("w99", 2.0, policy());
        step_at(&mut m, 1, 3.0, 3.0).unwrap();
        // 1.85 is below threshold 2.0 but above 0.9×2.0 = 1.8: not quiet.
        for t in 2..40 {
            assert!(step_at(&mut m, t, 1.85, 1.85).is_none());
        }
        assert_eq!(m.state(), AlertState::Firing);
    }

    #[test]
    fn warning_needs_only_fast_window_and_clears() {
        let mut m = AlertMachine::new("w99", 2.0, policy());
        let e = step_at(&mut m, 1, 2.5, 0.0).unwrap();
        assert_eq!(e.to, AlertState::Warning);
        let e = step_at(&mut m, 2, 0.1, 0.0).unwrap();
        assert_eq!(e.to, AlertState::Ok);
    }

    #[test]
    fn refire_from_resolved_skips_cooldown() {
        let mut m = AlertMachine::new("w99", 2.0, policy());
        step_at(&mut m, 1, 3.0, 3.0).unwrap();
        for t in 2..=12 {
            step_at(&mut m, t, 0.1, 0.1);
        }
        assert_eq!(m.state(), AlertState::Resolved);
        let e = step_at(&mut m, 13, 3.0, 3.0).unwrap();
        assert_eq!(e.to, AlertState::Firing);
    }

    #[test]
    fn exit_code_sink_tracks_worst() {
        let mut sink = ExitCodeSink::new();
        let mut m = AlertMachine::new("w99", 2.0, policy());
        let e = step_at(&mut m, 1, 2.5, 0.0).unwrap();
        sink.emit(&e);
        assert_eq!(sink.code(), 1);
        let e = step_at(&mut m, 2, 3.0, 3.0).unwrap();
        sink.emit(&e);
        assert_eq!(sink.code(), 2);
    }

    #[test]
    fn event_json_is_well_formed() {
        let mut m = AlertMachine::new("w99", 2.0, policy());
        let e = m
            .step(Duration::from_secs(3), burn(3.0), burn(2.5), || Evidence {
                window_histogram: None,
                prediction: None,
                model_verdict: Some("drift: Q99[W] off by 2.1x".into()),
                trace_ids: vec![7, 9],
                forecast: None,
            })
            .unwrap();
        let json = e.render_json();
        assert!(json.contains("\"to\":\"firing\""));
        assert!(json.contains("\"trace_ids\":[7,9]"));
        assert!(json.contains("\"window\":null"));
        assert!(json.contains("\"forecast\":null"));
    }

    fn forecast_evidence() -> Evidence {
        Evidence {
            forecast: Some(ForecastEvidence {
                target: "w99-breach".into(),
                eta: Duration::from_secs(45),
                eta_early: Duration::from_secs(30),
                eta_late: None,
                lambda_now: 800.0,
                lambda_slope: 12.5,
                confidence: "high".into(),
            }),
            ..Evidence::default()
        }
    }

    #[test]
    fn forecast_raises_pending_before_any_burn_and_clears() {
        let mut m = AlertMachine::new("w99", 2.0, policy());
        // Clean burns + breach forecast → Pending, with the forecast as
        // evidence.
        let e = m
            .step_with_forecast(
                Duration::from_secs(1),
                burn(0.1),
                burn(0.1),
                true,
                forecast_evidence,
            )
            .unwrap();
        assert_eq!((e.from, e.to), (AlertState::Ok, AlertState::Pending));
        let f = e.evidence.expect("pending carries evidence").forecast.expect("forecast");
        assert_eq!(f.confidence, "high");
        // Forecast persists → no re-emission.
        assert!(m
            .step_with_forecast(
                Duration::from_secs(2),
                burn(0.1),
                burn(0.1),
                true,
                forecast_evidence
            )
            .is_none());
        // Forecast clears → back to Ok.
        let e = m
            .step_with_forecast(
                Duration::from_secs(3),
                burn(0.1),
                burn(0.1),
                false,
                forecast_evidence,
            )
            .unwrap();
        assert_eq!((e.from, e.to), (AlertState::Pending, AlertState::Ok));
    }

    #[test]
    fn pending_escalates_through_warning_and_firing() {
        let mut m = AlertMachine::new("w99", 2.0, policy());
        m.step_with_forecast(Duration::from_secs(1), burn(0.1), burn(0.1), true, forecast_evidence)
            .unwrap();
        let e = m
            .step_with_forecast(
                Duration::from_secs(2),
                burn(2.5),
                burn(0.5),
                true,
                forecast_evidence,
            )
            .unwrap();
        assert_eq!((e.from, e.to), (AlertState::Pending, AlertState::Warning));
        let e = m
            .step_with_forecast(
                Duration::from_secs(3),
                burn(3.0),
                burn(2.5),
                true,
                forecast_evidence,
            )
            .unwrap();
        assert_eq!(e.to, AlertState::Firing);
        // A firing that had an active forecast carries it as evidence.
        assert!(e.evidence.unwrap().forecast.is_some());
    }

    #[test]
    fn warning_deescalates_to_pending_while_forecast_holds() {
        let mut m = AlertMachine::new("w99", 2.0, policy());
        m.step_with_forecast(
            Duration::from_secs(1),
            burn(2.5),
            burn(0.1),
            false,
            Evidence::default,
        )
        .unwrap();
        assert_eq!(m.state(), AlertState::Warning);
        let e = m
            .step_with_forecast(
                Duration::from_secs(2),
                burn(0.1),
                burn(0.1),
                true,
                forecast_evidence,
            )
            .unwrap();
        assert_eq!((e.from, e.to), (AlertState::Warning, AlertState::Pending));
    }

    #[test]
    fn exit_code_sink_counts_pending_as_warning_severity() {
        let mut sink = ExitCodeSink::new();
        let mut m = AlertMachine::new("w99", 2.0, policy());
        let e = m
            .step_with_forecast(
                Duration::from_secs(1),
                burn(0.1),
                burn(0.1),
                true,
                forecast_evidence,
            )
            .unwrap();
        sink.emit(&e);
        assert_eq!(sink.code(), 1);
    }

    #[test]
    fn pending_event_json_carries_the_forecast() {
        let mut m = AlertMachine::new("w99", 2.0, policy());
        let e = m
            .step_with_forecast(
                Duration::from_secs(1),
                burn(0.1),
                burn(0.1),
                true,
                forecast_evidence,
            )
            .unwrap();
        let json = e.render_json();
        assert!(json.contains("\"to\":\"pending\""), "{json}");
        assert!(json.contains("\"target\":\"w99-breach\""), "{json}");
        assert!(json.contains("\"eta_ms\":45000"), "{json}");
        assert!(json.contains("\"eta_late_ms\":null"), "{json}");
        assert!(json.contains("\"confidence\":\"high\""), "{json}");
    }
}
