//! Loom models for the flight recorder's seqlock ring (DESIGN.md §3.14).
//!
//! Built only under `RUSTFLAGS="--cfg loom"`; the CI `loom` job runs
//! `cargo test --release -p rjms-trace --test loom` with that flag.
//! Under `cfg(loom)` the ring's minimum capacity drops to 2 slots so the
//! wrap-around/reclaim interleavings stay exhaustively explorable.
//!
//! Every event in these models is self-describing — all five words carry
//! the trace id — so a torn read (a copy mixing two writers' words) is
//! detectable from the event itself, exactly like the std stress test in
//! `src/recorder.rs` but with the explorer guaranteeing coverage of the
//! adversarial interleavings instead of hoping the OS scheduler finds
//! them.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use rjms_trace::{FlightRecorder, SpanEvent, Stage};

/// An event whose five words all encode `id`, so any torn mixture of two
/// writers' stores violates the equalities below.
fn ev(id: u64) -> SpanEvent {
    SpanEvent { trace_id: id, stage: Stage::Filter, start_ticks: id, duration_ns: id, aux: id }
}

fn assert_untorn(e: &SpanEvent) {
    assert_eq!(e.trace_id, e.aux, "torn event escaped the seqlock");
    assert_eq!(e.trace_id, e.start_ticks, "torn event escaped the seqlock");
    assert_eq!(e.trace_id, e.duration_ns, "torn event escaped the seqlock");
}

/// Two concurrent writers, capacity 2: no claim is lost and both events
/// are present and untorn once the writers join.
#[test]
fn concurrent_writers_lose_no_slots() {
    loom::model(|| {
        let r = Arc::new(FlightRecorder::new(2));
        let a = {
            let r = Arc::clone(&r);
            thread::spawn(move || r.record(ev(1)))
        };
        r.record(ev(2));
        a.join().unwrap();

        let snap = r.snapshot();
        assert_eq!(snap.recorded, 2);
        assert_eq!(snap.events.len(), 2, "a completed write is missing from the ring");
        let mut ids: Vec<u64> = snap.events.iter().map(|e| e.trace_id).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2]);
        for e in &snap.events {
            assert_untorn(e);
        }
    });
}

/// A reader racing a writer never observes a torn event: it sees the
/// slot either before the write (empty or the old value) or after, never
/// a mixture — the seqlock's whole contract.
#[test]
fn racing_reader_never_sees_a_torn_event() {
    loom::model(|| {
        let r = Arc::new(FlightRecorder::new(2));
        let w = {
            let r = Arc::clone(&r);
            thread::spawn(move || r.record(ev(7)))
        };
        let racing = r.snapshot();
        for e in &racing.events {
            assert_untorn(e);
            assert_eq!(e.trace_id, 7, "the only writer is id 7");
        }
        w.join().unwrap();
        let settled = r.snapshot();
        assert_eq!(settled.events.len(), 1);
        assert_untorn(&settled.events[0]);
    });
}

/// Wrap-around reclaim: a second writer laps the ring and reclaims the
/// first writer's slot while that write may still be in flight. The
/// documented failure mode is a *dropped* event — a reader may miss the
/// stalled write — but never a torn one.
#[test]
fn slot_reclaim_drops_but_never_tears() {
    loom::model(|| {
        let r = Arc::new(FlightRecorder::new(2));
        let stalled = {
            let r = Arc::clone(&r);
            thread::spawn(move || r.record(ev(1)))
        };
        // Claims 2 and 3 fill the other slot and then reclaim whichever
        // physical slot writer `stalled` claimed.
        r.record(ev(2));
        r.record(ev(3));
        let racing = r.snapshot();
        for e in &racing.events {
            assert_untorn(e);
        }
        stalled.join().unwrap();

        let snap = r.snapshot();
        assert_eq!(snap.recorded, 3);
        for e in &snap.events {
            assert_untorn(e);
            assert!([1, 2, 3].contains(&e.trace_id), "event {} was never recorded", e.trace_id);
        }
        // Capacity 2: at most two survivors; the reclaim may additionally
        // have dropped the stalled writer's event, never corrupted it.
        assert!(snap.events.len() <= 2);
    });
}
