//! # rjms-trace
//!
//! A per-message **flight recorder** for the rjms broker: a fixed-capacity,
//! constant-memory, lock-free ring buffer of [`SpanEvent`]s, each stamping
//! one stage of a message's Eq. 1 pipeline (receive → journal append →
//! filter scan → fan-out → wire flush) with the instrumentation clock.
//!
//! The paper this workspace reproduces (Menth & Henjes, ICDCS 2006) reports
//! waiting-time *quantiles* — 99% and 99.99% — and tail behaviour is exactly
//! where aggregate histograms mislead. This crate supplies the per-message
//! evidence: the broker's dispatcher stages span events locally while a
//! message is in flight and commits the whole chain only once the sojourn
//! time is known, keeping **tail-sampled** chains (sojourn above a live
//! quantile threshold) plus a small uniform sample for baseline. Readers
//! ([`FlightRecorder::snapshot`]) reconstruct [`TraceChain`]s by grouping
//! events on their trace id.
//!
//! The recorder is deliberately broker-agnostic: it stores opaque tick
//! timestamps (the caller passes the tick→nanosecond scale at render time)
//! and knows nothing about topics or subscribers. Writers never block,
//! never allocate, and never wait for readers; a full ring overwrites the
//! oldest events, so memory stays constant no matter how long the broker
//! runs.
//!
//! ## Quickstart
//!
//! ```
//! use rjms_trace::{FlightRecorder, SpanEvent, Stage, group_chains};
//!
//! let recorder = FlightRecorder::new(1024);
//! for stage in [Stage::Receive, Stage::Journal, Stage::Filter, Stage::Fanout] {
//!     recorder.record(SpanEvent {
//!         trace_id: 7,
//!         stage,
//!         start_ticks: 1000,
//!         duration_ns: 250,
//!         aux: 0,
//!     });
//! }
//! let snap = recorder.snapshot();
//! let chains = group_chains(snap.events);
//! assert_eq!(chains.len(), 1);
//! assert!(chains[0].is_complete());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chain;
pub mod recorder;

pub use chain::{group_chains, render_chains_json, TraceChain};
pub use recorder::{FlightRecorder, RecorderSnapshot, SpanEvent, Stage};
