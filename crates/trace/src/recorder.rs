//! The lock-free span-event ring and the sampled-trace-id set.
//!
//! Writers claim a slot with one `fetch_add` and publish the event under a
//! per-slot sequence counter (a seqlock): a compare-exchange advances the
//! sequence to the odd value `2·claim + 1` while the slot is being written
//! and a release store sets `2·claim + 2` once complete, so a reader can
//! copy the five event words and validate the copy by re-reading the
//! sequence. Torn copies are discarded, never trusted.
//!
//! The compare-exchange claim makes slot write sections mutually
//! exclusive: a writer that stalls mid-write for a full ring lap keeps
//! ownership of its slot, and a lapping writer whose claim fails *drops*
//! its event instead of interleaving word stores with the stalled one.
//! (An earlier revision marked the slot with a plain store; the loom
//! model `slot_reclaim_drops_but_never_tears` in `tests/loom.rs` found
//! the resulting lap race, where mixed words from two writers survive the
//! sequence validation.) With capacities in the thousands the drop window
//! requires a writer to stall for a full lap, which is immaterial for a
//! diagnostic recorder — and the failure mode is a dropped event, never a
//! corrupt one.

// Atomics come through the rjms-conc facade so the loom models in
// `tests/loom.rs` exercise exactly this seqlock code (DESIGN.md §3.14).
use rjms_conc::sync::atomic::{fence, AtomicU64, Ordering};
use std::fmt;

/// Smallest ring the recorder will allocate.
///
/// Under `cfg(loom)` the floor drops to 2 slots: every atomic access is a
/// model scheduling point, and the wrap-around/reclaim interleavings only
/// stay exhaustively explorable with a tiny ring. The claim/publish/read
/// protocol is identical at any capacity.
#[cfg(not(loom))]
const MIN_CAPACITY: usize = 16;
#[cfg(loom)]
const MIN_CAPACITY: usize = 2;

/// One stage of a message's dispatch pipeline (the Eq. 1 terms plus the
/// wire flush on the way out).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Publish received: the dispatcher popped the message (`t_rcv`).
    Receive,
    /// Write-ahead journal append (`t_store`); zero-duration when the
    /// broker runs without persistence, so chains always carry the stage.
    Journal,
    /// Brute-force filter scan over the topic's subscriptions
    /// (`n_fltr · t_fltr`).
    Filter,
    /// Per-subscriber enqueue / copy fan-out (`R · t_tx`).
    Fanout,
    /// A delivery frame for this message was flushed to a client socket
    /// (recorded by the wire layer, once per traced delivery).
    WireFlush,
}

impl Stage {
    /// The broker-side stages every committed chain must carry, in
    /// pipeline order. [`Stage::WireFlush`] is emitted by the wire layer
    /// and only exists for networked deliveries.
    pub const BROKER_STAGES: [Stage; 4] =
        [Stage::Receive, Stage::Journal, Stage::Filter, Stage::Fanout];

    /// Stable lowercase name used in the JSON exposition.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Receive => "receive",
            Stage::Journal => "journal",
            Stage::Filter => "filter",
            Stage::Fanout => "fanout",
            Stage::WireFlush => "wire_flush",
        }
    }

    fn to_u64(self) -> u64 {
        match self {
            Stage::Receive => 0,
            Stage::Journal => 1,
            Stage::Filter => 2,
            Stage::Fanout => 3,
            Stage::WireFlush => 4,
        }
    }

    fn from_u64(raw: u64) -> Option<Stage> {
        Some(match raw {
            0 => Stage::Receive,
            1 => Stage::Journal,
            2 => Stage::Filter,
            3 => Stage::Fanout,
            4 => Stage::WireFlush,
            _ => return None,
        })
    }
}

/// One recorded pipeline stage of one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// The message's trace id (nonzero; assigned at the publisher).
    pub trace_id: u64,
    /// Which pipeline stage this event covers.
    pub stage: Stage,
    /// Stage start in instrumentation-clock ticks (`rjms_metrics::clock`
    /// domain); monotone within a chain by construction.
    pub start_ticks: u64,
    /// Stage duration in nanoseconds.
    pub duration_ns: u64,
    /// Stage-specific payload: waiting time (receive), journal offset
    /// (journal), filter evaluations (filter), copies (fan-out),
    /// subscription id (wire flush).
    pub aux: u64,
}

/// Words per ring slot (the five `SpanEvent` fields).
const WORDS: usize = 5;

/// Probe window of the open-addressed sampled-id set.
const PROBE: usize = 16;

struct Slot {
    /// 0 = never written; `2·claim + 1` = write in progress;
    /// `2·claim + 2` = complete.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn empty() -> Slot {
        Slot { seq: AtomicU64::new(0), words: [const { AtomicU64::new(0) }; WORDS] }
    }
}

/// Approximate lock-free set of sampled trace ids, sized with the ring.
///
/// The wire layer consults it long after the dispatcher's sampling
/// decision, from its own writer threads, so membership must be readable
/// without locks. Collisions beyond the probe window overwrite the oldest
/// candidate: a false negative costs one wire-flush event on one chain,
/// never correctness.
struct SampledSet {
    slots: Box<[AtomicU64]>,
    mask: usize,
}

impl SampledSet {
    fn new(capacity: usize) -> SampledSet {
        let size = capacity.next_power_of_two().max(1024);
        SampledSet {
            slots: (0..size).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into_boxed_slice(),
            mask: size - 1,
        }
    }

    fn insert(&self, id: u64) {
        if id == 0 {
            return;
        }
        let h = mix(id) as usize & self.mask;
        for i in 0..PROBE {
            let slot = &self.slots[(h + i) & self.mask];
            let cur = slot.load(Ordering::Relaxed);
            if cur == id {
                return;
            }
            if cur == 0
                && slot.compare_exchange(0, id, Ordering::Relaxed, Ordering::Relaxed).is_ok()
            {
                return;
            }
        }
        // Probe window full: evict the home slot (bounded memory wins).
        // ORD: Relaxed — the sampled set publishes nothing through this
        // store; membership is a standalone heuristic and a racy miss
        // only costs one wire-flush event (not part of the seqlock).
        self.slots[h].store(id, Ordering::Relaxed);
    }

    fn contains(&self, id: u64) -> bool {
        if id == 0 {
            return false;
        }
        let h = mix(id) as usize & self.mask;
        (0..PROBE).any(|i| self.slots[(h + i) & self.mask].load(Ordering::Relaxed) == id)
    }
}

/// SplitMix64 finalizer: spreads sequential trace ids across the table.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fixed-capacity, constant-memory, lock-free ring of [`SpanEvent`]s.
///
/// Multiple threads may [`record`](FlightRecorder::record) concurrently
/// (the dispatcher commits broker-stage chains; wire writer threads append
/// flush events). [`snapshot`](FlightRecorder::snapshot) can run at any
/// time from any thread and returns only internally consistent events, in
/// record order.
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    mask: usize,
    /// Total events ever claimed; the next claim index.
    head: AtomicU64,
    sampled: SampledSet,
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.head.load(Ordering::Relaxed))
            .finish()
    }
}

impl FlightRecorder {
    /// Creates a recorder holding `capacity` events (rounded up to a power
    /// of two, minimum 16). Memory use is fixed at construction.
    pub fn new(capacity: usize) -> FlightRecorder {
        let size = capacity.next_power_of_two().max(MIN_CAPACITY);
        FlightRecorder {
            slots: (0..size).map(|_| Slot::empty()).collect::<Vec<_>>().into_boxed_slice(),
            mask: size - 1,
            head: AtomicU64::new(0),
            sampled: SampledSet::new(size),
        }
    }

    /// The ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events recorded since construction (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Appends one event, overwriting the oldest when full. Lock-free and
    /// allocation-free; safe from any thread.
    pub fn record(&self, event: SpanEvent) {
        // ORD: Relaxed is enough for the claim — fetch_add is an atomic
        // RMW, so every writer still gets a unique claim index; nothing
        // is published through `head` itself (the per-slot seqlock below
        // carries all the publish edges).
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[claim as usize & self.mask];
        // Claim the slot's write section. The sequence may only advance
        // from its previous even (complete) value to this writer's odd
        // (in-progress) value in one atomic step; if the slot is still
        // owned by a writer that stalled for a full ring lap (odd), or a
        // newer lapping claim already moved the sequence past ours, this
        // event is dropped rather than interleaving two writers' word
        // stores in one slot. `recorded` still counts the claim, so the
        // snapshot reports the gap.
        // ORD: Relaxed load + CAS — mutual exclusion comes from the
        // atomicity of compare_exchange (one writer per even value); the
        // publish edges are the fence below and the final Release store.
        let prev = slot.seq.load(Ordering::Relaxed);
        if prev % 2 == 1
            || prev > 2 * claim
            || slot
                .seq
                .compare_exchange(prev, 2 * claim + 1, Ordering::Relaxed, Ordering::Relaxed)
                .is_err()
        {
            return;
        }
        // ORD: Release fence — pairs with the reader's Acquire fence so
        // the odd seq value is visible before any partially-written word.
        fence(Ordering::Release);
        // The fence above and the Release publish below carry all the
        // ordering edges; a reader only trusts these words after
        // re-reading an unchanged even sequence.
        // ORD: Relaxed word stores inside the seqlock write window.
        slot.words[0].store(event.trace_id, Ordering::Relaxed);
        slot.words[1].store(event.stage.to_u64(), Ordering::Relaxed);
        slot.words[2].store(event.start_ticks, Ordering::Relaxed);
        // ORD: (same seqlock write window as the stores above.)
        slot.words[3].store(event.duration_ns, Ordering::Relaxed);
        slot.words[4].store(event.aux, Ordering::Relaxed);
        // ORD: Release publish of the even (complete) sequence — pairs
        // with the reader's Acquire load of `seq`; observing this value
        // guarantees all five word stores are visible.
        slot.seq.store(2 * claim + 2, Ordering::Release);
    }

    /// Marks a trace id as sampled so the wire layer records flush events
    /// for its deliveries.
    pub fn mark_sampled(&self, trace_id: u64) {
        self.sampled.insert(trace_id);
    }

    /// Whether a trace id was marked sampled. May rarely report a stale
    /// `false` under heavy churn (the set is approximate, see module docs).
    pub fn is_sampled(&self, trace_id: u64) -> bool {
        self.sampled.contains(trace_id)
    }

    /// Copies every consistent event out of the ring, in record order.
    pub fn snapshot(&self) -> RecorderSnapshot {
        let mut tagged: Vec<(u64, SpanEvent)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            // Bounded retries: a slot rewritten mid-copy is retried a few
            // times, then skipped (it will appear in the next snapshot).
            for _ in 0..4 {
                // ORD: Acquire pairs with the writer's Release publish —
                // an even value here means the slot's words are visible.
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 == 0 || s1 % 2 == 1 {
                    break;
                }
                let words = [
                    slot.words[0].load(Ordering::Relaxed),
                    slot.words[1].load(Ordering::Relaxed),
                    slot.words[2].load(Ordering::Relaxed),
                    slot.words[3].load(Ordering::Relaxed),
                    slot.words[4].load(Ordering::Relaxed),
                ];
                // Orders the word loads above before the seq re-read
                // below, so an unchanged sequence validates the copy.
                // ORD: Acquire fence pairing the writer's Release fence;
                // the validated re-read itself can then be Relaxed.
                fence(Ordering::Acquire);
                let s2 = slot.seq.load(Ordering::Relaxed);
                if s1 != s2 {
                    continue;
                }
                let claim = s2 / 2 - 1;
                if let Some(stage) = Stage::from_u64(words[1]) {
                    tagged.push((
                        claim,
                        SpanEvent {
                            trace_id: words[0],
                            stage,
                            start_ticks: words[2],
                            duration_ns: words[3],
                            aux: words[4],
                        },
                    ));
                }
                break;
            }
        }
        tagged.sort_unstable_by_key(|(claim, _)| *claim);
        RecorderSnapshot {
            events: tagged.into_iter().map(|(_, e)| e).collect(),
            recorded: self.recorded(),
            capacity: self.capacity(),
        }
    }
}

/// A point-in-time copy of the ring contents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecorderSnapshot {
    /// Consistent events in record order (oldest first).
    pub events: Vec<SpanEvent>,
    /// Total events ever recorded; `recorded - events.len()` were evicted
    /// (or skipped as in-flight during the copy).
    pub recorded: u64,
    /// Ring capacity in events.
    pub capacity: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn event(trace_id: u64, stage: Stage, start: u64) -> SpanEvent {
        SpanEvent { trace_id, stage, start_ticks: start, duration_ns: 10, aux: trace_id }
    }

    #[test]
    fn records_and_snapshots_in_order() {
        let r = FlightRecorder::new(64);
        for i in 1..=5u64 {
            r.record(event(i, Stage::Receive, 100 * i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.recorded, 5);
        assert_eq!(snap.events.len(), 5);
        let ids: Vec<u64> = snap.events.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        assert_eq!(snap.events[0].stage, Stage::Receive);
        assert_eq!(snap.events[0].start_ticks, 100);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let r = FlightRecorder::new(16);
        assert_eq!(r.capacity(), 16);
        for i in 1..=40u64 {
            r.record(event(i, Stage::Fanout, i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.recorded, 40);
        assert_eq!(snap.events.len(), 16);
        // Only the newest 16 events survive, still in record order.
        let ids: Vec<u64> = snap.events.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, (25..=40).collect::<Vec<u64>>());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(FlightRecorder::new(0).capacity(), 16);
        assert_eq!(FlightRecorder::new(100).capacity(), 128);
        assert_eq!(FlightRecorder::new(4096).capacity(), 4096);
    }

    #[test]
    fn sampled_set_membership() {
        let r = FlightRecorder::new(64);
        assert!(!r.is_sampled(7));
        r.mark_sampled(7);
        r.mark_sampled(7); // idempotent
        assert!(r.is_sampled(7));
        assert!(!r.is_sampled(8));
        assert!(!r.is_sampled(0)); // zero is reserved / never sampled
    }

    #[test]
    fn sampled_set_survives_heavy_insertion() {
        let r = FlightRecorder::new(1024);
        for id in 1..=10_000u64 {
            r.mark_sampled(id);
        }
        // Recent ids should mostly still be present despite evictions.
        let recent_hits = (9_900..=10_000u64).filter(|id| r.is_sampled(*id)).count();
        assert!(recent_hits > 50, "only {recent_hits} of the last 101 ids survived");
    }

    #[test]
    #[cfg_attr(miri, ignore = "80k-event stress loop; the loom model and lighter tests cover Miri")]
    fn concurrent_writers_never_produce_torn_events() {
        // Invariant: every event carries trace_id == aux. A torn copy
        // mixing two writers' words would (with high probability across
        // many rounds) violate it — the seqlock must filter those out.
        let r = Arc::new(FlightRecorder::new(256));
        let writers: Vec<_> = (0..4)
            .map(|w| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..20_000u64 {
                        let id = w * 1_000_000 + i + 1;
                        r.record(SpanEvent {
                            trace_id: id,
                            stage: Stage::Filter,
                            start_ticks: id,
                            duration_ns: id,
                            aux: id,
                        });
                    }
                })
            })
            .collect();
        // Read concurrently with the writers.
        for _ in 0..50 {
            for e in r.snapshot().events {
                assert_eq!(e.trace_id, e.aux, "torn event escaped the seqlock");
                assert_eq!(e.trace_id, e.start_ticks);
            }
        }
        for w in writers {
            w.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.recorded, 80_000);
        assert_eq!(snap.events.len(), 256);
        for e in snap.events {
            assert_eq!(e.trace_id, e.aux);
        }
    }

    #[test]
    fn stage_names_are_stable() {
        assert_eq!(Stage::Receive.name(), "receive");
        assert_eq!(Stage::WireFlush.name(), "wire_flush");
        for stage in Stage::BROKER_STAGES {
            assert_eq!(Stage::from_u64(stage.to_u64()), Some(stage));
        }
        assert_eq!(Stage::from_u64(99), None);
    }
}
