//! Span-chain reconstruction and JSON exposition.
//!
//! The ring stores flat events; readers group them by trace id into
//! [`TraceChain`]s at snapshot time. Within a chain, events are sorted
//! into pipeline order (receive → journal → filter → fan-out →
//! wire-flush): record order cannot be trusted because net writer threads
//! may push a wire-flush span into the ring before the dispatcher commits
//! the broker stages of the same message.

use crate::recorder::{SpanEvent, Stage};

/// All recorded events of one message, in pipeline-stage order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceChain {
    /// The message's trace id.
    pub trace_id: u64,
    /// The chain's events (at least one).
    pub events: Vec<SpanEvent>,
}

impl TraceChain {
    /// Whether the chain carries at least one event of `stage`.
    pub fn has_stage(&self, stage: Stage) -> bool {
        self.events.iter().any(|e| e.stage == stage)
    }

    /// Whether all four broker-side stages are present (wire-flush events
    /// exist only for networked deliveries and are judged separately).
    pub fn is_complete(&self) -> bool {
        Stage::BROKER_STAGES.iter().all(|s| self.has_stage(*s))
    }

    /// Whether the event timestamps never go backwards along the pipeline
    /// (the order [`group_chains`] sorts into). A fan-out stamped before
    /// its filter scan, say, fails this.
    pub fn timestamps_monotone(&self) -> bool {
        self.events.windows(2).all(|w| w[0].start_ticks <= w[1].start_ticks)
    }

    /// The first event's timestamp (chain start), in clock ticks.
    pub fn start_ticks(&self) -> u64 {
        self.events.first().map_or(0, |e| e.start_ticks)
    }

    /// Sum of all stage durations, in nanoseconds.
    pub fn total_duration_ns(&self) -> u64 {
        self.events.iter().map(|e| e.duration_ns).sum()
    }
}

/// Groups flat ring events into per-message chains. Chains appear in
/// first-appearance record order; each chain's events are sorted into
/// pipeline-stage order (ties broken by timestamp), because wire-flush
/// spans recorded by net writer threads can precede the dispatcher's
/// broker-stage commit in the ring.
///
/// A chain whose receive event was evicted by ring wrap-around still
/// groups — it will simply be incomplete, which
/// [`TraceChain::is_complete`] reports.
pub fn group_chains(events: Vec<SpanEvent>) -> Vec<TraceChain> {
    let mut chains: Vec<TraceChain> = Vec::new();
    for event in events {
        match chains.iter_mut().rev().find(|c| c.trace_id == event.trace_id) {
            Some(chain) => chain.events.push(event),
            None => chains.push(TraceChain { trace_id: event.trace_id, events: vec![event] }),
        }
    }
    for chain in &mut chains {
        chain.events.sort_by_key(|e| (e.stage as u8, e.start_ticks));
    }
    chains
}

/// Renders chains as a JSON document for the HTTP exposition endpoint.
///
/// `ns_per_tick` converts the stored tick timestamps into per-event
/// `offset_ns` values relative to each chain's start; `recorded` and
/// `capacity` come from the [`crate::RecorderSnapshot`] the chains were
/// grouped from. All values are numeric or fixed stage names, so no string
/// escaping is needed.
pub fn render_chains_json(
    chains: &[TraceChain],
    ns_per_tick: f64,
    recorded: u64,
    capacity: usize,
) -> String {
    use std::fmt::Write;
    let mut out = String::with_capacity(256 + chains.len() * 256);
    let _ = write!(
        out,
        "{{\"recorded\":{recorded},\"capacity\":{capacity},\"ns_per_tick\":{ns_per_tick:.6},\"chains\":["
    );
    for (i, chain) in chains.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let start = chain.start_ticks();
        let _ = write!(
            out,
            "{{\"trace_id\":{},\"start_ticks\":{},\"complete\":{},\"monotone\":{},\
             \"total_duration_ns\":{},\"events\":[",
            chain.trace_id,
            start,
            chain.is_complete(),
            chain.timestamps_monotone(),
            chain.total_duration_ns(),
        );
        for (j, e) in chain.events.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let offset_ns = (e.start_ticks.saturating_sub(start) as f64 * ns_per_tick) as u64;
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",\"start_ticks\":{},\"offset_ns\":{offset_ns},\
                 \"duration_ns\":{},\"aux\":{}}}",
                e.stage.name(),
                e.start_ticks,
                e.duration_ns,
                e.aux,
            );
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace_id: u64, stage: Stage, start: u64) -> SpanEvent {
        SpanEvent { trace_id, stage, start_ticks: start, duration_ns: 5, aux: 0 }
    }

    fn full_chain(trace_id: u64, base: u64) -> Vec<SpanEvent> {
        Stage::BROKER_STAGES
            .iter()
            .enumerate()
            .map(|(i, s)| ev(trace_id, *s, base + i as u64 * 10))
            .collect()
    }

    #[test]
    fn groups_interleaved_chains_by_trace_id() {
        let mut events = Vec::new();
        for i in 0..4 {
            events.push(ev(1, Stage::BROKER_STAGES[i], 100 + i as u64));
            events.push(ev(2, Stage::BROKER_STAGES[i], 200 + i as u64));
        }
        let chains = group_chains(events);
        assert_eq!(chains.len(), 2);
        assert_eq!(chains[0].trace_id, 1);
        assert_eq!(chains[1].trace_id, 2);
        assert!(chains.iter().all(|c| c.is_complete() && c.timestamps_monotone()));
    }

    #[test]
    fn incomplete_and_non_monotone_chains_detected() {
        let partial = group_chains(vec![ev(3, Stage::Filter, 10), ev(3, Stage::Fanout, 20)]);
        assert!(!partial[0].is_complete());
        assert!(partial[0].timestamps_monotone());

        let backwards = group_chains(vec![ev(4, Stage::Receive, 20), ev(4, Stage::Journal, 10)]);
        assert!(!backwards[0].timestamps_monotone());
    }

    #[test]
    fn wire_flush_rides_along_after_broker_stages() {
        let mut events = full_chain(9, 100);
        events.push(ev(9, Stage::WireFlush, 500));
        let chains = group_chains(events);
        assert_eq!(chains.len(), 1);
        assert!(chains[0].is_complete());
        assert!(chains[0].has_stage(Stage::WireFlush));
        assert_eq!(chains[0].events.len(), 5);
        assert!(chains[0].timestamps_monotone());
    }

    #[test]
    fn early_recorded_wire_flush_sorts_into_pipeline_order() {
        // A writer thread can push its flush span into the ring before the
        // dispatcher commits the broker stages; grouping must still yield a
        // pipeline-ordered, monotone chain.
        let mut events = vec![ev(9, Stage::WireFlush, 500)];
        events.extend(full_chain(9, 100));
        let chains = group_chains(events);
        assert_eq!(chains[0].events.last().unwrap().stage, Stage::WireFlush);
        assert!(chains[0].timestamps_monotone());
        assert_eq!(chains[0].start_ticks(), 100);
    }

    #[test]
    fn totals_and_start() {
        let chains = group_chains(full_chain(1, 1000));
        assert_eq!(chains[0].start_ticks(), 1000);
        assert_eq!(chains[0].total_duration_ns(), 20);
    }

    #[test]
    fn json_is_balanced_and_carries_stages() {
        let mut events = full_chain(7, 100);
        events.extend(full_chain(8, 900));
        let chains = group_chains(events);
        let json = render_chains_json(&chains, 1.0, 8, 1024);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches(['{', '[']).count(), json.matches(['}', ']']).count());
        assert!(json.contains("\"trace_id\":7"));
        assert!(json.contains("\"trace_id\":8"));
        for stage in Stage::BROKER_STAGES {
            assert!(json.contains(&format!("\"stage\":\"{}\"", stage.name())));
        }
        assert!(json.contains("\"complete\":true"));
        assert!(json.contains("\"recorded\":8"));
        // Second chain's first event offset is 0 relative to its own start.
        assert!(json.contains("\"start_ticks\":900,\"offset_ns\":0"));
    }

    #[test]
    fn empty_chain_list_renders() {
        let json = render_chains_json(&[], 0.5, 0, 16);
        assert!(json.contains("\"chains\":[]"));
    }
}
