//! Native stress test for the histogram's racy min/max tracking
//! (DESIGN.md §3.14).
//!
//! `Histogram::record` updates `min`/`max` with relaxed `fetch_min`/
//! `fetch_max` RMWs, and `snapshot` reads them with independent relaxed
//! loads — the extrema are not sampled atomically with the buckets. The
//! contract is therefore *bounding*, not exact-at-an-instant: any
//! snapshot's extrema must bound every value recorded before the
//! snapshot began, and the settled snapshot must converge to the true
//! extrema. This test hammers that contract from several writers while a
//! reader snapshots continuously; the loom model in `tests/loom.rs`
//! explores the same protocol exhaustively at small scale, this one
//! shakes it at native scale and speed.

use rjms_metrics::Histogram;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WRITERS: u64 = 4;
const ROUNDS: u64 = 5_000;
/// Every recorded value lands in `[LO, HI]`; LO and HI themselves are
/// each recorded once, first, so the true extrema are known exactly.
const LO: u64 = 3;
const HI: u64 = 900_000;

#[test]
#[cfg_attr(miri, ignore = "20k-record native stress loop; the loom model covers Miri")]
fn racing_snapshots_always_bound_recorded_values() {
    let h = Arc::new(Histogram::new());
    let stop = Arc::new(AtomicBool::new(false));

    // Pin the true extrema up front so every racing snapshot with a
    // nonzero count has a fully determined answer for min and max once
    // these two records are visible.
    h.record(LO);
    h.record(HI);

    let reader = {
        let h = Arc::clone(&h);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let snap = h.snapshot();
                assert!(snap.count >= 2, "the two seed records must never disappear");
                assert!(snap.min >= LO, "min {} dipped below every recorded value", snap.min);
                assert!(snap.max <= HI, "max {} exceeded every recorded value", snap.max);
                assert!(snap.min <= snap.max, "min {} > max {}", snap.min, snap.max);
                seen += 1;
            }
            seen
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..ROUNDS {
                    // A spread of interior values, never escaping [LO, HI].
                    let v = LO + 1 + (w * ROUNDS + i) * 41 % (HI - LO - 1);
                    h.record(v);
                }
            })
        })
        .collect();
    for w in writers {
        w.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots_taken = reader.join().unwrap();
    assert!(snapshots_taken > 0, "the reader must have raced at least once");

    let settled = h.snapshot();
    assert_eq!(settled.count, 2 + WRITERS * ROUNDS, "a record was lost");
    assert_eq!(settled.min, LO, "settled min must converge to the true minimum");
    assert_eq!(settled.max, HI, "settled max must converge to the true maximum");
}
