//! Property tests: histogram quantiles stay within the documented error
//! bound of the exact empirical quantiles computed by `rjms_desim::stats`.
//!
//! The log-linear geometry guarantees every bucket's upper bound
//! overestimates the values it holds by at most `1/32` (3.125%). Both the
//! histogram and `SampleQuantiles` use the paper's nearest-rank definition
//! `Q_p = min{t : P(X <= t) >= p}`, so for any sample set and any `p`:
//!
//! ```text
//! exact_q <= hist_q <= exact_q * (1 + 1/32)
//! ```

use proptest::prelude::*;
use rjms_desim::random::{sample_exponential, ExponentialService, ServiceSampler};
use rjms_desim::stats::SampleQuantiles;
use rjms_metrics::Histogram;

const RELATIVE_BOUND: f64 = 1.0 / 32.0;

/// Checks the two-sided quantile bound for every probe point.
fn assert_quantiles_bounded(values: &[u64]) {
    let hist = Histogram::new();
    let mut exact = SampleQuantiles::with_capacity(values.len());
    for &v in values {
        hist.record(v);
        exact.push(v as f64);
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count, values.len() as u64);

    for p in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 0.9999, 1.0] {
        let e = exact.quantile(p);
        let h = snap.quantile(p).expect("non-empty histogram") as f64;
        assert!(h >= e, "p={p}: histogram {h} below exact {e} for n={}", values.len());
        assert!(
            h <= e * (1.0 + RELATIVE_BOUND),
            "p={p}: histogram {h} exceeds bound on exact {e} (n={})",
            values.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quantiles_bounded_mixed_magnitudes(
        values in prop::collection::vec(
            prop_oneof![
                0u64..64u64,
                0u64..100_000u64,
                1_000_000u64..4_000_000_000u64,
                any::<u64>(),
            ],
            1..400,
        )
    ) {
        assert_quantiles_bounded(&values);
    }

    #[test]
    fn quantiles_bounded_heavy_duplicates(
        base in 0u64..1_000_000u64,
        repeats in 1usize..50usize,
        distinct in 1usize..8usize,
    ) {
        let mut values = Vec::new();
        for d in 0..distinct as u64 {
            for _ in 0..repeats {
                values.push(base.saturating_add(d * 37));
            }
        }
        assert_quantiles_bounded(&values);
    }

    #[test]
    fn mean_is_exact(
        values in prop::collection::vec(0u64..1_000_000_000u64, 1..200)
    ) {
        let hist = Histogram::new();
        let mut sum = 0u128;
        for &v in &values {
            hist.record(v);
            sum += v as u128;
        }
        let snap = hist.snapshot();
        let exact_mean = sum as f64 / values.len() as f64;
        prop_assert!((snap.mean() - exact_mean).abs() <= 1e-9 * exact_mean.max(1.0));
        prop_assert_eq!(snap.min, *values.iter().min().unwrap());
        prop_assert_eq!(snap.max, *values.iter().max().unwrap());
    }
}

/// Ground-truth validation against the M/M/1 queue: feed the same Lindley
/// waiting-time samples (in nanoseconds) to the histogram and to the exact
/// estimator, and additionally check the mean against ρ/(1-ρ) theory.
#[test]
fn histogram_matches_mm1_ground_truth() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut rng = StdRng::seed_from_u64(2006_2006);
    let service = ExponentialService { mean: 1.0 };
    let (rate, samples, warmup) = (0.8, 200_000usize, 20_000usize);

    let hist = Histogram::new();
    let mut exact = SampleQuantiles::with_capacity(samples);
    let mut w = 0.0f64;
    for i in 0..warmup + samples {
        let b = service.sample(&mut rng);
        let a = sample_exponential(&mut rng, rate);
        if i >= warmup {
            let ns = (w * 1e9).round() as u64;
            hist.record(ns);
            exact.push(ns as f64);
        }
        w = (w + b - a).max(0.0);
    }

    let snap = hist.snapshot();
    assert_eq!(snap.count, samples as u64);

    // Quantile agreement with the exact estimator on queueing-shaped data.
    for p in [0.5, 0.9, 0.99, 0.9999] {
        let e = exact.quantile(p);
        let h = snap.quantile(p).unwrap() as f64;
        assert!(h >= e && h <= e * (1.0 + RELATIVE_BOUND), "p={p}: {h} vs exact {e}");
    }

    // M/M/1 theory: E[W] = ρ/(1-ρ) seconds = 4.0 at ρ = 0.8.
    let mean_s = snap.mean() / 1e9;
    assert!((mean_s - 4.0).abs() < 0.3, "E[W] = {mean_s}");
    // Waiting time of an M/M/1 queue has cvar > 1 (mass at zero).
    assert!(snap.cvar() > 1.0, "cvar = {}", snap.cvar());
}
