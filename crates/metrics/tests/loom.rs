//! Loom models for the metrics hot path (DESIGN.md §3.14).
//!
//! Built only under `RUSTFLAGS="--cfg loom"`; the CI `loom` job runs
//! `cargo test --release -p rjms-metrics --test loom` with that flag.
//! Under `cfg(loom)` the histogram geometry collapses to 65 power-of-two
//! buckets and every atomic access becomes a model scheduling point, so
//! these bodies are explored across every interleaving within the
//! preemption bound instead of running once.
#![cfg(loom)]

use loom::sync::Arc;
use loom::thread;
use rjms_metrics::{Counter, Gauge, Histogram, LocalHistogram};

/// Counter increments are atomic RMWs: no interleaving loses one.
#[test]
fn counter_increments_are_never_lost() {
    loom::model(|| {
        let c = Arc::new(Counter::new());
        let t = {
            let c = Arc::clone(&c);
            thread::spawn(move || {
                c.inc();
                c.add(2);
            })
        };
        c.add(4);
        t.join().unwrap();
        assert_eq!(c.get(), 7, "counter lost an update");
    });
}

/// Gauge adjustments commute with a concurrent set-then-adjust: the final
/// value is one of the two serializations, never a mixture.
#[test]
fn gauge_adjustments_serialize() {
    loom::model(|| {
        let g = Arc::new(Gauge::new());
        let t = {
            let g = Arc::clone(&g);
            thread::spawn(move || g.add(10))
        };
        g.add(-3);
        t.join().unwrap();
        assert_eq!(g.get(), 7, "gauge lost an adjustment");
    });
}

/// A snapshot racing two records sees a monotone prefix: its count never
/// exceeds what was recorded, and the post-join snapshot is exact with
/// `min <= every recorded value <= max`.
#[test]
fn histogram_snapshot_is_a_monotone_prefix_of_records() {
    loom::model(|| {
        let h = Arc::new(Histogram::new());
        let writer = {
            let h = Arc::clone(&h);
            thread::spawn(move || {
                h.record(3);
                h.record(200);
            })
        };
        let racing = h.snapshot();
        assert!(racing.count <= 2, "snapshot invented {} samples", racing.count);
        writer.join().unwrap();

        let settled = h.snapshot();
        assert_eq!(settled.count, 2);
        assert_eq!(settled.sum, 203);
        assert_eq!(settled.min, 3, "min must bound every recorded value");
        assert_eq!(settled.max, 200, "max must bound every recorded value");
    });
}

/// A `LocalHistogram` flush races a direct record on the shared
/// histogram: nothing is lost and the extrema converge to the union.
#[test]
fn local_flush_merges_losslessly_with_direct_records() {
    loom::model(|| {
        let shared = Arc::new(Histogram::new());
        let staging = {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                let mut local = LocalHistogram::new();
                local.record(1);
                local.record(1);
                local.record(40);
                local.flush_into(&shared);
            })
        };
        shared.record(7);
        staging.join().unwrap();

        let snap = shared.snapshot();
        assert_eq!(snap.count, 4, "flush or direct record lost samples");
        assert_eq!(snap.sum, 49);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 40);
    });
}
