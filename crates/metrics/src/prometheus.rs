//! Prometheus/OpenMetrics text exposition of a [`RegistrySnapshot`].
//!
//! The registry keys instruments by flat dotted names; labeled series are
//! encoded directly in the name with a `{key="value"}` suffix (built with
//! [`labeled`]). The renderer splits the suffix back off, sanitizes the
//! base name into the Prometheus charset, groups series sharing a base
//! under one `# TYPE` line, and renders histograms with **cumulative**
//! monotone `_bucket` series.
//!
//! Unit convention: the workspace records all latency histograms in
//! nanoseconds under `*_ns` names. Prometheus convention is base-unit
//! seconds, so the renderer rewrites a trailing `_ns` to `_seconds` and
//! divides histogram bounds and sums by 1e9. Counters and gauges pass
//! through unconverted. Only non-empty source buckets are emitted (the
//! log-linear geometry has 1920 of them) plus the mandatory `+Inf` bound —
//! cumulative counts stay monotone regardless.

use crate::histogram::HistogramSnapshot;
use crate::registry::RegistrySnapshot;
use std::fmt::Write;

/// Builds a registry instrument name carrying Prometheus-style labels,
/// e.g. `labeled("broker.topic.received", &[("topic", "stocks")])` →
/// `broker.topic.received{topic="stocks"}`. Label values are escaped per
/// the exposition format (backslash, double quote, newline).
pub fn labeled(base: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(base.len() + 16 * labels.len());
    out.push_str(base);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a registry name into its sanitized Prometheus base name and the
/// verbatim label suffix (without braces), if any.
fn split_name(name: &str) -> (String, Option<&str>) {
    let (base, labels) = match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}')),
        None => (name, None),
    };
    let mut sanitized = String::with_capacity(base.len());
    for (i, c) in base.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => sanitized.push(c),
            '0'..='9' if i > 0 => sanitized.push(c),
            _ => sanitized.push('_'),
        }
    }
    (sanitized, labels)
}

/// Formats a nanosecond quantity as seconds with enough precision to keep
/// distinct log-linear bucket bounds distinct.
fn seconds(ns: u64) -> String {
    let s = format!("{:.9}", ns as f64 / 1e9);
    // Trim trailing zeros but keep at least one decimal ("0.0").
    let trimmed = s.trim_end_matches('0');
    let trimmed = if trimmed.ends_with('.') { &s[..trimmed.len() + 1] } else { trimmed };
    trimmed.to_string()
}

/// Merges the optional stored label suffix with an extra label (for
/// histogram `le`).
fn label_block(labels: Option<&str>, extra: Option<(&str, &str)>) -> String {
    match (labels, extra) {
        (None, None) => String::new(),
        (Some(l), None) => format!("{{{l}}}"),
        (None, Some((k, v))) => format!("{{{k}=\"{v}\"}}"),
        (Some(l), Some((k, v))) => format!("{{{l},{k}=\"{v}\"}}"),
    }
}

fn render_histogram(
    out: &mut String,
    base: &str,
    labels: Option<&str>,
    h: &HistogramSnapshot,
    convert_ns: bool,
) {
    let mut cumulative = 0u64;
    for bucket in &h.buckets {
        cumulative += bucket.count;
        let le = if convert_ns { seconds(bucket.upper) } else { bucket.upper.to_string() };
        let _ =
            writeln!(out, "{base}_bucket{} {cumulative}", label_block(labels, Some(("le", &le))));
    }
    let _ = writeln!(out, "{base}_bucket{} {}", label_block(labels, Some(("le", "+Inf"))), h.count);
    let sum = if convert_ns { seconds(h.sum) } else { h.sum.to_string() };
    let _ = writeln!(out, "{base}_sum{} {sum}", label_block(labels, None));
    let _ = writeln!(out, "{base}_count{} {}", label_block(labels, None), h.count);
}

impl RegistrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4, also parseable as OpenMetrics): counters and gauges
    /// as single samples, histograms as cumulative `_bucket`/`_sum`/`_count`
    /// families. Latency families named `*_ns` are converted to seconds
    /// and renamed `*_seconds` (see module docs).
    pub fn render_prometheus(&self) -> String {
        use std::collections::BTreeMap;
        let mut out = String::with_capacity(1024);

        // The spec allows at most one `# TYPE` line per metric family, with
        // every series of the family directly below it. Registry iteration
        // order interleaves families (`t.received` sorts before
        // `t.received2`, which sorts before `t.received{topic=...}`), so
        // group series by sanitized base name first, then emit each family
        // as one contiguous block.
        // Family name -> (TYPE keyword, [(label pair, rendered value)]).
        type ScalarFamilies<'a> = BTreeMap<String, (&'static str, Vec<(Option<&'a str>, String)>)>;
        let mut scalar_families: ScalarFamilies = BTreeMap::new();
        for (name, value) in &self.counters {
            let (base, labels) = split_name(name);
            let entry = scalar_families.entry(base).or_insert_with(|| ("counter", Vec::new()));
            entry.1.push((labels, value.to_string()));
        }
        for (name, value) in &self.gauges {
            let (base, labels) = split_name(name);
            let entry = scalar_families.entry(base).or_insert_with(|| ("gauge", Vec::new()));
            entry.1.push((labels, value.to_string()));
        }
        for (base, (kind, series)) in &scalar_families {
            let _ = writeln!(out, "# TYPE {base} {kind}");
            for (labels, value) in series {
                let _ = writeln!(out, "{base}{} {value}", label_block(*labels, None));
            }
        }

        // Family name -> [(label pair, snapshot, ns-to-seconds flag)].
        type HistogramFamilies<'a> =
            BTreeMap<String, Vec<(Option<&'a str>, &'a HistogramSnapshot, bool)>>;
        let mut histogram_families: HistogramFamilies = BTreeMap::new();
        for (name, h) in &self.histograms {
            let (base, labels) = split_name(name);
            let (base, convert_ns) = match base.strip_suffix("_ns") {
                Some(stem) => (format!("{stem}_seconds"), true),
                None => (base, false),
            };
            histogram_families.entry(base).or_default().push((labels, h, convert_ns));
        }
        for (base, series) in &histogram_families {
            let _ = writeln!(out, "# TYPE {base} histogram");
            for (labels, h, convert_ns) in series {
                render_histogram(&mut out, base, *labels, h, *convert_ns);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn labeled_builds_and_escapes() {
        assert_eq!(labeled("a.b", &[("topic", "stocks")]), "a.b{topic=\"stocks\"}");
        assert_eq!(
            labeled("a", &[("k", "q\"u\\o\nte"), ("j", "x")]),
            "a{k=\"q\\\"u\\\\o\\nte\",j=\"x\"}"
        );
    }

    #[test]
    fn counters_and_gauges_render_with_sanitized_names() {
        let r = MetricsRegistry::new();
        r.counter("broker.messages.received").add(10);
        r.counter(&labeled("broker.topic.received", &[("topic", "stocks")])).add(3);
        r.gauge("net.connections.active").set(-2);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE broker_messages_received counter\n"));
        assert!(text.contains("broker_messages_received 10\n"));
        assert!(text.contains("broker_topic_received{topic=\"stocks\"} 3\n"));
        assert!(text.contains("# TYPE net_connections_active gauge\n"));
        assert!(text.contains("net_connections_active -2\n"));
    }

    #[test]
    fn labeled_series_share_one_type_line() {
        let r = MetricsRegistry::new();
        r.counter(&labeled("t.received", &[("topic", "a")])).add(1);
        r.counter(&labeled("t.received", &[("topic", "b")])).add(2);
        let text = r.snapshot().render_prometheus();
        assert_eq!(text.matches("# TYPE t_received counter").count(), 1);
        assert!(text.contains("t_received{topic=\"a\"} 1\n"));
        assert!(text.contains("t_received{topic=\"b\"} 2\n"));
    }

    #[test]
    fn interleaved_families_emit_one_type_line_each() {
        // In BTreeMap order `t.received` < `t.received2` < `t.received{...}`
        // ('2' = 0x32 sorts before '{' = 0x7b), so a naive in-order renderer
        // splits the t_received family around t_received2 and emits its
        // `# TYPE` line twice — forbidden by the text format.
        let r = MetricsRegistry::new();
        r.counter("t.received").add(1);
        r.counter("t.received2").add(2);
        r.counter(&labeled("t.received", &[("topic", "a")])).add(3);
        let text = r.snapshot().render_prometheus();
        assert_eq!(text.matches("# TYPE t_received counter").count(), 1);
        assert_eq!(text.matches("# TYPE t_received2 counter").count(), 1);
        // The family block is contiguous: its labeled series sits directly
        // under the TYPE line, before any other family's TYPE line.
        let lines: Vec<&str> = text.lines().collect();
        let type_idx = lines.iter().position(|l| *l == "# TYPE t_received counter").unwrap();
        assert_eq!(lines[type_idx + 1], "t_received 1");
        assert_eq!(lines[type_idx + 2], "t_received{topic=\"a\"} 3");
    }

    /// Parses a label value back out of an exposition line, undoing the
    /// text-format escapes — the consumer half of the round trip.
    fn unescape_label_value(line: &str) -> String {
        let raw = line.split("topic=\"").nth(1).unwrap();
        // The value ends at the first unescaped quote.
        let mut value = String::new();
        let mut chars = raw.chars();
        while let Some(c) = chars.next() {
            match c {
                '"' => break,
                '\\' => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => panic!("invalid escape \\{other:?} in {line}"),
                },
                c => value.push(c),
            }
        }
        value
    }

    #[test]
    fn hostile_topic_name_round_trips_through_exposition() {
        // A topic name exercising every escape the spec defines (backslash,
        // double quote, newline) plus braces and a comma, which must pass
        // through verbatim without confusing the name/label split.
        let topic = "a\\b\"c\nd{e=\"f\",g}";
        let r = MetricsRegistry::new();
        r.counter(&labeled("broker.topic.received", &[("topic", topic)])).add(5);
        let text = r.snapshot().render_prometheus();
        assert_eq!(text.matches("# TYPE broker_topic_received counter").count(), 1);
        let line = text
            .lines()
            .find(|l| l.starts_with("broker_topic_received{"))
            .expect("labeled series missing");
        assert!(line.ends_with(" 5"));
        // No raw newline may survive inside the sample line.
        assert!(!line.contains('\n'));
        assert_eq!(unescape_label_value(line), topic);
    }

    #[test]
    fn histogram_buckets_are_cumulative_monotone_in_seconds() {
        let r = MetricsRegistry::new();
        let h = r.histogram("broker.waiting_ns");
        for ns in [100u64, 1_000, 1_000, 50_000, 2_000_000, 900_000_000] {
            h.record(ns);
        }
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE broker_waiting_seconds histogram\n"));
        assert!(!text.contains("waiting_ns"));
        // Parse the bucket lines back: cumulative counts must be monotone
        // and le bounds strictly increasing, ending at +Inf = count.
        let mut last_cum = 0u64;
        let mut last_le = -1.0f64;
        let mut inf_seen = false;
        for line in text.lines().filter(|l| l.starts_with("broker_waiting_seconds_bucket")) {
            let le_raw = line.split("le=\"").nth(1).unwrap().split('"').next().unwrap();
            let cum: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(cum >= last_cum, "non-monotone cumulative count in {line}");
            last_cum = cum;
            if le_raw == "+Inf" {
                inf_seen = true;
                assert_eq!(cum, 6);
            } else {
                let le: f64 = le_raw.parse().unwrap();
                assert!(le > last_le, "non-increasing le in {line}");
                last_le = le;
            }
        }
        assert!(inf_seen, "missing +Inf bucket");
        assert!(text.contains("broker_waiting_seconds_count 6\n"));
        let sum_line = text.lines().find(|l| l.starts_with("broker_waiting_seconds_sum")).unwrap();
        let sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!((sum - 0.902052100).abs() < 1e-6, "sum {sum} not in seconds");
    }

    #[test]
    fn non_ns_histograms_pass_through_unconverted() {
        let r = MetricsRegistry::new();
        r.histogram("queue.depth").record(7);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE queue_depth histogram\n"));
        assert!(text.contains("queue_depth_sum 7\n"));
    }

    #[test]
    fn empty_histogram_renders_inf_only() {
        let r = MetricsRegistry::new();
        r.histogram("idle_ns");
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("idle_seconds_bucket{le=\"+Inf\"} 0\n"));
        assert!(text.contains("idle_seconds_count 0\n"));
    }
}
