//! Constant-memory log-linear latency histograms.
//!
//! The histogram covers the full `u64` nanosecond range with a fixed 1920
//! buckets (15 KiB of atomics): values below 32 get exact unit-width
//! buckets, and every power-of-two octave above is split into 32 linear
//! sub-buckets. A recorded value therefore lands in a bucket whose upper
//! bound overestimates it by at most `1/32` (3.125%) — the quantile error
//! bound that the property tests in `tests/quantile_prop.rs` check against
//! exact empirical quantiles.
//!
//! Recording is lock-free: one bucket-index computation (a `leading_zeros`
//! and two shifts) plus relaxed atomic adds. Histograms with the same
//! geometry — all of them — are mergeable, so per-shard instruments can be
//! combined into fleet-wide views.

// Atomics come through the rjms-conc facade so the loom models in
// `tests/loom.rs` exercise exactly this code (DESIGN.md §3.14).
use rjms_conc::sync::atomic::{AtomicU64, Ordering};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Number of linear sub-buckets per power-of-two octave (as a bit shift).
///
/// Under `cfg(loom)` the geometry collapses to pure power-of-two buckets
/// (65 instead of 1920): every atomic access is a scheduling point for
/// the model checker, and the interleaving space must stay exhaustively
/// explorable. The bucket-index arithmetic is identical in both shapes.
#[cfg(not(loom))]
const SUB_BITS: u32 = 5;
#[cfg(loom)]
const SUB_BITS: u32 = 0;
/// Number of linear sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count: 32 unit buckets + 32 per octave for octaves 5..=63.
const BUCKETS: usize = (SUB as usize) * (64 - SUB_BITS as usize + 1);

/// The bucket index of a value.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros(); // floor(log2 v), >= SUB_BITS
        let block = (octave - SUB_BITS) as u64;
        (SUB + block * SUB + ((v >> block) & (SUB - 1))) as usize
    }
}

/// The inclusive `(lower, upper)` value range of a bucket.
fn bucket_bounds(index: usize) -> (u64, u64) {
    let index = index as u64;
    if index < SUB {
        (index, index)
    } else {
        let block = (index - SUB) / SUB;
        let sub = (index - SUB) % SUB;
        let lower = (SUB + sub) << block;
        (lower, lower + ((1 << block) - 1))
    }
}

/// A lock-free log-linear histogram of `u64` samples (nanoseconds, bytes,
/// queue depths — any non-negative magnitude).
///
/// Memory is constant (1920 atomic buckets); relative quantile error is
/// bounded by 3.125% (`1/32`). See the module docs for the geometry.
///
/// # Examples
///
/// ```
/// use rjms_metrics::Histogram;
/// let h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 1000);
/// let p50 = snap.quantile(0.5).unwrap();
/// assert!((p50 as f64 - 500.0).abs() / 500.0 <= 1.0 / 32.0);
/// ```
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array through a Vec to
        // keep the 15 KiB of buckets off the stack.
        let buckets: Box<[AtomicU64; BUCKETS]> = (0..BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .expect("bucket count is fixed");
        Self {
            buckets,
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    ///
    /// Hot-path cost: two relaxed RMWs (bucket + sum) plus two relaxed
    /// loads — the min/max RMWs only fire while the extrema are still
    /// moving, which stops almost immediately in steady state. The total
    /// count is derived from the buckets at snapshot time instead of being
    /// maintained here.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        if v < self.min.load(Ordering::Relaxed) {
            self.min.fetch_min(v, Ordering::Relaxed);
        }
        if v > self.max.load(Ordering::Relaxed) {
            self.max.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of recorded samples (sums the buckets; intended for
    /// reporting, not for per-sample hot paths).
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Adds every sample of `other` into `self` (both histograms share the
    /// same fixed geometry, so the merge is exact bucket addition).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// An instantaneous copy of the distribution.
    ///
    /// Concurrent recording may tear across buckets (the snapshot is not a
    /// linearization point), which is fine for statistical reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push(BucketCount { upper: bucket_bounds(i).1, count: n });
            }
        }
        let count = buckets.iter().map(|b| b.count).sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed).min(self.max.load(Ordering::Relaxed)),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A single-writer staging buffer for a [`Histogram`].
///
/// A hot single-threaded path (such as a broker dispatcher) records into
/// plain, non-atomic buckets — an L1-resident array increment instead of
/// atomic read-modify-writes on shared cache lines — and periodically
/// [`flushes`](LocalHistogram::flush_into) the accumulated samples into the
/// shared atomic histogram. Readers of the shared histogram lag by at most
/// the flush interval.
///
/// # Examples
///
/// ```
/// use rjms_metrics::{Histogram, LocalHistogram};
/// let shared = Histogram::new();
/// let mut local = LocalHistogram::new();
/// for v in 1..=100u64 {
///     local.record(v);
/// }
/// assert_eq!(local.pending(), 100);
/// local.flush_into(&shared);
/// assert_eq!(local.pending(), 0);
/// assert_eq!(shared.count(), 100);
/// ```
pub struct LocalHistogram {
    buckets: Box<[u64; BUCKETS]>,
    /// Indices of non-zero buckets, so a flush visits only the handful of
    /// buckets a clustered latency distribution actually touches instead
    /// of sweeping the whole array through the cache.
    touched: Vec<u16>,
    pending: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl std::fmt::Debug for LocalHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalHistogram").field("pending", &self.pending).finish()
    }
}

impl Default for LocalHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LocalHistogram {
    /// Creates an empty staging buffer.
    pub fn new() -> Self {
        Self {
            buckets: vec![0u64; BUCKETS].into_boxed_slice().try_into().expect("fixed size"),
            touched: Vec::new(),
            pending: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample locally (no atomics).
    #[inline]
    pub fn record(&mut self, v: u64) {
        let index = bucket_index(v);
        if self.buckets[index] == 0 {
            self.touched.push(index as u16);
        }
        self.buckets[index] += 1;
        self.pending += 1;
        self.sum = self.sum.wrapping_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Samples recorded since the last flush.
    pub fn pending(&self) -> u64 {
        self.pending
    }

    /// Moves every pending sample into `shared` and resets the buffer.
    pub fn flush_into(&mut self, shared: &Histogram) {
        if self.pending == 0 {
            return;
        }
        for &index in &self.touched {
            let index = index as usize;
            shared.buckets[index].fetch_add(self.buckets[index], Ordering::Relaxed);
            self.buckets[index] = 0;
        }
        self.touched.clear();
        shared.sum.fetch_add(self.sum, Ordering::Relaxed);
        shared.min.fetch_min(self.min, Ordering::Relaxed);
        shared.max.fetch_max(self.max, Ordering::Relaxed);
        self.pending = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }
}

/// One non-empty bucket of a [`HistogramSnapshot`]: `count` samples whose
/// values were at most `upper` (and above the previous bucket's upper
/// bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Inclusive upper bound of the bucket's value range.
    pub upper: u64,
    /// Number of samples recorded in the bucket.
    pub count: u64,
}

/// A point-in-time copy of a [`Histogram`]: non-empty buckets plus exact
/// count/sum/min/max.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total recorded samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Smallest recorded sample (0 when empty).
    pub min: u64,
    /// Largest recorded sample (0 when empty).
    pub max: u64,
    /// Non-empty buckets in increasing value order.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// The nearest-rank `p`-quantile, reported as the containing bucket's
    /// upper bound: at most `1/32` (3.125%) above the exact sample value.
    /// `None` when the snapshot is empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&p), "quantile requires p in [0, 1], got {p}");
        if self.count == 0 {
            return None;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return Some(b.upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Exact sample mean (`sum/count`); 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate variance from bucket upper bounds (inherits the 3.125%
    /// bucket resolution); 0 with fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let mut acc = 0.0;
        for b in &self.buckets {
            let d = b.upper as f64 - mean;
            acc += b.count as f64 * d * d;
        }
        (acc / self.count as f64).max(0.0)
    }

    /// Approximate standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Approximate coefficient of variation (`σ/μ`); 0 when the mean is 0.
    pub fn cvar(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            0.0
        } else {
            self.std_dev() / mean
        }
    }

    /// Number of samples strictly above `threshold`, up to bucket
    /// resolution: a bucket counts as "above" when its entire value range
    /// lies above the threshold, so the result can undercount by at most
    /// one bucket's population (the bucket containing `threshold`).
    pub fn count_above(&self, threshold: u64) -> u64 {
        // A bucket counts as "above" when its entire value range lies above
        // the threshold; the true lower bound is recovered from the shared
        // log-linear geometry via the stored upper bound.
        self.buckets
            .iter()
            .filter(|b| bucket_bounds(bucket_index(b.upper)).0 > threshold)
            .map(|b| b.count)
            .sum()
    }

    /// The per-window distribution between two cumulative snapshots of the
    /// *same histogram*: every bucket count, the total, and the sum are the
    /// differences `self − earlier`. This is the history layer's window
    /// primitive — cumulative instruments never reset, so the samples that
    /// arrived inside a window are exactly the bucket-wise delta.
    ///
    /// Counts are saturating: if `earlier` does not actually precede `self`
    /// (or comes from a different instrument), negative deltas clamp to
    /// zero instead of wrapping. The window's `min`/`max` cannot be
    /// recovered from cumulative extrema, so they are approximated from the
    /// delta's own non-empty buckets (inheriting the 3.125% bucket
    /// resolution); `max` is additionally clamped by the later cumulative's
    /// true maximum, which makes it exact whenever the window contains the
    /// all-time largest sample.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets: Vec<BucketCount> = Vec::new();
        let mut ei = earlier.buckets.iter().peekable();
        for b in &self.buckets {
            // Advance the earlier cursor to the bucket with the same upper
            // bound, if present (both sides are sorted by upper).
            let mut earlier_count = 0;
            while let Some(&e) = ei.peek() {
                match e.upper.cmp(&b.upper) {
                    std::cmp::Ordering::Less => {
                        ei.next();
                    }
                    std::cmp::Ordering::Equal => {
                        earlier_count = e.count;
                        ei.next();
                        break;
                    }
                    std::cmp::Ordering::Greater => break,
                }
            }
            let count = b.count.saturating_sub(earlier_count);
            if count > 0 {
                buckets.push(BucketCount { upper: b.upper, count });
            }
        }
        let count: u64 = buckets.iter().map(|b| b.count).sum();
        HistogramSnapshot {
            count,
            // Wrapping: cumulative sums wrap on overflow, and the delta of
            // two wrapped cumulatives is still exact under wrapping_sub.
            // An empty delta (including the earlier-ahead misuse case,
            // where bucket counts saturate to zero) pins the sum to zero.
            sum: if count == 0 { 0 } else { self.sum.wrapping_sub(earlier.sum) },
            min: buckets.first().map(|b| b.upper).unwrap_or(0),
            max: buckets.last().map(|b| b.upper.min(self.max)).unwrap_or(0),
            buckets,
        }
    }

    /// Folds another snapshot into this one (bucket-wise addition; both
    /// sides come from the shared fixed geometry).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: Vec<BucketCount> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        while let (Some(&x), Some(&y)) = (a.peek(), b.peek()) {
            match x.upper.cmp(&y.upper) {
                std::cmp::Ordering::Less => {
                    merged.push(*x);
                    a.next();
                }
                std::cmp::Ordering::Greater => {
                    merged.push(*y);
                    b.next();
                }
                std::cmp::Ordering::Equal => {
                    merged.push(BucketCount { upper: x.upper, count: x.count + y.count });
                    a.next();
                    b.next();
                }
            }
        }
        merged.extend(a.copied());
        merged.extend(b.copied());
        self.buckets = merged;
        self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
        self.count += other.count;
        // The live histogram's sum wraps on overflow (relaxed fetch_add),
        // so merging must wrap the same way to stay consistent with a
        // single recording of the union.
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Times a scope and records the elapsed nanoseconds into a [`Histogram`]
/// on drop.
///
/// # Examples
///
/// ```
/// use rjms_metrics::{Histogram, Stopwatch};
/// let h = Histogram::new();
/// {
///     let _t = Stopwatch::start(&h);
///     // ... timed work ...
/// }
/// assert_eq!(h.count(), 1);
/// ```
#[derive(Debug)]
pub struct Stopwatch<'a> {
    histogram: &'a Histogram,
    started: Instant,
}

impl<'a> Stopwatch<'a> {
    /// Starts timing against `histogram`.
    pub fn start(histogram: &'a Histogram) -> Self {
        Self { histogram, started: Instant::now() }
    }
}

impl Drop for Stopwatch<'_> {
    fn drop(&mut self) {
        self.histogram.record_duration(self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = (0..64)
            .flat_map(|exp| [0u64, 1, 2, 17].map(|off| (1u64 << exp).saturating_add(off)))
            .collect();
        values.sort_unstable();
        values.dedup();
        let mut last = 0usize;
        for v in values {
            let idx = bucket_index(v);
            assert!(idx < BUCKETS, "index {idx} out of range for {v}");
            assert!(idx >= last, "index not monotone at {v}");
            last = idx;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_tile_the_value_range() {
        // Every bucket's lower bound is the previous upper bound + 1.
        let mut expected_lower = 0u64;
        for i in 0..BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, expected_lower, "gap or overlap at bucket {i}");
            assert!(hi >= lo);
            // Relative width bound: (hi - lo) <= lo / 32 for lo >= 32.
            if lo >= SUB {
                assert!(hi - lo <= lo / SUB, "bucket {i} too wide: [{lo}, {hi}]");
            }
            expected_lower = hi.wrapping_add(1);
        }
        assert_eq!(expected_lower, 0, "last bucket must end at u64::MAX");
    }

    #[test]
    fn values_land_in_their_bucket() {
        for v in [0u64, 1, 31, 32, 33, 63, 64, 100, 1023, 1 << 20, u64::MAX / 3, u64::MAX] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} not in [{lo}, {hi}]");
        }
    }

    #[test]
    fn snapshot_quantiles_within_bound() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 10_000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 10_000);
        for (p, exact) in [(0.5, 5000.0), (0.99, 9900.0), (0.9999, 10000.0)] {
            let q = snap.quantile(p).unwrap() as f64;
            assert!(q >= exact && q <= exact * (1.0 + 1.0 / 32.0) + 1.0, "p={p}: {q} vs {exact}");
        }
        assert!((snap.mean() - 5000.5).abs() < 1e-9);
        // Uniform 1..=n has cvar = sqrt((n^2-1)/12)/mean ≈ 0.577.
        assert!((snap.cvar() - 0.577).abs() < 0.02, "cvar {}", snap.cvar());
    }

    #[test]
    fn empty_snapshot_is_safe() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.99), None);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.cvar(), 0.0);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 1..=100 {
            a.record(v);
        }
        for v in 1000..=2000 {
            b.record(v);
        }
        a.merge(&b);
        let merged = a.snapshot();
        assert_eq!(merged.count, 100 + 1001);
        assert_eq!(merged.min, 1);
        assert_eq!(merged.max, 2000);

        // Snapshot-level merge agrees with histogram-level merge.
        let c = Histogram::new();
        for v in 1..=100 {
            c.record(v);
        }
        let mut snap = c.snapshot();
        let d = Histogram::new();
        for v in 1000..=2000 {
            d.record(v);
        }
        snap.merge(&d.snapshot());
        assert_eq!(snap, merged);
    }

    #[test]
    fn local_histogram_flush_matches_direct_recording() {
        let direct = Histogram::new();
        let staged = Histogram::new();
        let mut local = LocalHistogram::new();
        for v in [0u64, 1, 31, 32, 500, 1 << 20, u64::MAX / 7] {
            direct.record(v);
            local.record(v);
        }
        local.flush_into(&staged);
        assert_eq!(staged.snapshot(), direct.snapshot());
        // A second flush with nothing pending is a no-op.
        local.flush_into(&staged);
        assert_eq!(staged.snapshot(), direct.snapshot());
        // The buffer is reusable after a flush.
        local.record(7);
        direct.record(7);
        local.flush_into(&staged);
        assert_eq!(staged.snapshot(), direct.snapshot());
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "40k-record stress loop; the loom model and lighter tests cover Miri"
    )]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 40_000);
    }

    #[test]
    fn stopwatch_records_on_drop() {
        let h = Histogram::new();
        {
            let _t = Stopwatch::start(&h);
            std::thread::sleep(Duration::from_millis(2));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.max >= 2_000_000, "recorded {} ns", snap.max);
    }

    #[test]
    #[should_panic(expected = "quantile requires p")]
    fn quantile_rejects_bad_p() {
        Histogram::new().snapshot().quantile(1.5);
    }

    #[test]
    fn delta_recovers_window_samples() {
        let h = Histogram::new();
        h.record(100);
        h.record(5_000);
        let before = h.snapshot();
        h.record(5_000);
        h.record(90_000);
        let after = h.snapshot();
        let window = after.delta(&before);
        assert_eq!(window.count, 2);
        assert_eq!(window.sum, 95_000);
        // Only the window's samples populate the delta buckets; quantiles
        // over it reflect {5_000, 90_000} within bucket resolution.
        let q50 = window.quantile(0.50).unwrap();
        assert!((4_900..=5_200).contains(&q50), "q50 {q50}");
        let q99 = window.quantile(0.99).unwrap();
        assert!((88_000..=93_000).contains(&q99), "q99 {q99}");
        // Bounds come from the delta's own non-empty buckets.
        assert!(window.min >= 5_000 && window.min <= 5_200, "min {}", window.min);
        assert!(window.max >= 90_000 && window.max <= 93_000, "max {}", window.max);
    }

    #[test]
    fn delta_of_identical_snapshots_is_empty() {
        let h = Histogram::new();
        h.record(42);
        let snap = h.snapshot();
        let window = snap.delta(&snap);
        assert_eq!(window.count, 0);
        assert_eq!(window.sum, 0);
        assert!(window.buckets.is_empty());
    }

    #[test]
    fn delta_saturates_instead_of_wrapping() {
        let a = Histogram::new();
        a.record(10);
        let b = Histogram::new();
        b.record(10);
        b.record(10);
        b.record(1_000_000);
        // "Earlier" has MORE samples in the 10-bucket: clamps to zero
        // rather than wrapping to u64::MAX.
        let window = a.snapshot().delta(&b.snapshot());
        assert_eq!(window.count, 0);
        assert_eq!(window.sum, 0);
    }

    #[test]
    fn count_above_splits_at_bucket_resolution() {
        let h = Histogram::new();
        for v in [100u64, 200, 50_000, 80_000, 2_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count_above(10_000), 3);
        assert_eq!(snap.count_above(1_000_000), 1);
        assert_eq!(snap.count_above(0), 5);
        assert_eq!(snap.count_above(u64::MAX), 0);
    }
}
