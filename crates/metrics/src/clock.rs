//! A low-overhead monotonic tick counter for hot-path instrumentation.
//!
//! `Instant::now()` goes through the vDSO (tens of nanoseconds plus
//! register pressure in a hot loop); per-message timing in a dispatcher
//! that turns over in a microsecond or two wants something cheaper. On
//! x86-64 this module reads the invariant TSC directly (single-digit
//! nanoseconds) and converts ticks to nanoseconds with a once-per-process
//! calibration against the OS monotonic clock. On other architectures it
//! falls back to `Instant`, where a tick simply *is* a nanosecond.
//!
//! Readings are monotonic per core and synchronized across cores on any
//! CPU with an invariant TSC (everything current); the nanosecond
//! conversion is calibrated, not exact, which is fine for statistical
//! instruments. Use [`std::time::Instant`] when exactness matters.

use std::sync::OnceLock;
use std::time::Instant;

/// The current reading of the instrumentation clock, in ticks.
///
/// Only differences between readings are meaningful; convert them with
/// [`ticks_to_ns`]. Miri cannot execute the `rdtsc` intrinsic, so under
/// Miri the `Instant` fallback below is used on every architecture.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[inline]
pub fn now() -> u64 {
    // SAFETY: RDTSC has no preconditions; it is available on every x86-64.
    unsafe { core::arch::x86_64::_rdtsc() }
}

/// The current reading of the instrumentation clock, in ticks.
///
/// Fallback: nanoseconds since an arbitrary process-local epoch.
#[cfg(any(not(target_arch = "x86_64"), miri))]
#[inline]
pub fn now() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = *EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Nanoseconds per tick (1.0 on the `Instant` fallback), calibrated once
/// per process on first use.
pub fn ns_per_tick() -> f64 {
    static NS_PER_TICK: OnceLock<f64> = OnceLock::new();
    *NS_PER_TICK.get_or_init(calibrate)
}

/// Converts a tick difference from [`now`] into nanoseconds.
#[inline]
pub fn ticks_to_ns(ticks: u64) -> u64 {
    (ticks as f64 * ns_per_tick()) as u64
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
fn calibrate() -> f64 {
    let started = Instant::now();
    let first = now();
    std::thread::sleep(std::time::Duration::from_millis(10));
    let elapsed_ns = started.elapsed().as_nanos() as f64;
    let elapsed_ticks = now().wrapping_sub(first) as f64;
    if elapsed_ticks > 0.0 {
        elapsed_ns / elapsed_ticks
    } else {
        1.0 // non-monotonic TSC: degrade to "a tick is a nanosecond"
    }
}

#[cfg(any(not(target_arch = "x86_64"), miri))]
fn calibrate() -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn ticks_advance_and_convert_to_plausible_ns() {
        let t0 = now();
        std::thread::sleep(Duration::from_millis(20));
        let dt = ticks_to_ns(now().wrapping_sub(t0));
        // 20 ms sleep: between 15 ms and 5 s even on a loaded machine.
        assert!(dt > 15_000_000, "{dt} ns is too short for a 20 ms sleep");
        assert!(dt < 5_000_000_000, "{dt} ns is implausibly long");
    }

    #[test]
    fn ns_per_tick_is_positive_and_stable() {
        let a = ns_per_tick();
        let b = ns_per_tick();
        assert!(a > 0.0);
        assert!((a - b).abs() < f64::EPSILON, "calibration must be cached");
    }
}
