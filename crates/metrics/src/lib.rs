//! # rjms-metrics
//!
//! The live observability substrate of the rjms workspace: lock-free
//! [`Counter`]s and [`Gauge`]s, constant-memory log-linear latency
//! [`Histogram`]s with p50/p99/p99.99 quantiles, and a [`MetricsRegistry`]
//! that snapshots every registered instrument into a serializable,
//! text- and JSON-renderable [`RegistrySnapshot`].
//!
//! The design targets the broker's dispatch hot path: recording a latency
//! sample is one bucket-index computation plus a handful of relaxed atomic
//! adds — no locks, no allocation, no floating point. Histograms are
//! *mergeable* (same geometry everywhere), so per-shard or per-connection
//! instruments can be combined into fleet-wide views.
//!
//! The paper this workspace reproduces (Menth & Henjes, ICDCS 2006)
//! predicts the broker's waiting time `W` from the Eq. 1 cost model; this
//! crate supplies the *measured* side of that comparison, feeding
//! `rjms_core`'s `ModelMonitor` with live waiting-time and service-time
//! distributions.
//!
//! ## Quickstart
//!
//! ```
//! use rjms_metrics::{Histogram, MetricsRegistry};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let registry = MetricsRegistry::new();
//! let latency: Arc<Histogram> = registry.histogram("dispatch.waiting_ns");
//! latency.record_duration(Duration::from_micros(250));
//! latency.record_duration(Duration::from_micros(900));
//!
//! let snap = registry.snapshot();
//! println!("{}", snap.render_text());
//! println!("{}", snap.to_json());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod clock;
pub mod counter;
pub mod histogram;
pub mod json;
pub mod prometheus;
pub mod registry;

pub use counter::{Counter, Gauge};
pub use histogram::{Histogram, HistogramSnapshot, LocalHistogram, Stopwatch};
pub use json::JsonWriter;
pub use prometheus::labeled;
pub use registry::{MetricsRegistry, RegistrySnapshot};
