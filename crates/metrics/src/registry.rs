//! Named-instrument registry with snapshot and text/JSON export.
//!
//! A [`MetricsRegistry`] hands out shared [`Counter`]/[`Gauge`]/[`Histogram`]
//! instruments keyed by dotted names (`dispatch.waiting_ns`). Instruments
//! are created on first request and returned as `Arc`s; recording never
//! touches the registry lock again. `snapshot()` walks the registry once
//! and produces an immutable [`RegistrySnapshot`] that renders as aligned
//! text or JSON.

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json::JsonWriter;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Shared home for named instruments. Cheap to clone (`Arc` inside);
/// clones observe the same instruments.
///
/// # Examples
///
/// ```
/// use rjms_metrics::MetricsRegistry;
/// let registry = MetricsRegistry::new();
/// registry.counter("messages.received").add(3);
/// registry.gauge("connections.active").set(2);
/// let snap = registry.snapshot();
/// assert_eq!(snap.counters["messages.received"], 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it if absent.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.counters.entry(name.to_string()).or_default())
    }

    /// Returns the gauge named `name`, creating it if absent.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.gauges.entry(name.to_string()).or_default())
    }

    /// Returns the histogram named `name`, creating it if absent.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        Arc::clone(inner.histograms.entry(name.to_string()).or_default())
    }

    /// Registers an externally owned histogram under `name` (e.g. a
    /// journal's always-on append-latency instrument), replacing any
    /// previous instrument with that name.
    pub fn register_histogram(&self, name: &str, histogram: Arc<Histogram>) {
        let mut inner = self.inner.lock().unwrap();
        inner.histograms.insert(name.to_string(), histogram);
    }

    /// Snapshots every registered instrument.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock().unwrap();
        RegistrySnapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }
}

/// A point-in-time copy of every instrument in a [`MetricsRegistry`],
/// ordered by name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// The histogram snapshot named `name`, if present and non-empty.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name).filter(|h| h.count > 0)
    }

    /// Renders a human-readable report: one line per counter/gauge, one
    /// summary line per histogram (count, mean, p50/p99/p99.99, max in
    /// milliseconds assuming nanosecond samples).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(0);
        for (name, v) in &self.counters {
            out.push_str(&format!("{name:width$}  {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("{name:width$}  {v}\n"));
        }
        let ms = |ns: u64| ns as f64 / 1e6;
        for (name, h) in &self.histograms {
            if h.count == 0 {
                out.push_str(&format!("{name:width$}  (empty)\n"));
                continue;
            }
            out.push_str(&format!(
                "{name:width$}  n={} mean={:.3}ms p50={:.3}ms p99={:.3}ms p99.99={:.3}ms max={:.3}ms\n",
                h.count,
                h.mean() / 1e6,
                ms(h.quantile(0.5).unwrap_or(0)),
                ms(h.quantile(0.99).unwrap_or(0)),
                ms(h.quantile(0.9999).unwrap_or(0)),
                ms(h.max),
            ));
        }
        out
    }

    /// Renders the snapshot as a JSON document.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("counters");
        w.begin_object();
        for (name, v) in &self.counters {
            w.key(name);
            w.uint(*v);
        }
        w.end_object();
        w.key("gauges");
        w.begin_object();
        for (name, v) in &self.gauges {
            w.key(name);
            w.int(*v);
        }
        w.end_object();
        w.key("histograms");
        w.begin_object();
        for (name, h) in &self.histograms {
            w.key(name);
            w.begin_object();
            w.key("count");
            w.uint(h.count);
            w.key("sum");
            w.uint(h.sum);
            w.key("min");
            w.uint(h.min);
            w.key("max");
            w.uint(h.max);
            w.key("mean");
            w.float(h.mean());
            w.key("cvar");
            w.float(h.cvar());
            w.key("p50");
            w.uint(h.quantile(0.5).unwrap_or(0));
            w.key("p99");
            w.uint(h.quantile(0.99).unwrap_or(0));
            w.key("p9999");
            w.uint(h.quantile(0.9999).unwrap_or(0));
            w.key("buckets");
            w.begin_array();
            for b in &h.buckets {
                w.begin_array();
                w.uint(b.upper);
                w.uint(b.count);
                w.end_array();
            }
            w.end_array();
            w.end_object();
        }
        w.end_object();
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_are_shared_by_name() {
        let r = MetricsRegistry::new();
        r.counter("a").inc();
        r.counter("a").inc();
        assert_eq!(r.counter("a").get(), 2);

        let clone = r.clone();
        clone.counter("a").inc();
        assert_eq!(r.snapshot().counters["a"], 3);
    }

    #[test]
    fn register_external_histogram() {
        let r = MetricsRegistry::new();
        let h = Arc::new(Histogram::new());
        h.record(100);
        r.register_histogram("journal.append_ns", Arc::clone(&h));
        let snap = r.snapshot();
        assert_eq!(snap.histogram("journal.append_ns").unwrap().count, 1);
        assert!(snap.histogram("missing").is_none());
    }

    #[test]
    fn text_and_json_render() {
        let r = MetricsRegistry::new();
        r.counter("messages.received").add(10);
        r.gauge("connections.active").set(-1);
        r.histogram("dispatch.waiting_ns").record(1_000_000);
        r.histogram("empty.hist");
        let snap = r.snapshot();

        let text = snap.render_text();
        assert!(text.contains("messages.received"));
        assert!(text.contains("n=1"));
        assert!(text.contains("(empty)"));

        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(r#""messages.received":10"#));
        assert!(json.contains(r#""connections.active":-1"#));
        assert!(json.contains(r#""dispatch.waiting_ns":{"count":1"#));
        // Balanced braces as a cheap well-formedness check.
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }
}
