//! Minimal hand-rolled JSON emission.
//!
//! The workspace's `serde` shim provides marker traits only, so snapshot
//! export builds its JSON text directly. Only the constructs the
//! observability surfaces need are implemented: objects, arrays, strings,
//! integers, and floats. The writer is public so downstream exposition
//! layers (`rjms-obs`, `rjms::http`) render with the same escaping rules
//! as the registry snapshots.

/// Incrementally builds a JSON document into an owned `String`.
///
/// # Examples
///
/// ```
/// use rjms_metrics::JsonWriter;
/// let mut w = JsonWriter::new();
/// w.begin_object();
/// w.key("count");
/// w.uint(3);
/// w.end_object();
/// assert_eq!(w.finish(), r#"{"count":3}"#);
/// ```
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    /// Whether the current nesting level already has an element (needs a
    /// comma before the next one). One entry per open object/array.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the finished document.
    pub fn finish(self) -> String {
        debug_assert!(self.needs_comma.is_empty(), "unbalanced JSON nesting");
        self.out
    }

    fn pre_value(&mut self) {
        if let Some(seen) = self.needs_comma.last_mut() {
            if *seen {
                self.out.push(',');
            }
            *seen = true;
        }
    }

    /// Opens an object (`{`).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    /// Closes the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    /// Opens an array (`[`).
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    /// Closes the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next call must write its value.
    pub fn key(&mut self, name: &str) {
        self.pre_value();
        write_escaped(&mut self.out, name);
        self.out.push(':');
        // The value that follows must not emit another comma.
        if let Some(seen) = self.needs_comma.last_mut() {
            *seen = false;
        }
    }

    /// Writes an escaped string value.
    pub fn string(&mut self, v: &str) {
        self.pre_value();
        write_escaped(&mut self.out, v);
    }

    /// Writes an unsigned integer value.
    pub fn uint(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a signed integer value.
    pub fn int(&mut self, v: i64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Writes a `null` value.
    pub fn null(&mut self) {
        self.pre_value();
        self.out.push_str("null");
    }

    /// Writes a finite float; NaN and infinities become `null` (JSON has no
    /// representation for them).
    pub fn float(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            // `{:?}` round-trips f64 exactly and always includes a decimal
            // point or exponent, keeping the token a valid JSON number.
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
    }

    /// Writes a pre-rendered JSON fragment verbatim (the caller vouches for
    /// its validity — e.g. a nested document produced by another writer).
    pub fn raw(&mut self, fragment: &str) {
        self.pre_value();
        self.out.push_str(fragment);
    }

    // After `key(..)`, the comma state of the enclosing object was cleared;
    // restore it after the value. Object/array/scalar writers all call
    // `pre_value`, which leaves the flag set, so nothing extra is needed —
    // this comment documents the invariant rather than code.
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.string("dispatch.waiting_ns");
        w.key("count");
        w.uint(42);
        w.key("mean");
        w.float(1.5);
        w.key("buckets");
        w.begin_array();
        w.begin_object();
        w.key("upper");
        w.uint(32);
        w.key("n");
        w.uint(7);
        w.end_object();
        w.uint(9);
        w.end_array();
        w.key("gauge");
        w.int(-3);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"dispatch.waiting_ns","count":42,"mean":1.5,"buckets":[{"upper":32,"n":7},9],"gauge":-3}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.float(f64::NAN);
        w.float(f64::INFINITY);
        w.float(2.0);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,2.0]");
    }

    #[test]
    fn bool_null_and_raw() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.bool(true);
        w.null();
        w.raw(r#"{"nested":1}"#);
        w.end_array();
        assert_eq!(w.finish(), r#"[true,null,{"nested":1}]"#);
    }
}
