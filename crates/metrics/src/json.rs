//! Minimal hand-rolled JSON emission.
//!
//! The workspace's `serde` shim provides marker traits only, so snapshot
//! export builds its JSON text directly. Only the constructs the registry
//! needs are implemented: objects, arrays, strings, integers, and floats.

/// Incrementally builds a JSON document into an owned `String`.
#[derive(Debug, Default)]
pub(crate) struct JsonWriter {
    out: String,
    /// Whether the current nesting level already has an element (needs a
    /// comma before the next one). One entry per open object/array.
    needs_comma: Vec<bool>,
}

impl JsonWriter {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    pub(crate) fn finish(self) -> String {
        debug_assert!(self.needs_comma.is_empty(), "unbalanced JSON nesting");
        self.out
    }

    fn pre_value(&mut self) {
        if let Some(seen) = self.needs_comma.last_mut() {
            if *seen {
                self.out.push(',');
            }
            *seen = true;
        }
    }

    pub(crate) fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    pub(crate) fn end_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    pub(crate) fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    pub(crate) fn end_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    /// Writes an object key; the next call must write its value.
    pub(crate) fn key(&mut self, name: &str) {
        self.pre_value();
        write_escaped(&mut self.out, name);
        self.out.push(':');
        // The value that follows must not emit another comma.
        if let Some(seen) = self.needs_comma.last_mut() {
            *seen = false;
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn string(&mut self, v: &str) {
        self.pre_value();
        write_escaped(&mut self.out, v);
    }

    pub(crate) fn uint(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    pub(crate) fn int(&mut self, v: i64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    /// Writes a finite float; NaN and infinities become `null` (JSON has no
    /// representation for them).
    pub(crate) fn float(&mut self, v: f64) {
        self.pre_value();
        if v.is_finite() {
            // `{:?}` round-trips f64 exactly and always includes a decimal
            // point or exponent, keeping the token a valid JSON number.
            self.out.push_str(&format!("{v:?}"));
        } else {
            self.out.push_str("null");
        }
    }

    // After `key(..)`, the comma state of the enclosing object was cleared;
    // restore it after the value. Object/array/scalar writers all call
    // `pre_value`, which leaves the flag set, so nothing extra is needed —
    // this comment documents the invariant rather than code.
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_nested_document() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("name");
        w.string("dispatch.waiting_ns");
        w.key("count");
        w.uint(42);
        w.key("mean");
        w.float(1.5);
        w.key("buckets");
        w.begin_array();
        w.begin_object();
        w.key("upper");
        w.uint(32);
        w.key("n");
        w.uint(7);
        w.end_object();
        w.uint(9);
        w.end_array();
        w.key("gauge");
        w.int(-3);
        w.end_object();
        assert_eq!(
            w.finish(),
            r#"{"name":"dispatch.waiting_ns","count":42,"mean":1.5,"buckets":[{"upper":32,"n":7},9],"gauge":-3}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let mut w = JsonWriter::new();
        w.string("a\"b\\c\nd\u{1}");
        assert_eq!(w.finish(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut w = JsonWriter::new();
        w.begin_array();
        w.float(f64::NAN);
        w.float(f64::INFINITY);
        w.float(2.0);
        w.end_array();
        assert_eq!(w.finish(), "[null,null,2.0]");
    }
}
