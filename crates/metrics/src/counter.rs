//! Lock-free monotonic counters and settable gauges.

// Atomics come through the rjms-conc facade so the loom models in
// `tests/loom.rs` exercise exactly this code (DESIGN.md §3.14).
use rjms_conc::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing, lock-free event counter.
///
/// All operations use relaxed atomics: counters are statistical
/// instruments, not synchronization primitives.
///
/// # Examples
///
/// ```
/// use rjms_metrics::Counter;
/// let c = Counter::new();
/// c.inc();
/// c.add(4);
/// assert_eq!(c.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free instantaneous-value gauge (queue depths, connection counts).
///
/// # Examples
///
/// ```
/// use rjms_metrics::Gauge;
/// let g = Gauge::new();
/// g.set(7);
/// g.add(-2);
/// assert_eq!(g.get(), 5);
/// ```
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn gauge_set_and_adjust() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(-3);
        g.add(10);
        assert_eq!(g.get(), 7);
    }
}
