//! Property tests for topic patterns: the matcher agrees with a naive
//! reference implementation, and parse→display round-trips.

use proptest::prelude::*;
use rjms_broker::TopicPattern;

/// Reference matcher by direct recursion over segment lists.
fn naive_match(pattern: &[&str], topic: &[&str]) -> bool {
    match pattern.split_first() {
        None => topic.is_empty(),
        Some((&">", rest)) => {
            debug_assert!(rest.is_empty());
            !topic.is_empty()
        }
        Some((&"*", rest)) => match topic.split_first() {
            None => false,
            Some((_, t_rest)) => naive_match(rest, t_rest),
        },
        Some((lit, rest)) => match topic.split_first() {
            Some((t, t_rest)) if t == lit => naive_match(rest, t_rest),
            _ => false,
        },
    }
}

fn segment() -> impl Strategy<Value = String> {
    "[a-c]{1,3}"
}

fn pattern_segments() -> impl Strategy<Value = Vec<String>> {
    // 1-4 segments of literal/star, optionally capped by ">".
    (prop::collection::vec(prop_oneof![segment(), Just("*".to_owned())], 1..4), any::<bool>())
        .prop_map(|(mut segs, add_rest)| {
            if add_rest {
                segs.push(">".to_owned());
            }
            segs
        })
}

fn topic_segments() -> impl Strategy<Value = Vec<String>> {
    prop::collection::vec(segment(), 1..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn matcher_agrees_with_reference(
        pattern in pattern_segments(),
        topic in topic_segments(),
    ) {
        let pattern_src = pattern.join(".");
        let topic_src = topic.join(".");
        let parsed: TopicPattern = pattern_src.parse().expect("generated patterns are valid");

        let pat_refs: Vec<&str> = pattern.iter().map(String::as_str).collect();
        let top_refs: Vec<&str> = topic.iter().map(String::as_str).collect();
        prop_assert_eq!(
            parsed.matches(&topic_src),
            naive_match(&pat_refs, &top_refs),
            "pattern `{}` vs topic `{}`", pattern_src, topic_src
        );
    }

    #[test]
    fn display_parse_roundtrip(pattern in pattern_segments()) {
        let src = pattern.join(".");
        let parsed: TopicPattern = src.parse().unwrap();
        let reparsed: TopicPattern = parsed.to_string().parse().unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    #[test]
    fn parser_total_on_arbitrary_strings(s in "[ -~]{0,24}") {
        // Any printable string either parses or errors — never panics.
        let _ = s.parse::<TopicPattern>();
    }

    #[test]
    fn literal_patterns_match_only_themselves(topic in topic_segments()) {
        let src = topic.join(".");
        let parsed: TopicPattern = src.parse().unwrap();
        prop_assert!(parsed.is_literal());
        prop_assert!(parsed.matches(&src));
        // Adding a segment breaks the match.
        let extended = format!("{}.extra", src);
        prop_assert!(!parsed.matches(&extended));
    }
}

mod corrid_props {
    use proptest::prelude::*;
    use rjms_selector::corrid::CorrelationFilter;

    proptest! {
        #[test]
        fn range_matches_iff_trailing_integer_in_range(
            lo in -50i64..50,
            span in 0i64..40,
            value in -100i64..100,
            prefix in "[a-z#]{0,4}",
        ) {
            let hi = lo + span;
            let f = CorrelationFilter::range(lo, hi);
            // Plain numeric IDs: sign handled only at the very start.
            let id = format!("{value}");
            prop_assert_eq!(f.matches(&id), lo <= value && value <= hi);
            // Prefixed IDs: the trailing digits are unsigned.
            if value >= 0 && !prefix.is_empty() {
                let id = format!("{prefix}{value}");
                prop_assert_eq!(f.matches(&id), lo <= value && value <= hi);
            }
        }

        #[test]
        fn parser_total_and_display_roundtrips(s in "[!-~]{0,16}") {
            if let Ok(f) = s.parse::<CorrelationFilter>() {
                let redisplayed: CorrelationFilter =
                    f.to_string().parse().expect("display must re-parse");
                prop_assert_eq!(f, redisplayed);
            }
        }
    }
}
