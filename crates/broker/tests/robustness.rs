//! Failure injection and back-pressure behaviour of the broker.

use rjms_broker::{Broker, BrokerConfig, CostModel, Filter, Message, OverflowPolicy};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The push-back mechanism: with a slow dispatcher and a bounded publish
/// queue, a saturated publisher is throttled to the dispatch rate instead
/// of growing memory (paper §IV-B.1: "the major part of the messages are
/// queued at the publisher site").
#[test]
fn publisher_is_throttled_to_dispatch_rate() {
    let per_message = Duration::from_millis(2);
    let broker = Broker::start(
        BrokerConfig::builder()
            .publish_queue_capacity(4)
            .cost_model(CostModel::new(per_message.as_secs_f64(), 0.0, 0.0))
            .build(),
    );
    broker.create_topic("t").unwrap();
    let publisher = broker.publisher("t").unwrap();

    // Fill the pipeline, then time how long additional publishes take.
    for _ in 0..8 {
        publisher.publish(Message::builder().build()).unwrap();
    }
    let start = Instant::now();
    let extra = 20;
    for _ in 0..extra {
        publisher.publish(Message::builder().build()).unwrap();
    }
    let elapsed = start.elapsed();
    // Each publish must have waited ~one dispatch slot.
    assert!(
        elapsed >= per_message * (extra - 4),
        "publisher was not throttled: {extra} publishes in {elapsed:?}"
    );
    broker.shutdown();
}

/// A subscriber that disappears while the dispatcher is *blocked* sending
/// into its full queue must not wedge the broker (Block overflow policy).
#[test]
fn subscriber_crash_unblocks_dispatcher() {
    let broker = Broker::start(
        BrokerConfig::builder()
            .subscriber_queue_capacity(1)
            .overflow_policy(OverflowPolicy::Block)
            .build(),
    );
    broker.create_topic("t").unwrap();

    let stuck = broker.subscription("t").open().unwrap();
    let healthy = broker.subscription("t").open().unwrap();
    let publisher = broker.publisher("t").unwrap();

    // Two messages: the first fills `stuck`'s queue, the second blocks the
    // dispatcher on it (subscriptions are scanned in creation order).
    publisher.publish(Message::builder().property("seq", 0i64).build()).unwrap();
    publisher.publish(Message::builder().property("seq", 1i64).build()).unwrap();
    // Give the dispatcher time to block.
    std::thread::sleep(Duration::from_millis(100));

    // Crash the stuck subscriber: the blocked send must fail over and the
    // dispatcher must deliver everything else.
    drop(stuck);
    for seq in 0..2i64 {
        let m = healthy
            .receive_timeout(Duration::from_secs(5))
            .unwrap_or_else(|| panic!("dispatcher wedged before seq {seq}"));
        assert_eq!(m.property("seq"), Some(&seq.into()));
    }
    // Broker still fully operational.
    publisher.publish(Message::builder().property("seq", 2i64).build()).unwrap();
    assert!(healthy.receive_timeout(Duration::from_secs(5)).is_some());
    assert!(broker.snapshot().subscriptions.expired >= 1);
    broker.shutdown();
}

/// Dropping the broker mid-traffic shuts down cleanly (Drop impl) without
/// deadlocking publishers or subscribers.
#[test]
fn broker_drop_mid_traffic_is_clean() {
    // The subscriber queue must be large enough that the pump cannot fill
    // it before the drain below starts: with the Block overflow policy,
    // shutdown waits for queued deliveries (reliable persistent delivery),
    // so a full queue and a not-yet-draining subscriber would deadlock the
    // drop. See `Broker::shutdown` docs.
    let broker = Broker::start(
        BrokerConfig::builder()
            .publish_queue_capacity(8)
            .subscriber_queue_capacity(1 << 20)
            .build(),
    );
    broker.create_topic("t").unwrap();
    let publisher = broker.publisher("t").unwrap();
    let subscriber = broker.subscription("t").open().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let pub_stop = Arc::clone(&stop);
    let pump = std::thread::spawn(move || {
        let mut sent = 0u64;
        while !pub_stop.load(Ordering::Relaxed) {
            if publisher.publish(Message::builder().build()).is_err() {
                break; // broker went away — expected
            }
            sent += 1;
        }
        sent
    });
    std::thread::sleep(Duration::from_millis(50));
    drop(broker); // shutdown while the pump is running
    stop.store(true, Ordering::Relaxed);
    let sent = pump.join().expect("publisher thread must exit");
    assert!(sent > 0);
    // The subscriber drains whatever was delivered, then sees the closure.
    while subscriber.receive().is_ok() {}
}

/// Slow consumers under DropNew lose messages but never block the
/// dispatcher; counts stay consistent.
#[test]
fn drop_new_policy_keeps_counts_consistent() {
    let broker = Broker::start(
        BrokerConfig::builder()
            .subscriber_queue_capacity(2)
            .overflow_policy(OverflowPolicy::DropNew)
            .build(),
    );
    broker.create_topic("t").unwrap();
    let sub = broker.subscription("t").open().unwrap();
    let publisher = broker.publisher("t").unwrap();
    let total = 200u64;
    for _ in 0..total {
        publisher.publish(Message::builder().build()).unwrap();
    }
    for _ in 0..400 {
        if broker.snapshot().messages.received == total {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let messages = broker.snapshot().messages;
    assert_eq!(messages.received, total);
    assert_eq!(messages.dispatched + messages.dropped, total);
    // Whatever was dispatched is actually receivable.
    let mut got = 0u64;
    while sub.receive_timeout(Duration::from_millis(50)).is_some() {
        got += 1;
    }
    assert_eq!(got, messages.dispatched);
    broker.shutdown();
}

/// Hundreds of churning subscribers (subscribe + drop under load) never
/// corrupt delivery for a stable observer.
#[test]
fn subscription_churn_under_load() {
    let broker = Broker::start(BrokerConfig::builder().subscriber_queue_capacity(1 << 14).build());
    broker.create_topic("t").unwrap();
    let observer = broker.subscription("t").open().unwrap();
    let publisher = broker.publisher("t").unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let churn_stop = Arc::clone(&stop);
    let broker_ref = &broker;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            while !churn_stop.load(Ordering::Relaxed) {
                let subs: Vec<_> = (0..16)
                    .map(|i| {
                        broker_ref
                            .subscription("t")
                            .filter(Filter::correlation_id(&format!("#{i}")).unwrap())
                            .open()
                            .unwrap()
                    })
                    .collect();
                drop(subs);
            }
        });
        let total = 1_000;
        for i in 0..total {
            publisher.publish(Message::builder().property("seq", i as i64).build()).unwrap();
        }
        for i in 0..total {
            let m = observer.receive_timeout(Duration::from_secs(5)).expect("delivery");
            assert_eq!(m.property("seq"), Some(&(i as i64).into()));
        }
        stop.store(true, Ordering::Relaxed);
    });
    broker.shutdown();
}

/// Per-topic counters track received/dispatched independently per topic.
#[test]
fn topic_stats_are_per_topic() {
    let broker = Broker::start(BrokerConfig::default());
    broker.create_topic("a").unwrap();
    broker.create_topic("b").unwrap();
    let sub_a1 = broker.subscription("a").open().unwrap();
    let sub_a2 = broker.subscription("a").open().unwrap();
    let _sub_b =
        broker.subscription("b").filter(Filter::correlation_id("#1").unwrap()).open().unwrap();

    let pa = broker.publisher("a").unwrap();
    let pb = broker.publisher("b").unwrap();
    for _ in 0..3 {
        pa.publish(Message::builder().build()).unwrap();
    }
    pb.publish(Message::builder().correlation_id("#0").build()).unwrap();

    for _ in 0..6 {
        let _ = sub_a1.receive_timeout(Duration::from_secs(2));
        let _ = sub_a2.receive_timeout(Duration::from_millis(50));
    }
    for _ in 0..200 {
        if broker.snapshot().messages.received == 4 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let per_topic = broker.snapshot().per_topic;
    let a = &per_topic["a"];
    assert_eq!(a.received, 3);
    assert_eq!(a.dispatched, 6);
    assert_eq!(a.replication_grade(), Some(2.0));
    let b = &per_topic["b"];
    assert_eq!(b.received, 1);
    assert_eq!(b.dispatched, 0); // the only filter did not match
    assert!(!per_topic.contains_key("missing"));
    broker.shutdown();
}
