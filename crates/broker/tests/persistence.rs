//! Write-ahead persistence integration tests: restart recovery, torn-frame
//! crash recovery with re-delivery to durable subscribers, checkpointing,
//! and the journal counters surfaced through `BrokerStats`.

use rjms_broker::{Broker, BrokerConfig, Error, Filter, Message, PersistenceConfig};
use rjms_journal::{scratch_dir, segment::segment_file_name, FsyncPolicy};
use std::path::Path;
use std::time::Duration;

fn persistent_config(dir: &Path) -> BrokerConfig {
    BrokerConfig::builder()
        .persistence(PersistenceConfig::new(dir).journal(|j| j.fsync(FsyncPolicy::Always)))
        .build()
}

/// Waits until the broker has processed `n` received messages.
fn sync(b: &Broker, n: u64) {
    for _ in 0..400 {
        if b.snapshot().messages.received >= n {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("broker did not process {n} messages in time");
}

fn cleanup(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn restart_recovers_topics_durables_and_retained_backlog() {
    let dir = scratch_dir("bkr-restart");
    {
        let b = Broker::start(persistent_config(&dir));
        b.create_topic("stocks").unwrap();
        drop(b.subscription("stocks").durable("auditor").open().unwrap());
        let p = b.publisher("stocks").unwrap();
        for i in 0..8i64 {
            p.publish(
                Message::builder()
                    .correlation_id(format!("#{i}"))
                    .property("seq", i)
                    .body(vec![i as u8; 16])
                    .build(),
            )
            .unwrap();
        }
        sync(&b, 8);
        b.shutdown();
    }

    let b = Broker::start(persistent_config(&dir));
    // Topology survived: the topic and the durable subscription exist.
    assert!(matches!(b.create_topic("stocks"), Err(Error::TopicExists { .. })));
    assert_eq!(b.durable_names("stocks"), vec!["auditor".to_owned()]);
    assert_eq!(b.retained_count("stocks", "auditor"), 8);
    // topic + durable + 8 publishes
    assert_eq!(b.snapshot().journal.expect("persistence enabled").frames_recovered, 10);

    // The backlog is re-delivered in publish order with headers intact.
    let sub = b.subscription("stocks").durable("auditor").open().unwrap();
    for i in 0..8i64 {
        let m = sub.receive_timeout(Duration::from_secs(2)).expect("recovered message");
        assert_eq!(m.property("seq"), Some(&i.into()));
        assert_eq!(m.correlation_id(), Some(format!("#{i}").as_str()));
        assert_eq!(m.body().as_ref(), &vec![i as u8; 16][..]);
    }
    b.shutdown();
    cleanup(&dir);
}

#[test]
fn torn_tail_recovers_to_last_whole_frame_and_redelivers() {
    let dir = scratch_dir("bkr-torn");
    let n = 12i64;
    {
        let b = Broker::start(persistent_config(&dir));
        b.create_topic("t").unwrap();
        drop(b.subscription("t").durable("w").open().unwrap());
        let p = b.publisher("t").unwrap();
        for i in 0..n {
            p.publish(Message::builder().property("seq", i).build()).unwrap();
        }
        sync(&b, n as u64);
        b.shutdown();
    }

    // Simulate a crash mid-write: cut the active segment inside its final
    // frame (the last publish record).
    let segment = dir.join(segment_file_name(0));
    let len = std::fs::metadata(&segment).unwrap().len();
    std::fs::OpenOptions::new().write(true).open(&segment).unwrap().set_len(len - 3).unwrap();

    let b = Broker::start(persistent_config(&dir));
    // Recovery stops at the last whole frame: the final publish is gone,
    // everything before it is intact.
    assert_eq!(b.retained_count("t", "w"), n as usize - 1);
    let recovered = b.snapshot().journal.expect("persistence enabled");
    assert!(recovered.torn_bytes_truncated > 0, "torn tail should have been cut");

    let sub = b.subscription("t").durable("w").open().unwrap();
    for i in 0..n - 1 {
        let m = sub.receive_timeout(Duration::from_secs(2)).expect("re-delivered message");
        assert_eq!(m.property("seq"), Some(&i.into()));
    }
    assert!(sub.receive_timeout(Duration::from_millis(100)).is_none());

    // The journal accepts new appends after truncating the torn tail.
    let p = b.publisher("t").unwrap();
    p.publish(Message::builder().property("seq", 99i64).build()).unwrap();
    let m = sub.receive_timeout(Duration::from_secs(2)).expect("post-recovery message");
    assert_eq!(m.property("seq"), Some(&99i64.into()));
    b.shutdown();
    cleanup(&dir);
}

#[test]
fn checkpointed_deliveries_are_not_redelivered_after_clean_shutdown() {
    let dir = scratch_dir("bkr-ckpt");
    let config = BrokerConfig::builder()
        .persistence(
            PersistenceConfig::new(&dir)
                .checkpoint_every(1)
                .journal(|j| j.fsync(FsyncPolicy::Always)),
        )
        .build();
    {
        let b = Broker::start(config.clone());
        b.create_topic("t").unwrap();
        let sub = b.subscription("t").durable("w").open().unwrap();
        let p = b.publisher("t").unwrap();
        for i in 0..5i64 {
            p.publish(Message::builder().property("seq", i).build()).unwrap();
        }
        for _ in 0..5 {
            sub.receive_timeout(Duration::from_secs(2)).expect("live message");
        }
        drop(sub);
        b.shutdown();
    }

    // Every delivery was checkpointed: nothing comes back.
    let b = Broker::start(config);
    assert_eq!(b.retained_count("t", "w"), 0);
    let sub = b.subscription("t").durable("w").open().unwrap();
    assert!(sub.receive_timeout(Duration::from_millis(100)).is_none());
    b.shutdown();
    cleanup(&dir);
}

#[test]
fn retained_for_offline_durable_survive_restart_but_delivered_do_not() {
    let dir = scratch_dir("bkr-mixed");
    // Large checkpoint interval: rely on the shutdown flush.
    let config = BrokerConfig::builder()
        .persistence(
            PersistenceConfig::new(&dir)
                .checkpoint_every(1_000)
                .journal(|j| j.fsync(FsyncPolicy::EveryN(4))),
        )
        .build();
    {
        let b = Broker::start(config.clone());
        b.create_topic("t").unwrap();
        let sub = b.subscription("t").durable("w").open().unwrap();
        let p = b.publisher("t").unwrap();
        // Two delivered while connected...
        for i in 0..2i64 {
            p.publish(Message::builder().property("seq", i).build()).unwrap();
        }
        for _ in 0..2 {
            sub.receive_timeout(Duration::from_secs(2)).expect("live message");
        }
        drop(sub); // ...then three retained while offline.
        for i in 2..5i64 {
            p.publish(Message::builder().property("seq", i).build()).unwrap();
        }
        sync(&b, 5);
        b.shutdown();
    }

    let b = Broker::start(config);
    // Only the three offline messages come back: the shutdown checkpoint
    // covers the two consumed ones.
    assert_eq!(b.retained_count("t", "w"), 3);
    let sub = b.subscription("t").durable("w").open().unwrap();
    for i in 2..5i64 {
        let m = sub.receive_timeout(Duration::from_secs(2)).expect("retained message");
        assert_eq!(m.property("seq"), Some(&i.into()));
    }
    b.shutdown();
    cleanup(&dir);
}

#[test]
fn filter_change_discards_backlog_across_restart() {
    let dir = scratch_dir("bkr-filter");
    {
        let b = Broker::start(persistent_config(&dir));
        b.create_topic("t").unwrap();
        drop(
            b.subscription("t")
                .durable("w")
                .filter(Filter::selector("color = 'red'").unwrap())
                .open()
                .unwrap(),
        );
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().property("color", "red").build()).unwrap();
        sync(&b, 1);
        assert_eq!(b.retained_count("t", "w"), 1);
        // Reconnect with a different selector: JMS discards the backlog,
        // and the re-registration record makes replay do the same.
        drop(
            b.subscription("t")
                .durable("w")
                .filter(Filter::selector("color = 'blue'").unwrap())
                .open()
                .unwrap(),
        );
        b.shutdown();
    }

    let b = Broker::start(persistent_config(&dir));
    assert_eq!(b.retained_count("t", "w"), 0);
    b.shutdown();
    cleanup(&dir);
}

#[test]
fn unsubscribed_durable_stays_gone_after_restart() {
    let dir = scratch_dir("bkr-unsub");
    {
        let b = Broker::start(persistent_config(&dir));
        b.create_topic("t").unwrap();
        drop(b.subscription("t").durable("w").open().unwrap());
        let p = b.publisher("t").unwrap();
        p.publish(Message::builder().build()).unwrap();
        sync(&b, 1);
        b.unsubscribe_durable("t", "w").unwrap();
        b.shutdown();
    }
    let b = Broker::start(persistent_config(&dir));
    assert!(b.durable_names("t").is_empty());
    b.shutdown();
    cleanup(&dir);
}

#[test]
fn journal_counters_flow_into_broker_stats() {
    let dir = scratch_dir("bkr-stats");
    let b = Broker::start(persistent_config(&dir));
    b.create_topic("t").unwrap();
    let p = b.publisher("t").unwrap();
    for _ in 0..10 {
        p.publish(Message::builder().build()).unwrap();
    }
    sync(&b, 10);

    let journal = b.snapshot().journal.expect("persistence enabled");
    // 1 TopicCreated + 10 Publish records, synced on every append.
    assert_eq!(journal.appends, 11);
    assert!(journal.bytes_appended > 0);
    assert!(journal.fsyncs >= 11);
    b.shutdown();
    cleanup(&dir);
}

#[test]
fn memory_only_broker_reports_zero_journal_activity() {
    let b = Broker::start(BrokerConfig::default());
    b.create_topic("t").unwrap();
    let p = b.publisher("t").unwrap();
    p.publish(Message::builder().build()).unwrap();
    sync(&b, 1);
    assert!(b.snapshot().journal.is_none());
    b.shutdown();
}
