//! Tests for hierarchical topic wildcard subscriptions.

use rjms_broker::{Broker, BrokerConfig, Filter, Message, TopicPattern};
use std::time::Duration;

fn pattern(s: &str) -> TopicPattern {
    s.parse().unwrap()
}

#[test]
fn pattern_subscriber_spans_existing_topics() {
    let b = Broker::start(BrokerConfig::default());
    b.create_topic("sensors.kitchen.temp").unwrap();
    b.create_topic("sensors.lab.temp").unwrap();
    b.create_topic("sensors.lab.humidity").unwrap();

    let sub = b.subscription("sensors.*.temp").open().unwrap();
    for topic in ["sensors.kitchen.temp", "sensors.lab.temp", "sensors.lab.humidity"] {
        b.publisher(topic).unwrap().publish(Message::builder().build()).unwrap();
    }
    // Exactly two temp readings, no humidity.
    assert!(sub.receive_timeout(Duration::from_secs(2)).is_some());
    assert!(sub.receive_timeout(Duration::from_secs(2)).is_some());
    assert!(sub.receive_timeout(Duration::from_millis(100)).is_none());
    b.shutdown();
}

#[test]
fn pattern_subscriber_catches_future_topics() {
    let b = Broker::start(BrokerConfig::default());
    b.create_topic("logs.app1").unwrap();
    let sub = b.subscription("logs.>").open().unwrap();

    // A topic created *after* the subscription.
    b.create_topic("logs.app2.errors").unwrap();
    b.publisher("logs.app2.errors")
        .unwrap()
        .publish(Message::builder().property("src", "app2").build())
        .unwrap();

    let m = sub.receive_timeout(Duration::from_secs(2)).expect("future-topic delivery");
    assert_eq!(m.property("src"), Some(&"app2".into()));
    b.shutdown();
}

#[test]
fn pattern_combines_with_filters() {
    let b = Broker::start(BrokerConfig::default());
    b.create_topic("orders.eu").unwrap();
    b.create_topic("orders.us").unwrap();
    let sub = b
        .subscription("orders.*")
        .filter(Filter::selector("amount > 100").unwrap())
        .open()
        .unwrap();
    b.publisher("orders.eu")
        .unwrap()
        .publish(Message::builder().property("amount", 500i64).build())
        .unwrap();
    b.publisher("orders.us")
        .unwrap()
        .publish(Message::builder().property("amount", 50i64).build())
        .unwrap();
    let m = sub.receive_timeout(Duration::from_secs(2)).expect("matching order");
    assert_eq!(m.property("amount"), Some(&500i64.into()));
    assert!(sub.receive_timeout(Duration::from_millis(100)).is_none());
    b.shutdown();
}

#[test]
fn dropping_pattern_subscriber_detaches_everywhere() {
    let b = Broker::start(BrokerConfig::default());
    b.create_topic("a.x").unwrap();
    b.create_topic("a.y").unwrap();
    let sub = b.subscription("a.*").open().unwrap();
    assert_eq!(b.subscription_count("a.x"), 1);
    assert_eq!(b.subscription_count("a.y"), 1);
    drop(sub);
    assert_eq!(b.subscription_count("a.x"), 0);
    assert_eq!(b.subscription_count("a.y"), 0);
    // A topic created after the drop must not resurrect the subscription.
    b.create_topic("a.z").unwrap();
    assert_eq!(b.subscription_count("a.z"), 0);
    b.shutdown();
}

#[test]
fn replication_counts_pattern_fanout() {
    // One message on one topic replicated to a plain and a pattern
    // subscriber is R = 2 in the broker's stats.
    let b = Broker::start(BrokerConfig::default());
    b.create_topic("news.tech").unwrap();
    let plain = b.subscription("news.tech").open().unwrap();
    let wild = b.subscription("news.>").open().unwrap();
    b.publisher("news.tech").unwrap().publish(Message::builder().build()).unwrap();
    assert!(plain.receive_timeout(Duration::from_secs(2)).is_some());
    assert!(wild.receive_timeout(Duration::from_secs(2)).is_some());
    for _ in 0..100 {
        if b.snapshot().messages.dispatched == 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let messages = b.snapshot().messages;
    assert_eq!(messages.received, 1);
    assert_eq!(messages.dispatched, 2);
    b.shutdown();
}

#[test]
fn literal_pattern_equals_plain_subscription() {
    let b = Broker::start(BrokerConfig::default());
    b.create_topic("exact.topic").unwrap();
    let p = pattern("exact.topic");
    assert!(p.is_literal());
    let sub = b.subscription("exact.topic").open().unwrap();
    b.publisher("exact.topic").unwrap().publish(Message::builder().build()).unwrap();
    assert!(sub.receive_timeout(Duration::from_secs(2)).is_some());
    b.shutdown();
}
