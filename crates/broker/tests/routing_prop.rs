//! Property test: broker delivery is *exactly* filter semantics.
//!
//! For arbitrary messages and selector/correlation filters, a subscriber
//! receives a message through the broker if and only if evaluating its
//! filter against the message says so. This ties the threaded dispatch path
//! to the pure selector semantics.

use proptest::prelude::*;
use rjms_broker::{Broker, BrokerConfig, Filter, Message, MessageBuilder};
use std::time::Duration;

/// A reduced, generatable message description.
#[derive(Debug, Clone)]
struct MsgSpec {
    correlation: Option<u8>,
    color: Option<&'static str>,
    weight: Option<i64>,
}

fn msg_strategy() -> impl Strategy<Value = MsgSpec> {
    (
        prop::option::of(0u8..20),
        prop::option::of(prop::sample::select(vec!["red", "green", "blue"])),
        prop::option::of(-5i64..50),
    )
        .prop_map(|(correlation, color, weight)| MsgSpec { correlation, color, weight })
}

impl MsgSpec {
    fn build(&self) -> Message {
        let mut b = MessageBuilder::new();
        if let Some(c) = self.correlation {
            b = b.correlation_id(format!("#{c}"));
        }
        if let Some(color) = self.color {
            b = b.property("color", color);
        }
        if let Some(w) = self.weight {
            b = b.property("weight", w);
        }
        b.build()
    }
}

/// A reduced, generatable filter description.
#[derive(Debug, Clone)]
enum FilterSpec {
    None,
    CorrExact(u8),
    CorrRange(u8, u8),
    Color(&'static str),
    WeightAbove(i64),
    ColorAndWeight(&'static str, i64),
}

fn filter_strategy() -> impl Strategy<Value = FilterSpec> {
    prop_oneof![
        Just(FilterSpec::None),
        (0u8..20).prop_map(FilterSpec::CorrExact),
        (0u8..20, 0u8..20).prop_map(|(a, b)| FilterSpec::CorrRange(a.min(b), a.max(b))),
        prop::sample::select(vec!["red", "green", "blue"]).prop_map(FilterSpec::Color),
        (-5i64..50).prop_map(FilterSpec::WeightAbove),
        (prop::sample::select(vec!["red", "green", "blue"]), -5i64..50)
            .prop_map(|(c, w)| FilterSpec::ColorAndWeight(c, w)),
    ]
}

impl FilterSpec {
    fn build(&self) -> Filter {
        match self {
            FilterSpec::None => Filter::None,
            FilterSpec::CorrExact(c) => Filter::correlation_id(&format!("#{c}")).unwrap(),
            FilterSpec::CorrRange(lo, hi) => {
                Filter::correlation_id(&format!("[{lo};{hi}]")).unwrap()
            }
            FilterSpec::Color(c) => Filter::selector(&format!("color = '{c}'")).unwrap(),
            FilterSpec::WeightAbove(w) => Filter::selector(&format!("weight > {w}")).unwrap(),
            FilterSpec::ColorAndWeight(c, w) => {
                Filter::selector(&format!("color = '{c}' AND weight > {w}")).unwrap()
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case spins up a broker with threads
        .. ProptestConfig::default()
    })]

    #[test]
    fn broker_delivery_equals_filter_semantics(
        filters in prop::collection::vec(filter_strategy(), 1..5),
        messages in prop::collection::vec(msg_strategy(), 1..12),
    ) {
        let broker = Broker::start(BrokerConfig::default());
        broker.create_topic("t").unwrap();
        let subs: Vec<_> = filters
            .iter()
            .map(|f| broker.subscription("t").filter(f.build()).open().unwrap())
            .collect();
        let publisher = broker.publisher("t").unwrap();

        let built: Vec<Message> = messages.iter().map(MsgSpec::build).collect();
        let mut expected: Vec<Vec<u64>> = vec![Vec::new(); filters.len()];
        for msg in &built {
            for (i, f) in filters.iter().enumerate() {
                if f.build().matches(msg) {
                    expected[i].push(msg.id().as_u64());
                }
            }
            publisher.publish(msg.clone()).unwrap();
        }

        for (i, sub) in subs.iter().enumerate() {
            for &want in &expected[i] {
                let got = sub
                    .receive_timeout(Duration::from_secs(5))
                    .unwrap_or_else(|| panic!("subscriber {i} missing message {want}"));
                prop_assert_eq!(got.id().as_u64(), want, "order/content mismatch");
            }
            prop_assert!(
                sub.receive_timeout(Duration::from_millis(20)).is_none(),
                "subscriber {} received an unexpected extra message",
                i
            );
        }
        broker.shutdown();
    }
}
