//! Tests for the durable subscription mode (paper §II-A: "in the durable
//! mode, messages are also forwarded to subscribers that are currently not
//! connected").

use rjms_broker::{Broker, BrokerConfig, Error, Filter, Message};
use std::time::Duration;

fn broker() -> Broker {
    let b = Broker::start(BrokerConfig::default());
    b.create_topic("t").unwrap();
    b
}

/// Waits until the broker has processed `n` received messages.
fn sync(b: &Broker, n: u64) {
    for _ in 0..400 {
        if b.snapshot().messages.received >= n {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("broker did not process {n} messages in time");
}

#[test]
fn durable_receives_live_messages_while_connected() {
    let b = broker();
    let sub = b.subscription("t").durable("worker").open().unwrap();
    assert!(sub.is_durable());
    assert_eq!(sub.durable_name(), Some("worker"));
    let p = b.publisher("t").unwrap();
    p.publish(Message::builder().build()).unwrap();
    assert!(sub.receive_timeout(Duration::from_secs(2)).is_some());
    b.shutdown();
}

#[test]
fn messages_retained_while_offline_and_delivered_on_reconnect() {
    let b = broker();
    let sub = b.subscription("t").durable("worker").open().unwrap();
    drop(sub); // go offline

    let p = b.publisher("t").unwrap();
    for i in 0..5i64 {
        p.publish(Message::builder().property("seq", i).build()).unwrap();
    }
    sync(&b, 5);
    assert_eq!(b.retained_count("t", "worker"), 5);
    assert_eq!(b.snapshot().messages.retained, 5);

    // Reconnect: retained backlog first, in publish order.
    let sub = b.subscription("t").durable("worker").open().unwrap();
    for i in 0..5i64 {
        let m = sub.receive_timeout(Duration::from_secs(2)).expect("retained message");
        assert_eq!(m.property("seq"), Some(&i.into()));
    }
    // Live delivery resumes after the backlog.
    p.publish(Message::builder().property("seq", 99i64).build()).unwrap();
    let m = sub.receive_timeout(Duration::from_secs(2)).expect("live message");
    assert_eq!(m.property("seq"), Some(&99i64.into()));
    b.shutdown();
}

#[test]
fn retained_backlog_respects_filter() {
    let b = broker();
    let sub = b
        .subscription("t")
        .durable("reds")
        .filter(Filter::selector("color = 'red'").unwrap())
        .open()
        .unwrap();
    drop(sub);

    let p = b.publisher("t").unwrap();
    p.publish(Message::builder().property("color", "red").build()).unwrap();
    p.publish(Message::builder().property("color", "blue").build()).unwrap();
    sync(&b, 2);
    assert_eq!(b.retained_count("t", "reds"), 1);
    b.shutdown();
}

#[test]
fn second_connection_under_same_name_rejected() {
    let b = broker();
    let _sub = b.subscription("t").durable("solo").open().unwrap();
    assert!(matches!(
        b.subscription("t").durable("solo").open(),
        Err(Error::DurableNameInUse { .. })
    ));
    b.shutdown();
}

#[test]
fn reconnect_with_different_filter_discards_backlog() {
    let b = broker();
    let sub = b
        .subscription("t")
        .durable("w")
        .filter(Filter::selector("color = 'red'").unwrap())
        .open()
        .unwrap();
    drop(sub);
    let p = b.publisher("t").unwrap();
    p.publish(Message::builder().property("color", "red").build()).unwrap();
    sync(&b, 1);
    assert_eq!(b.retained_count("t", "w"), 1);

    // JMS: changing the selector recreates the subscription.
    let sub = b
        .subscription("t")
        .durable("w")
        .filter(Filter::selector("color = 'blue'").unwrap())
        .open()
        .unwrap();
    assert!(sub.receive_timeout(Duration::from_millis(100)).is_none());
    b.shutdown();
}

#[test]
fn reconnect_with_same_filter_keeps_backlog() {
    let b = broker();
    let filter = Filter::selector("color = 'red'").unwrap();
    drop(b.subscription("t").durable("w").filter(filter.clone()).open().unwrap());
    let p = b.publisher("t").unwrap();
    p.publish(Message::builder().property("color", "red").build()).unwrap();
    sync(&b, 1);
    let sub = b.subscription("t").durable("w").filter(filter).open().unwrap();
    assert!(sub.receive_timeout(Duration::from_secs(2)).is_some());
    b.shutdown();
}

#[test]
fn retained_buffer_drops_oldest_on_overflow() {
    let b = Broker::start(BrokerConfig::builder().durable_buffer_capacity(3).build());
    b.create_topic("t").unwrap();
    drop(b.subscription("t").durable("w").open().unwrap());
    let p = b.publisher("t").unwrap();
    for i in 0..10i64 {
        p.publish(Message::builder().property("seq", i).build()).unwrap();
    }
    sync(&b, 10);
    assert_eq!(b.retained_count("t", "w"), 3);
    assert_eq!(b.snapshot().messages.dropped, 7);

    // The *newest* three survive.
    let sub = b.subscription("t").durable("w").open().unwrap();
    for i in 7..10i64 {
        let m = sub.receive_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(m.property("seq"), Some(&i.into()));
    }
    b.shutdown();
}

#[test]
fn unsubscribe_durable_lifecycle() {
    let b = broker();
    let sub = b.subscription("t").durable("w").open().unwrap();
    assert_eq!(b.durable_names("t"), vec!["w".to_owned()]);

    // Cannot remove while connected.
    assert!(matches!(b.unsubscribe_durable("t", "w"), Err(Error::DurableStillConnected { .. })));
    drop(sub);
    b.unsubscribe_durable("t", "w").unwrap();
    assert!(b.durable_names("t").is_empty());
    assert!(matches!(b.unsubscribe_durable("t", "w"), Err(Error::DurableNotFound { .. })));
    // After removal nothing is retained.
    let p = b.publisher("t").unwrap();
    p.publish(Message::builder().build()).unwrap();
    sync(&b, 1);
    assert_eq!(b.retained_count("t", "w"), 0);
    b.shutdown();
}

#[test]
fn unconsumed_messages_survive_disconnect() {
    let b = broker();
    let sub = b.subscription("t").durable("w").open().unwrap();
    let p = b.publisher("t").unwrap();
    for i in 0..4i64 {
        p.publish(Message::builder().property("seq", i).build()).unwrap();
    }
    sync(&b, 4);
    // Consume only the first message, then disconnect.
    let m = sub.receive_timeout(Duration::from_secs(2)).unwrap();
    assert_eq!(m.property("seq"), Some(&0i64.into()));
    drop(sub);

    // The three unconsumed messages were re-retained.
    assert_eq!(b.retained_count("t", "w"), 3);
    let sub = b.subscription("t").durable("w").open().unwrap();
    for i in 1..4i64 {
        let m = sub.receive_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(m.property("seq"), Some(&i.into()));
    }
    b.shutdown();
}

#[test]
fn expired_messages_not_delivered_live() {
    let b = broker();
    let sub = b.subscription("t").open().unwrap();
    let p = b.publisher("t").unwrap();
    // Already expired on arrival (TTL 0 → expires at build timestamp).
    p.publish(Message::builder().time_to_live(Duration::ZERO).build()).unwrap();
    p.publish(Message::builder().build()).unwrap();
    // Only the unexpired message arrives.
    let m = sub.receive_timeout(Duration::from_secs(2)).expect("live message");
    assert_eq!(m.expiration_millis(), None);
    assert!(sub.receive_timeout(Duration::from_millis(100)).is_none());
    assert_eq!(b.snapshot().messages.expired, 1);
    b.shutdown();
}

#[test]
fn expired_retained_messages_discarded_on_reconnect() {
    let b = broker();
    drop(b.subscription("t").durable("w").open().unwrap());
    let p = b.publisher("t").unwrap();
    p.publish(Message::builder().time_to_live(Duration::from_millis(30)).build()).unwrap();
    p.publish(Message::builder().build()).unwrap();
    sync(&b, 2);
    assert_eq!(b.retained_count("t", "w"), 2);

    // Let the first message's TTL lapse while offline.
    std::thread::sleep(Duration::from_millis(60));
    let sub = b.subscription("t").durable("w").open().unwrap();
    let m = sub.receive_timeout(Duration::from_secs(2)).expect("unexpired retained");
    assert_eq!(m.expiration_millis(), None);
    assert!(sub.receive_timeout(Duration::from_millis(50)).is_none());
    b.shutdown();
}

#[test]
fn durable_and_plain_subscribers_coexist() {
    let b = broker();
    let plain = b.subscription("t").open().unwrap();
    let durable = b.subscription("t").durable("d").open().unwrap();
    let p = b.publisher("t").unwrap();
    p.publish(Message::builder().build()).unwrap();
    assert!(plain.receive_timeout(Duration::from_secs(2)).is_some());
    assert!(durable.receive_timeout(Duration::from_secs(2)).is_some());
    // Both deliveries counted.
    for _ in 0..100 {
        if b.snapshot().messages.dispatched == 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(b.snapshot().messages.dispatched, 2);
    b.shutdown();
}

#[test]
fn durable_connected_reflects_lifecycle() {
    let b = broker();
    assert!(!b.durable_connected("t", "w"));
    let sub = b.subscription("t").durable("w").open().unwrap();
    assert!(b.durable_connected("t", "w"));
    drop(sub);
    assert!(!b.durable_connected("t", "w"));
    // Unknown topic/name are simply false.
    assert!(!b.durable_connected("t", "other"));
    assert!(!b.durable_connected("missing", "w"));
    b.shutdown();
}

#[test]
fn returned_message_is_received_next_and_survives_disconnect() {
    let b = broker();
    let sub = b.subscription("t").durable("w").open().unwrap();
    let p = b.publisher("t").unwrap();
    p.publish(Message::builder().property("seq", 0i64).build()).unwrap();
    p.publish(Message::builder().property("seq", 1i64).build()).unwrap();

    // Pull the first message, then put it back: it must come out first
    // again.
    let m0 = sub.receive_timeout(Duration::from_secs(2)).unwrap();
    sub.return_message(m0);
    let again = sub.receive_timeout(Duration::from_secs(2)).unwrap();
    assert_eq!(again.property("seq"), Some(&0i64.into()));

    // Pull seq 1, return it, disconnect: it must be re-retained and arrive
    // first on reconnect.
    let m1 = sub.receive_timeout(Duration::from_secs(2)).unwrap();
    assert_eq!(m1.property("seq"), Some(&1i64.into()));
    sub.return_message(m1);
    drop(sub);
    assert_eq!(b.retained_count("t", "w"), 1);
    let sub = b.subscription("t").durable("w").open().unwrap();
    let m = sub.receive_timeout(Duration::from_secs(2)).unwrap();
    assert_eq!(m.property("seq"), Some(&1i64.into()));
    b.shutdown();
}
