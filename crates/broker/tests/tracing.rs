//! End-to-end tests of the broker's tail-sampled flight recorder and the
//! per-topic labeled counter export.

use rjms_broker::{Broker, BrokerConfig, Filter, Message, MetricsConfig, TraceConfig};
use rjms_trace::{group_chains, Stage, TraceChain};
use std::time::Duration;

fn chains_of(broker: &Broker) -> Vec<TraceChain> {
    let recorder = broker.tracer().expect("tracer enabled");
    group_chains(recorder.snapshot().events)
}

#[test]
fn tracing_auto_enables_metrics() {
    let broker = Broker::start(BrokerConfig::builder().trace(TraceConfig::default()).build());
    assert!(broker.metrics().is_some(), "trace implies metrics");
    assert!(broker.tracer().is_some());
    broker.shutdown();
}

#[test]
fn without_trace_config_there_is_no_recorder() {
    let broker = Broker::start(BrokerConfig::builder().metrics(MetricsConfig::default()).build());
    assert!(broker.tracer().is_none());
    broker.shutdown();
}

#[test]
fn chains_are_complete_and_monotone_for_all_published_messages() {
    // The tail threshold starts at 0 and only refreshes after
    // `refresh_every` messages, so every chain below that count is kept.
    let broker = Broker::start(BrokerConfig::builder().trace(TraceConfig::default()).build());
    broker.create_topic("t").unwrap();
    let sub = broker.subscription("t").filter(Filter::None).open().unwrap();
    let publisher = broker.publisher("t").unwrap();

    let mut trace_ids = Vec::new();
    for i in 0..100i64 {
        let message = Message::builder().property("seq", i).build();
        trace_ids.push(message.trace_id());
        publisher.publish(message).unwrap();
    }
    for _ in 0..100 {
        sub.receive_timeout(Duration::from_secs(2)).expect("delivered");
    }
    // The dispatcher commits a chain right after each fan-out, and the last
    // delivery has been received, so at most the final commit can still be
    // in flight; give it a moment.
    std::thread::sleep(Duration::from_millis(50));

    let recorder = broker.tracer().unwrap();
    let chains = chains_of(&broker);
    for id in &trace_ids {
        let chain = chains
            .iter()
            .find(|c| c.trace_id == *id)
            .unwrap_or_else(|| panic!("no chain for trace id {id}"));
        assert!(chain.is_complete(), "missing stages for {id}: {chain:?}");
        assert!(chain.timestamps_monotone(), "non-monotone chain for {id}: {chain:?}");
        // Fan-out aux carries the copy count: one subscriber matched.
        let fanout = chain.events.iter().find(|e| e.stage == Stage::Fanout).unwrap();
        assert_eq!(fanout.aux, 1);
        assert!(recorder.is_sampled(*id), "kept chain must be marked sampled");
    }

    let snap = broker.metrics().unwrap().snapshot();
    let kept: u64 = snap
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("trace.chains."))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(kept, 100, "all chains kept while the threshold is 0");
    broker.shutdown();
}

#[test]
fn per_topic_counters_are_exported_and_capped() {
    let broker = Broker::start(
        BrokerConfig::builder().metrics(MetricsConfig::default().per_topic_series(2)).build(),
    );
    for name in ["a", "b", "c", "d"] {
        broker.create_topic(name).unwrap();
    }
    // One subscriber on "a" so its dispatched counter moves too.
    let sub = broker.subscription("a").filter(Filter::None).open().unwrap();
    for name in ["a", "b", "c", "d"] {
        let publisher = broker.publisher(name).unwrap();
        publisher.publish(Message::builder().build()).unwrap();
    }
    sub.receive_timeout(Duration::from_secs(2)).expect("delivered");
    std::thread::sleep(Duration::from_millis(50));

    let snap = broker.metrics().unwrap().snapshot();
    assert_eq!(snap.counters.get("broker.topic.received{topic=\"a\"}"), Some(&1));
    assert_eq!(snap.counters.get("broker.topic.received{topic=\"b\"}"), Some(&1));
    // Topics beyond the cap collapse into one overflow series.
    assert_eq!(snap.counters.get("broker.topic.received{topic=\"__other__\"}"), Some(&2));
    assert!(!snap.counters.keys().any(|k| k.contains("topic=\"c\"")));
    assert_eq!(snap.counters.get("broker.topic.dispatched{topic=\"a\"}"), Some(&1));
    broker.shutdown();
}

#[test]
fn per_topic_export_can_be_disabled() {
    let broker = Broker::start(
        BrokerConfig::builder().metrics(MetricsConfig::default().per_topic_series(0)).build(),
    );
    broker.create_topic("t").unwrap();
    broker.publisher("t").unwrap().publish(Message::builder().build()).unwrap();
    std::thread::sleep(Duration::from_millis(50));
    let snap = broker.metrics().unwrap().snapshot();
    assert!(!snap.counters.keys().any(|k| k.starts_with("broker.topic.")));
    broker.shutdown();
}
