//! The JMS-style message model.
//!
//! A message consists of three parts (paper Fig. 2): a fixed header (message
//! id, timestamp, correlation id, priority, type, …), a user-defined typed
//! property section, and an opaque payload. Selectors can reference both the
//! user properties and the `JMS*` header fields, which is why [`Message`]
//! implements [`PropertySource`].

use bytes::Bytes;
use rjms_selector::eval::PropertySource;
use rjms_selector::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Globally unique message identifier (`ID:<n>` in JMS spelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MessageId(u64);

static ID_COUNTER: AtomicU64 = AtomicU64::new(1);

impl MessageId {
    /// Allocates the next process-wide unique id.
    pub fn next() -> Self {
        MessageId(ID_COUNTER.fetch_add(1, Ordering::Relaxed))
    }

    /// Rebuilds an id recovered from the journal.
    pub(crate) fn from_raw(raw: u64) -> Self {
        MessageId(raw)
    }

    /// Keeps the id allocator above every id recovered from the journal,
    /// so post-recovery messages never collide with replayed ones.
    pub(crate) fn observe(raw: u64) {
        ID_COUNTER.fetch_max(raw + 1, Ordering::Relaxed);
    }

    /// The raw numeric id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ID:{}", self.0)
    }
}

/// Message priority 0–9 (JMS default is 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Priority(u8);

impl Priority {
    /// The JMS default priority (4).
    pub const DEFAULT: Priority = Priority(4);

    /// Creates a priority.
    ///
    /// # Panics
    ///
    /// Panics if `level > 9` (the JMS priority range is 0–9).
    pub fn new(level: u8) -> Self {
        assert!(level <= 9, "JMS priority must be 0-9, got {level}");
        Priority(level)
    }

    /// The numeric priority level.
    pub fn level(self) -> u8 {
        self.0
    }
}

impl Default for Priority {
    fn default() -> Self {
        Self::DEFAULT
    }
}

/// An immutable JMS-style message.
///
/// Construct with [`Message::builder`]. Messages are cheap to clone: the
/// payload is a reference-counted [`Bytes`] and the broker shares messages
/// between subscribers via `Arc<Message>`.
///
/// # Examples
///
/// ```
/// use rjms_broker::message::Message;
///
/// let msg = Message::builder()
///     .correlation_id("#7")
///     .property("color", "red")
///     .property("weight", 3i64)
///     .body(&b"payload"[..])
///     .build();
/// assert_eq!(msg.correlation_id(), Some("#7"));
/// assert_eq!(msg.body().len(), 7);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    id: MessageId,
    timestamp_millis: u64,
    correlation_id: Option<String>,
    message_type: Option<String>,
    priority: Priority,
    reply_to: Option<String>,
    expiration_millis: Option<u64>,
    properties: BTreeMap<String, Value>,
    body: Bytes,
    trace_id: u64,
    trace_origin_ns: u64,
}

impl Message {
    /// Starts building a message.
    pub fn builder() -> MessageBuilder {
        MessageBuilder::new()
    }

    /// The unique message id (header field `JMSMessageID`).
    pub fn id(&self) -> MessageId {
        self.id
    }

    /// Milliseconds since the Unix epoch when the message was built
    /// (header field `JMSTimestamp`).
    pub fn timestamp_millis(&self) -> u64 {
        self.timestamp_millis
    }

    /// The correlation id, if set (header field `JMSCorrelationID`).
    pub fn correlation_id(&self) -> Option<&str> {
        self.correlation_id.as_deref()
    }

    /// The application message type, if set (header field `JMSType`).
    pub fn message_type(&self) -> Option<&str> {
        self.message_type.as_deref()
    }

    /// The message priority (header field `JMSPriority`).
    pub fn priority(&self) -> Priority {
        self.priority
    }

    /// The reply-to destination name, if set.
    pub fn reply_to(&self) -> Option<&str> {
        self.reply_to.as_deref()
    }

    /// The absolute expiration time in milliseconds since the Unix epoch
    /// (header field `JMSExpiration`); `None` means the message never
    /// expires.
    pub fn expiration_millis(&self) -> Option<u64> {
        self.expiration_millis
    }

    /// Whether the message has expired at the given wall-clock instant
    /// (milliseconds since the Unix epoch). Messages without an expiration
    /// never expire.
    pub fn is_expired_at(&self, now_millis: u64) -> bool {
        self.expiration_millis.is_some_and(|e| now_millis >= e)
    }

    /// Whether the message has expired right now.
    pub fn is_expired(&self) -> bool {
        self.is_expired_at(now_unix_millis())
    }

    /// The user property section.
    pub fn properties(&self) -> &BTreeMap<String, Value> {
        &self.properties
    }

    /// A single user property.
    pub fn property(&self, name: &str) -> Option<&Value> {
        self.properties.get(name)
    }

    /// The payload.
    pub fn body(&self) -> &Bytes {
        &self.body
    }

    /// The end-to-end trace id, nonzero and unique per origin process.
    ///
    /// Stamped at build time (normally at the publisher) and carried
    /// unchanged across the wire, through the broker's flight recorder and
    /// into subscriber deliveries, so one id names the message in every
    /// trace view along the path.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Nanoseconds since the Unix epoch when the trace context was created
    /// at the origin. Lets cross-host consumers order traces without a
    /// shared tick domain.
    pub fn trace_origin_ns(&self) -> u64 {
        self.trace_origin_ns
    }

    /// Reassembles a message from journal-recovered parts, keeping the
    /// original id and timestamps.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_stored_parts(
        id_raw: u64,
        timestamp_millis: u64,
        correlation_id: Option<String>,
        message_type: Option<String>,
        priority: Priority,
        reply_to: Option<String>,
        expiration_millis: Option<u64>,
        properties: BTreeMap<String, Value>,
        body: Bytes,
        trace_id: u64,
        trace_origin_ns: u64,
    ) -> Message {
        MessageId::observe(id_raw);
        Message {
            id: MessageId::from_raw(id_raw),
            timestamp_millis,
            correlation_id,
            message_type,
            priority,
            reply_to,
            expiration_millis,
            properties,
            body,
            trace_id,
            trace_origin_ns,
        }
    }

    /// Total approximate wire size: headers + properties + payload.
    pub fn approximate_size(&self) -> usize {
        let header = 64
            + self.correlation_id.as_ref().map_or(0, |s| s.len())
            + self.message_type.as_ref().map_or(0, |s| s.len())
            + self.reply_to.as_ref().map_or(0, |s| s.len());
        let props: usize = self
            .properties
            .iter()
            .map(|(k, v)| {
                k.len()
                    + match v {
                        Value::Str(s) => s.len(),
                        _ => 8,
                    }
            })
            .sum();
        header + props + self.body.len()
    }
}

impl PropertySource for Message {
    /// Exposes user properties and the `JMS*` header fields to selectors,
    /// per JMS 1.1 §3.8.1.1 (only the selectable header fields are mapped).
    fn property(&self, name: &str) -> Option<Value> {
        match name {
            "JMSMessageID" => Some(Value::Str(self.id.to_string())),
            "JMSTimestamp" => Some(Value::Int(self.timestamp_millis as i64)),
            "JMSCorrelationID" => self.correlation_id.clone().map(Value::Str),
            "JMSType" => self.message_type.clone().map(Value::Str),
            "JMSPriority" => Some(Value::Int(self.priority.level() as i64)),
            "JMSExpiration" => {
                // JMS encodes "never expires" as 0.
                Some(Value::Int(self.expiration_millis.unwrap_or(0) as i64))
            }
            _ => self.properties.get(name).cloned(),
        }
    }
}

/// Builder for [`Message`].
///
/// All parts are optional; [`MessageBuilder::build`] stamps the id and
/// timestamp.
#[derive(Debug, Clone, Default)]
pub struct MessageBuilder {
    correlation_id: Option<String>,
    message_type: Option<String>,
    priority: Priority,
    reply_to: Option<String>,
    time_to_live: Option<std::time::Duration>,
    properties: BTreeMap<String, Value>,
    body: Bytes,
    trace: Option<(u64, u64)>,
}

impl MessageBuilder {
    /// Creates an empty builder (equivalent to [`Message::builder`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the correlation id (a 128-byte string in the paper's workloads).
    pub fn correlation_id(mut self, id: impl Into<String>) -> Self {
        self.correlation_id = Some(id.into());
        self
    }

    /// Sets the application message type.
    pub fn message_type(mut self, ty: impl Into<String>) -> Self {
        self.message_type = Some(ty.into());
        self
    }

    /// Sets the priority.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the reply-to destination.
    pub fn reply_to(mut self, destination: impl Into<String>) -> Self {
        self.reply_to = Some(destination.into());
        self
    }

    /// Sets the message's time to live; the broker discards the message
    /// instead of delivering it once the TTL has elapsed (counted from
    /// [`MessageBuilder::build`]).
    pub fn time_to_live(mut self, ttl: std::time::Duration) -> Self {
        self.time_to_live = Some(ttl);
        self
    }

    /// Sets one user property.
    pub fn property(mut self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.properties.insert(name.into(), value.into());
        self
    }

    /// Sets the payload. The paper's default workload uses a 0-byte body —
    /// "the full information is contained in the message headers".
    pub fn body(mut self, body: impl Into<Bytes>) -> Self {
        self.body = body.into();
        self
    }

    /// Adopts an existing trace context instead of generating a fresh one
    /// — used when a message crosses a process boundary (e.g. decoded from
    /// the wire) so its end-to-end trace id survives re-building.
    ///
    /// A `trace_id` of 0 means "no context" and falls back to generation.
    pub fn trace_context(mut self, trace_id: u64, origin_ns: u64) -> Self {
        self.trace = if trace_id == 0 { None } else { Some((trace_id, origin_ns)) };
        self
    }

    /// Finalizes the message, stamping a fresh id and the current time.
    pub fn build(self) -> Message {
        let timestamp_millis = now_unix_millis();
        let (trace_id, trace_origin_ns) =
            self.trace.unwrap_or_else(|| (next_trace_id(), now_unix_nanos()));
        Message {
            id: MessageId::next(),
            timestamp_millis,
            correlation_id: self.correlation_id,
            message_type: self.message_type,
            priority: self.priority,
            reply_to: self.reply_to,
            expiration_millis: self
                .time_to_live
                .map(|ttl| timestamp_millis + ttl.as_millis() as u64),
            properties: self.properties,
            body: self.body,
            trace_id,
            trace_origin_ns,
        }
    }
}

/// Generates a nonzero trace id: a per-process random seed mixed with a
/// monotone counter through splitmix64, so concurrent publishers on
/// different hosts collide with negligible probability while staying
/// allocation- and lock-free.
fn next_trace_id() -> u64 {
    static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);
    use std::sync::OnceLock;
    static PROCESS_SEED: OnceLock<u64> = OnceLock::new();
    let seed = *PROCESS_SEED.get_or_init(|| {
        let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos()).unwrap_or(0);
        (nanos as u64) ^ (std::process::id() as u64).rotate_left(32)
    });
    let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    let mut x = seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x | 1 // never 0 — 0 is the wire encoding for "no trace context"
}

/// Current wall-clock time in nanoseconds since the Unix epoch.
pub(crate) fn now_unix_nanos() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0)
}

/// Current wall-clock time in milliseconds since the Unix epoch.
pub(crate) fn now_unix_millis() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rjms_selector::Selector;

    #[test]
    fn ids_are_unique_and_increasing() {
        let a = MessageId::next();
        let b = MessageId::next();
        assert!(b > a);
        assert_ne!(a, b);
    }

    #[test]
    fn builder_sets_all_fields() {
        let m = Message::builder()
            .correlation_id("#1")
            .message_type("presence")
            .priority(Priority::new(7))
            .reply_to("replies")
            .property("user", "alice")
            .body(&b"x"[..])
            .build();
        assert_eq!(m.correlation_id(), Some("#1"));
        assert_eq!(m.message_type(), Some("presence"));
        assert_eq!(m.priority().level(), 7);
        assert_eq!(m.reply_to(), Some("replies"));
        assert_eq!(m.property("user"), Some(&Value::Str("alice".into())));
        assert_eq!(m.body().as_ref(), b"x");
    }

    #[test]
    fn default_message_is_empty_bodied_priority_4() {
        let m = Message::builder().build();
        assert_eq!(m.body().len(), 0);
        assert_eq!(m.priority(), Priority::DEFAULT);
        assert_eq!(m.correlation_id(), None);
    }

    #[test]
    fn selectors_see_header_fields() {
        let m = Message::builder()
            .correlation_id("#0")
            .priority(Priority::new(9))
            .message_type("alert")
            .build();
        assert!(Selector::parse("JMSCorrelationID = '#0'").unwrap().matches(&m));
        assert!(Selector::parse("JMSPriority >= 5").unwrap().matches(&m));
        assert!(Selector::parse("JMSType = 'alert'").unwrap().matches(&m));
        // Missing header field evaluates as null → unknown → no match.
        let plain = Message::builder().build();
        assert!(!Selector::parse("JMSType = 'alert'").unwrap().matches(&plain));
        assert!(Selector::parse("JMSType IS NULL").unwrap().matches(&plain));
    }

    #[test]
    fn selectors_see_user_properties() {
        let m = Message::builder().property("weight", 10i64).build();
        assert!(Selector::parse("weight BETWEEN 5 AND 15").unwrap().matches(&m));
    }

    #[test]
    fn timestamp_is_recent() {
        let m = Message::builder().build();
        let now = SystemTime::now().duration_since(UNIX_EPOCH).unwrap().as_millis() as u64;
        assert!(now - m.timestamp_millis() < 10_000);
    }

    #[test]
    fn approximate_size_accounts_for_parts() {
        let empty = Message::builder().build();
        let loaded = Message::builder()
            .correlation_id("0123456789")
            .property("k", "v")
            .body(vec![0u8; 100])
            .build();
        assert!(loaded.approximate_size() > empty.approximate_size() + 100);
    }

    #[test]
    #[should_panic(expected = "JMS priority must be 0-9")]
    fn priority_range_enforced() {
        Priority::new(10);
    }

    #[test]
    fn messages_without_ttl_never_expire() {
        let m = Message::builder().build();
        assert_eq!(m.expiration_millis(), None);
        assert!(!m.is_expired_at(u64::MAX - 1));
    }

    #[test]
    fn ttl_sets_absolute_expiration() {
        let m = Message::builder().time_to_live(std::time::Duration::from_millis(50)).build();
        let exp = m.expiration_millis().expect("expiration set");
        assert_eq!(exp, m.timestamp_millis() + 50);
        assert!(!m.is_expired_at(exp - 1));
        assert!(m.is_expired_at(exp));
    }

    #[test]
    fn trace_ids_are_nonzero_and_unique() {
        let a = Message::builder().build();
        let b = Message::builder().build();
        assert_ne!(a.trace_id(), 0);
        assert_ne!(b.trace_id(), 0);
        assert_ne!(a.trace_id(), b.trace_id());
        assert!(a.trace_origin_ns() > 0);
    }

    #[test]
    fn trace_context_is_adopted_verbatim() {
        let m = Message::builder().trace_context(0xDEAD_BEEF, 42).build();
        assert_eq!(m.trace_id(), 0xDEAD_BEEF);
        assert_eq!(m.trace_origin_ns(), 42);
        // Zero id means "no context": a fresh one is generated instead.
        let fresh = Message::builder().trace_context(0, 42).build();
        assert_ne!(fresh.trace_id(), 0);
        assert_ne!(fresh.trace_origin_ns(), 42);
    }

    #[test]
    fn selectors_see_expiration_header() {
        let never = Message::builder().build();
        assert!(Selector::parse("JMSExpiration = 0").unwrap().matches(&never));
        let soon = Message::builder().time_to_live(std::time::Duration::from_secs(60)).build();
        assert!(Selector::parse("JMSExpiration > 0").unwrap().matches(&soon));
    }
}
